// Event-driven hierarchical cluster engine (ClusterPath::kEvent).
//
// The flat engines walk the whole queue and a whole-cluster ledger on
// every event, so their cost grows with nodes × jobs. This engine keeps
// per-event cost independent of cluster size: a time-ordered event queue
// (arrival, completion, cap change, node failure) drives a hierarchical
// budget tree (cluster_hier.hpp) in which each vertex caches an
// admissibility aggregate — the best grant reachable through its subtree
// per domain — and only the subtree path dirtied by an event is
// re-solved (O(depth × fanout)). Placement descends the tree by that
// aggregate; a grant must fit below every ancestor's free budget
// simultaneously, which is exactly the flat decision procedure when the
// tree is a single rack.
//
// Flat-mode bit-identity (tests/core/cluster_event_test.cpp): with a
// single-vertex hierarchy and no scenario, this engine replays the flat
// fast path exactly — same stable sort, same shared profiling, same
// try_start_job check and counter order, same FIFO/backfill queue pass,
// same completion heap comparator, same ledger hold/release sequence,
// and the energy product computed once at start. Every deviation below
// (preemption, donation, cap deficits) is unreachable in that mode.
//
// Scenario semantics (docs/cluster.md):
//  * cap change: the vertex is re-capped; if the power held under it now
//    exceeds the cap (a power emergency), the newest-started jobs under
//    it are shed — preempted with their remaining work back to their
//    original queue position — until the subtree fits, then the queue is
//    re-granted immediately. Sheds ≤ jobs running under the vertex and
//    re-grants ≤ sheds + queued jobs, so the emergency settles within a
//    bounded number of events, before the next event is processed.
//  * node failure: a rack loses slots; overflow jobs (newest first) are
//    preempted and re-queued.
//  * redistribution: when a start is squeezed by an intermediate cap but
//    the root has headroom, sibling subtrees donate unused budget
//    through the common ancestor (persistent cap transfers; the root
//    budget — the facility feed — is conserved).
#include "core/cluster_event.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/baselines.hpp"
#include "core/cluster_hier.hpp"
#include "core/cluster_profile.hpp"
#include "core/critical.hpp"
#include "core/grant_ledger.hpp"
#include "obs/metrics.hpp"

namespace pbc::core::detail {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNever = 1e300;
constexpr std::uint32_t kNoVertex = std::numeric_limits<std::uint32_t>::max();

/// The admission counters shared with the flat engines (get-or-create on
/// the same names, so all paths bump the same counters) plus the
/// event-engine-only series.
struct EventMetrics {
  obs::Counter& attempts;
  obs::Counter& rejects;
  obs::Counter& starts;
  obs::Counter& events;
  obs::Counter& resolves;
  obs::Counter& preempted;
  obs::Counter& shed_regrant;
  obs::Gauge& redistributed;
  obs::Histogram& latency_us;
};

[[nodiscard]] EventMetrics& event_metrics() {
  auto& reg = obs::global_registry();
  static EventMetrics m{
      reg.counter("pbc_cluster_start_attempts_total",
                  "Job-start attempts considered by the scheduler"),
      reg.counter("pbc_cluster_admission_rejects_total",
                  "Start attempts rejected by power admission (grant below "
                  "threshold or min_grant)"),
      reg.counter("pbc_cluster_jobs_started_total",
                  "Jobs granted power and started"),
      reg.counter("pbc_cluster_events_total",
                  "Events processed by the event-driven cluster engine"),
      reg.counter("pbc_cluster_subtree_resolves_total",
                  "Dirty-subtree aggregate refreshes in the budget tree"),
      reg.counter("pbc_cluster_jobs_preempted_total",
                  "Jobs preempted by cap emergencies or node failures"),
      reg.counter("pbc_cluster_emergency_shed_regrant_events_total",
                  "Shed and re-grant events caused by power emergencies"),
      reg.gauge("pbc_cluster_watts_redistributed",
                "Cumulative watts moved between sibling subtrees by power "
                "redistribution"),
      reg.histogram("pbc_cluster_event_latency_us",
                    "Wall-clock latency of one engine event (sampled)",
                    obs::default_latency_bounds_us()),
  };
  return m;
}

struct HeapEntry {
  double finish = 0.0;
  std::uint32_t job = 0;
  std::uint32_t epoch = 0;
};

/// Min-heap on finish time only — the flat engines' FinishOrder, so the
/// pop order among equal finish times matches them bit-for-bit.
struct HeapOrder {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    return a.finish > b.finish;
  }
};

/// One budget-tree vertex at runtime.
struct Vertex {
  std::int32_t parent = -1;
  std::vector<std::uint32_t> children;
  bool rack = false;
  double cap = 0.0;   ///< current budget (moves under redistribution)
  double held = 0.0;  ///< power held under this vertex (see refresh rules)
  std::unique_ptr<GrantLedger> ledger;  ///< racks only
  std::size_t cpu_slots = 0, gpu_slots = 0;
  std::size_t cpu_busy = 0, gpu_busy = 0;
  /// Best admissible grant through this subtree per domain (0 = CPU,
  /// 1 = GPU): racks report free ledger power when a slot is free
  /// (else -inf); inner vertices min their own slack with the best
  /// child.
  double adm[2] = {-kInf, -kInf};
  double kids_best[2] = {-kInf, -kInf};
  std::uint64_t grants = 0;  ///< starts placed through this vertex
  const std::string* level = nullptr;
};

struct RunState {
  std::uint32_t rack = 0;
  bool gpu = false;
  bool running = false;
  bool started = false;  ///< outcome.start recorded (first segment)
  std::uint32_t epoch = 0;       ///< invalidates stale heap entries
  std::uint64_t seq = 0;         ///< global start order (newest = largest)
  std::size_t ledger_slot = 0;
  double remaining = 0.0;        ///< work left, Gunits
  double rate = 0.0;
  double power = 0.0;            ///< actual draw of the current segment, W
  double seg_start = 0.0;
  double energy_acc = 0.0;       ///< energy of finished segments, J
  double pending_energy = 0.0;   ///< precomputed current-segment product, J
  JobOutcome outcome;
};

struct Control {
  double at = 0.0;
  bool failure = false;  ///< false = cap change
  std::uint32_t vertex = 0;
  double budget = 0.0;           ///< cap change
  std::uint32_t cpu_lost = 0, gpu_lost = 0;  ///< node failure
};

class EventEngine {
 public:
  EventEngine(const hw::CpuMachine& node_type, const hw::GpuMachine* gpu_type,
              std::vector<SimJob> jobs, const ClusterSimConfig& config,
              const ClusterNodeProvider* provider)
      : node_type_(node_type),
        gpu_type_(gpu_type),
        jobs_(std::move(jobs)),
        config_(config),
        provider_(provider) {}

  ClusterRun run() {
    std::stable_sort(jobs_.begin(), jobs_.end(),
                     [](const SimJob& a, const SimJob& b) {
                       return a.arrival.value() < b.arrival.value();
                     });
    if (config_.hierarchy != nullptr && !config_.hierarchy->empty()) {
      spec_ = config_.hierarchy;
    } else {
      owned_spec_ = flat_hierarchy(
          config_.nodes, gpu_type_ != nullptr ? config_.gpu_nodes : 0,
          config_.global_budget);
      spec_ = &owned_spec_;
    }
    build_tree();
    profiles_ = build_cluster_profiles(node_type_, gpu_type_, jobs_, config_,
                                       provider_);
    build_controls();
    state_.resize(jobs_.size());
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      state_[j].remaining = jobs_[j].work_gunits;
    }
    event_loop();
    finalize();
    return std::move(run_);
  }

 private:
  // --- tree ----------------------------------------------------------

  void build_tree() {
    const auto& vs = spec_->vertices;
    verts_.resize(vs.size());
    for (std::size_t i = 0; i < vs.size(); ++i) {
      Vertex& v = verts_[i];
      v.parent = vs[i].parent;
      v.rack = !vs[i].cpu_nodes.empty() || !vs[i].gpu_nodes.empty();
      v.cap = vs[i].budget.value();
      v.level = &vs[i].level;
      if (v.parent >= 0) {
        verts_[static_cast<std::size_t>(v.parent)].children.push_back(
            static_cast<std::uint32_t>(i));
      }
      if (v.rack) {
        v.ledger = std::make_unique<GrantLedger>(v.cap);
        v.cpu_slots = vs[i].cpu_nodes.size();
        v.gpu_slots = gpu_type_ != nullptr ? vs[i].gpu_nodes.size() : 0;
      }
    }
    // A tree whose root is itself a rack (the flat spec) has no inner
    // vertices; otherwise every rack must sit under the root.
    recompute_totals();
    full_refresh();
  }

  [[nodiscard]] double slack(std::size_t v) const {
    const Vertex& V = verts_[v];
    return V.rack ? V.ledger->free_power() : V.cap - V.held;
  }

  void refresh_vertex(std::size_t v) {
    Vertex& V = verts_[v];
    if (V.rack) {
      const double free = V.ledger->free_power();
      V.adm[0] = V.cpu_busy < V.cpu_slots ? free : -kInf;
      V.adm[1] = V.gpu_busy < V.gpu_slots ? free : -kInf;
    } else {
      const double s = V.cap - V.held;
      for (int d = 0; d < 2; ++d) {
        V.adm[d] = std::min(s, V.kids_best[d]);
      }
    }
  }

  /// Re-solves the dirty path from `from` to the root: the vertex's own
  /// aggregate, then each ancestor's best-child cache from a child scan.
  void refresh_up(std::size_t from) {
    refresh_vertex(from);
    for (std::int32_t a = verts_[from].parent; a >= 0;
         a = verts_[static_cast<std::size_t>(a)].parent) {
      Vertex& A = verts_[static_cast<std::size_t>(a)];
      for (int d = 0; d < 2; ++d) {
        double best = -kInf;
        for (const std::uint32_t c : A.children) {
          best = std::max(best, verts_[c].adm[d]);
        }
        A.kids_best[d] = best;
      }
      refresh_vertex(static_cast<std::size_t>(a));
    }
    ++stats_.subtree_resolves;
  }

  /// Exact bottom-up recompute of every held aggregate and admissibility
  /// cache (children precede parents in reverse spec order). Control
  /// events use this; steady-state events use the incremental path walk.
  void full_refresh() {
    for (std::size_t i = verts_.size(); i-- > 0;) {
      Vertex& V = verts_[i];
      if (V.rack) {
        V.held = V.ledger->held_power();
      } else {
        double h = 0.0;
        for (const std::uint32_t c : V.children) h += verts_[c].held;
        V.held = h;
        for (int d = 0; d < 2; ++d) {
          double best = -kInf;
          for (const std::uint32_t c : V.children) {
            best = std::max(best, verts_[c].adm[d]);
          }
          V.kids_best[d] = best;
        }
      }
      refresh_vertex(i);
    }
    ++stats_.subtree_resolves;
  }

  void recompute_totals() {
    total_free_[0] = total_free_[1] = 0;
    for (const Vertex& v : verts_) {
      if (!v.rack) continue;
      total_free_[0] += v.cpu_slots - std::min(v.cpu_busy, v.cpu_slots);
      total_free_[1] += v.gpu_slots - std::min(v.gpu_busy, v.gpu_slots);
    }
  }

  [[nodiscard]] bool under(std::uint32_t rack, std::uint32_t ancestor) const {
    for (std::int32_t v = static_cast<std::int32_t>(rack); v >= 0;
         v = verts_[static_cast<std::size_t>(v)].parent) {
      if (static_cast<std::uint32_t>(v) == ancestor) return true;
    }
    return false;
  }

  /// Releases a grant at `rack` and restores the exact held aggregates
  /// up the path (the rack's from the ledger recompute, each ancestor's
  /// from a child sum).
  void release_at(std::uint32_t rack, std::size_t slot) {
    verts_[rack].held = verts_[rack].ledger->release(slot);
    for (std::int32_t a = verts_[rack].parent; a >= 0;
         a = verts_[static_cast<std::size_t>(a)].parent) {
      Vertex& A = verts_[static_cast<std::size_t>(a)];
      double h = 0.0;
      for (const std::uint32_t c : A.children) h += verts_[c].held;
      A.held = h;
    }
  }

  // --- placement and redistribution ----------------------------------

  /// Descends the tree by the per-domain admissibility aggregate and
  /// returns (rack, min path slack). Requires total_free_[d] > 0, which
  /// guarantees the descent terminates at a rack with a free slot.
  [[nodiscard]] std::pair<std::uint32_t, double> place(int d) const {
    std::size_t v = 0;
    double g = kInf;
    for (;;) {
      const Vertex& V = verts_[v];
      g = std::min(g, slack(v));
      if (V.rack) break;
      std::size_t best = 0;
      double best_adm = -kInf;
      for (const std::uint32_t c : V.children) {
        if (verts_[c].adm[d] > best_adm) {  // ties keep the lowest index
          best_adm = verts_[c].adm[d];
          best = c;
        }
      }
      v = best;
    }
    return {static_cast<std::uint32_t>(v), g};
  }

  /// Inter-rack power redistribution: raise the slack of every vertex on
  /// the placement path toward min(demand, root slack) by pulling unused
  /// budget from sibling subtrees through the common ancestor (ascending
  /// sibling order; transfers keep child caps within the parent's and
  /// never touch the root). Returns the recomputed path slack.
  double donate(std::uint32_t rack, double demand) {
    const double target = std::min(demand, slack(0));
    for (std::int32_t v = static_cast<std::int32_t>(rack);
         verts_[static_cast<std::size_t>(v)].parent >= 0;
         v = verts_[static_cast<std::size_t>(v)].parent) {
      Vertex& V = verts_[static_cast<std::size_t>(v)];
      double need = target - slack(static_cast<std::size_t>(v));
      if (need <= 0.0) continue;
      Vertex& P = verts_[static_cast<std::size_t>(V.parent)];
      for (const std::uint32_t s : P.children) {
        if (s == static_cast<std::uint32_t>(v)) continue;
        Vertex& S = verts_[s];
        const double avail =
            std::min(slack(s), P.cap - V.cap);  // keep cap(v) <= cap(parent)
        if (avail <= 0.0) continue;
        const double give = std::min(need, avail);
        S.cap -= give;
        if (S.rack) S.ledger->set_budget(S.cap);
        V.cap += give;
        if (V.rack) V.ledger->set_budget(V.cap);
        refresh_vertex(s);
        ++stats_.donations;
        stats_.watts_redistributed += give;
        need -= give;
        if (need <= 1e-9) break;
      }
    }
    refresh_up(rack);
    double g = kInf;
    for (std::int32_t v = static_cast<std::int32_t>(rack); v >= 0;
         v = verts_[static_cast<std::size_t>(v)].parent) {
      g = std::min(g, slack(static_cast<std::size_t>(v)));
    }
    return g;
  }

  // --- job starts ----------------------------------------------------

  void start_running(std::size_t j, std::uint32_t rack, Watts held,
                     double rate, double perf, Watts actual_power, bool gpu) {
    RunState& rs = state_[j];
    Vertex& R = verts_[rack];
    const double duration = rs.remaining / rate;
    rs.rack = rack;
    rs.gpu = gpu;
    rs.running = true;
    rs.rate = rate;
    rs.power = actual_power.value();
    rs.seg_start = now_;
    rs.pending_energy = (actual_power * Seconds{duration}).value();
    if (!rs.started) {
      rs.started = true;
      rs.outcome.name = jobs_[j].name;
      rs.outcome.arrival = jobs_[j].arrival;
      rs.outcome.start = Seconds{now_};
    }
    rs.outcome.finish = Seconds{now_ + duration};
    rs.outcome.budget = held;
    rs.outcome.perf = perf;
    rs.ledger_slot = R.ledger->hold(held.value());
    R.held += held.value();
    for (std::int32_t a = R.parent; a >= 0;
         a = verts_[static_cast<std::size_t>(a)].parent) {
      verts_[static_cast<std::size_t>(a)].held += held.value();
    }
    if (gpu) {
      ++R.gpu_busy;
      --total_free_[1];
    } else {
      ++R.cpu_busy;
      --total_free_[0];
    }
    ++rs.epoch;
    rs.seq = next_seq_++;
    running_map_.emplace(rs.seq, static_cast<std::uint32_t>(j));
    ++active_running_;
    heap_.push({now_ + duration, static_cast<std::uint32_t>(j), rs.epoch});
    for (std::int32_t v = static_cast<std::int32_t>(rack); v >= 0;
         v = verts_[static_cast<std::size_t>(v)].parent) {
      ++verts_[static_cast<std::size_t>(v)].grants;
    }
    if (in_emergency_regrant_) ++stats_.emergency_regrants;
    refresh_up(rack);
  }

  /// The flat engines' decision procedure over the tree: same check and
  /// counter order, with "free power" generalized to min path slack at
  /// the placement rack (identical when the tree is one rack).
  bool try_start_job(std::size_t j) {
    EventMetrics& m = event_metrics();
    m.attempts.add(1);
    const ClusterJobMeta& meta = profiles_.meta[j];
    if (meta.gpu) {
      if (gpu_type_ == nullptr || total_free_[1] == 0) return false;
      const GpuProfileParams& profile = profiles_.slots[meta.slot].gpu_profile;
      const double demand = std::min(profile.tot_max.value(),
                                     gpu_type_->gpu.board_max_cap.value());
      const double threshold = gpu_type_->gpu.board_min_cap.value();
      auto [rack, g] = place(1);
      if (spec_->redistribution && std::min(demand, g) < threshold) {
        g = donate(rack, demand);
      }
      const double grant = std::min(demand, std::max(0.0, g));
      if (grant < threshold) {  // driver rejects lower caps
        m.rejects.add(1);
        return false;
      }
      const sim::GpuNodeSim& node = *profiles_.slots[meta.slot].gpu_node;
      const GpuAllocation alloc =
          coord_gpu(profile, node.gpu_model(), Watts{grant});
      const sim::AllocationSample s =
          node.steady_state(alloc.mem_clock_index, Watts{grant});
      if (s.rate_gunits <= 0.0) return false;
      start_running(j, rack, Watts{grant - alloc.surplus.value()},
                    s.rate_gunits, s.perf, s.total_power(), /*gpu=*/true);
      m.starts.add(1);
      return true;
    }

    if (total_free_[0] == 0) return false;
    const CpuCriticalPowers& profile = profiles_.slots[meta.slot].cpu_profile;
    const double demand = profile.max_demand().value();
    const double threshold = profile.productive_threshold().value();
    auto [rack, g] = place(0);
    const double floor = config_.admission_control
                             ? threshold
                             : config_.min_grant.value();
    if (spec_->redistribution && std::min(demand, g) < floor) {
      g = donate(rack, demand);
    }
    const double grant = std::min(demand, std::max(0.0, g));
    if (config_.admission_control) {
      if (grant < threshold) {
        m.rejects.add(1);
        return false;
      }
    } else if (grant < config_.min_grant.value()) {
      m.rejects.add(1);
      return false;
    }

    CpuAllocation alloc;
    if (config_.policy == SplitPolicy::kCoord) {
      alloc = coord_cpu(profile, Watts{grant});
    } else {
      alloc = fixed_ratio_split(Watts{grant}, 0.5);
    }
    const sim::AllocationSample s =
        profiles_.slots[meta.slot].cpu_node->steady_state(alloc.cpu,
                                                          alloc.mem);
    if (s.rate_gunits <= 0.0) return false;
    // Only the power COORD actually allocated is held; surplus stays in
    // the pool.
    start_running(j, rack, Watts{grant - alloc.surplus.value()},
                  s.rate_gunits, s.perf, s.total_power(), /*gpu=*/false);
    m.starts.add(1);
    return true;
  }

  // --- queue (the flat fast path's admission index, verbatim) --------

  void queue_push(std::size_t j) {
    queue_.insert(j);
    const ClusterJobMeta& meta = profiles_.meta[j];
    if (std::isfinite(meta.threshold)) {
      buckets_[meta.gpu ? 1 : 0][meta.threshold].insert(j);
    }
  }

  void bucket_remove(std::size_t j) {
    const ClusterJobMeta& meta = profiles_.meta[j];
    if (!std::isfinite(meta.threshold)) return;
    auto& domain = buckets_[meta.gpu ? 1 : 0];
    const auto it = domain.find(meta.threshold);
    it->second.erase(j);
    if (it->second.empty()) domain.erase(it);
  }

  void queue_erase(std::size_t j) {
    queue_.erase(j);
    bucket_remove(j);
  }

  /// Lowest-indexed queued job whose pre-solve start checks could pass
  /// right now. Without redistribution the root aggregate is exact;
  /// with it, the root's own slack is the (optimistic) upper bound on
  /// what donations can assemble — an over-admitted job simply fails
  /// try_start_job and is parked for the rest of the pass.
  [[nodiscard]] std::size_t min_eligible() const {
    std::size_t best = kClusterNoSlot;
    for (int d = 0; d < 2; ++d) {
      double avail;
      if (total_free_[d] == 0) {
        avail = -kInf;
      } else {
        avail = spec_->redistribution ? slack(0) : verts_[0].adm[d];
      }
      for (const auto& [threshold, members] : buckets_[d]) {
        if (threshold > avail) break;
        best = std::min(best, *members.begin());
      }
    }
    return best;
  }

  void drop_queue_head() { queue_erase(*queue_.begin()); }

  void try_start_queue_head() {
    while (!queue_.empty()) {
      const std::size_t head = *queue_.begin();
      if (!try_start_job(head)) break;
      queue_erase(head);
    }
    if (config_.queue_policy != QueuePolicy::kBackfill) return;
    if (queue_.size() < 2) return;
    const std::size_t head = *queue_.begin();

    // Backfill: repeatedly start the lowest-indexed eligible job (see
    // cluster_sim.cpp for why this reproduces the linear rescan). The
    // blocked head and jobs whose attempt fails are parked outside the
    // buckets until the pass ends.
    std::vector<std::size_t> parked;
    for (;;) {
      const std::size_t j = min_eligible();
      if (j == kClusterNoSlot) break;
      if (j == head) {  // the blocked head keeps its place
        bucket_remove(j);
        parked.push_back(j);
        continue;
      }
      if (try_start_job(j)) {
        queue_erase(j);
      } else {
        bucket_remove(j);
        parked.push_back(j);
      }
    }
    for (const std::size_t j : parked) {
      const ClusterJobMeta& meta = profiles_.meta[j];
      buckets_[meta.gpu ? 1 : 0][meta.threshold].insert(j);
    }
  }

  // --- preemption and control events ---------------------------------

  void preempt(std::uint32_t j, bool emergency) {
    RunState& rs = state_[j];
    Vertex& R = verts_[rs.rack];
    const double elapsed = now_ - rs.seg_start;
    rs.remaining = std::max(0.0, rs.remaining - rs.rate * elapsed);
    rs.energy_acc += rs.power * elapsed;
    release_at(rs.rack, rs.ledger_slot);
    if (rs.gpu) {
      --R.gpu_busy;
    } else {
      --R.cpu_busy;
    }
    rs.running = false;
    ++rs.epoch;  // the heap entry for this segment is now stale
    running_map_.erase(rs.seq);
    --active_running_;
    queue_push(j);  // original index → original FIFO position
    ++stats_.jobs_preempted;
    if (emergency) ++stats_.emergency_sheds;
  }

  /// Returns true when the event was a cap drop that shed jobs (the
  /// caller's immediate queue pass is then the emergency re-grant pass).
  bool process_control(const Control& c) {
    bool emergency = false;
    if (!c.failure) {
      Vertex& V = verts_[c.vertex];
      V.cap = c.budget;
      const double tol = 1e-6 * std::max(1.0, c.budget);
      if (V.held > c.budget + tol) {
        // Shed newest-started jobs under the vertex until it fits.
        std::vector<std::uint32_t> victims;
        for (auto it = running_map_.rbegin(); it != running_map_.rend();
             ++it) {
          if (under(state_[it->second].rack, c.vertex)) {
            victims.push_back(it->second);
          }
        }
        for (const std::uint32_t j : victims) {
          if (V.held <= c.budget + tol) break;
          preempt(j, /*emergency=*/true);
          emergency = true;
        }
      }
      // Re-cap the rack's ledger only after shedding: the sheds above
      // release grants through it, and a ledger already in deficit would
      // trip the release-path drift assert. Post-shed the held power
      // fits the new budget (within tol), so set_budget's clamp covers
      // at most the tolerance band.
      if (V.rack) V.ledger->set_budget(c.budget);
      stats_.caps_respected =
          stats_.caps_respected && V.held <= c.budget + tol;
    } else {
      Vertex& V = verts_[c.vertex];
      V.cpu_slots -= std::min<std::size_t>(c.cpu_lost, V.cpu_slots);
      V.gpu_slots -= std::min<std::size_t>(c.gpu_lost, V.gpu_slots);
      for (int d = 0; d < 2; ++d) {
        const bool gpu = d == 1;
        while ((gpu ? V.gpu_busy : V.cpu_busy) >
               (gpu ? V.gpu_slots : V.cpu_slots)) {
          // Newest-started job of this domain on the failed rack.
          std::uint32_t victim = kNoVertex;
          for (auto it = running_map_.rbegin(); it != running_map_.rend();
               ++it) {
            const RunState& rs = state_[it->second];
            if (rs.rack == c.vertex && rs.gpu == gpu) {
              victim = it->second;
              break;
            }
          }
          if (victim == kNoVertex) break;
          preempt(victim, /*emergency=*/false);
        }
      }
    }
    // Control events are rare; pay one exact bottom-up re-solve so every
    // aggregate (and the slot totals) is clean before the re-grant pass.
    recompute_totals();
    full_refresh();
    return emergency;
  }

  void build_controls() {
    if (config_.scenario == nullptr) return;
    for (const CapChangeEvent& e : config_.scenario->cap_changes) {
      Control c;
      c.at = e.at.value();
      c.vertex = e.vertex;
      c.budget = e.budget.value();
      controls_.push_back(c);
    }
    for (const NodeFailureEvent& e : config_.scenario->failures) {
      Control c;
      c.at = e.at.value();
      c.failure = true;
      c.vertex = e.vertex;
      c.cpu_lost = e.cpu_lost;
      c.gpu_lost = e.gpu_lost;
      controls_.push_back(c);
    }
    std::stable_sort(controls_.begin(), controls_.end(),
                     [](const Control& a, const Control& b) {
                       return a.at < b.at;
                     });
  }

  // --- event loop ----------------------------------------------------

  /// Earliest live completion; lazily pops entries invalidated by
  /// preemption.
  [[nodiscard]] double peek_completion() {
    while (!heap_.empty()) {
      const HeapEntry& e = heap_.top();
      const RunState& rs = state_[e.job];
      if (rs.running && rs.epoch == e.epoch) return e.finish;
      heap_.pop();
    }
    return kNever;
  }

  void complete_top() {
    const HeapEntry e = heap_.top();
    heap_.pop();
    now_ = e.finish;
    RunState& rs = state_[e.job];
    Vertex& R = verts_[rs.rack];
    release_at(rs.rack, rs.ledger_slot);
    if (rs.gpu) {
      --R.gpu_busy;
      ++total_free_[1];
    } else {
      --R.cpu_busy;
      ++total_free_[0];
    }
    rs.running = false;
    running_map_.erase(rs.seq);
    --active_running_;
    rs.outcome.energy = Joules{rs.energy_acc + rs.pending_energy};
    run_.jobs.push_back(rs.outcome);
    run_.total_energy += rs.outcome.energy;
    refresh_up(rs.rack);
  }

  void event_loop() {
    EventMetrics& m = event_metrics();
    while (next_arrival_ < jobs_.size() || active_running_ > 0 ||
           !queue_.empty() || next_control_ < controls_.size()) {
      // Latency histogram: sample one event in 256 to keep the timing
      // cost off the hot path.
      const bool sample = (stats_.events & 0xFF) == 0;
      const auto t0 = sample ? std::chrono::steady_clock::now()
                             : std::chrono::steady_clock::time_point{};

      const double t_control = next_control_ < controls_.size()
                                   ? controls_[next_control_].at
                                   : kNever;
      const double t_arrive = next_arrival_ < jobs_.size()
                                  ? jobs_[next_arrival_].arrival.value()
                                  : kNever;
      const double t_finish = peek_completion();

      bool emergency = false;
      if (next_control_ < controls_.size() && t_control <= t_arrive &&
          t_control <= t_finish) {
        // Control events win ties: a cap that drops "at" an arrival is
        // already in force when the arrival is considered.
        now_ = t_control;
        emergency = process_control(controls_[next_control_++]);
      } else if (t_arrive <= t_finish && next_arrival_ < jobs_.size()) {
        now_ = t_arrive;
        queue_push(next_arrival_);
        ++next_arrival_;
      } else if (active_running_ > 0) {
        complete_top();
      } else {
        // Queue non-empty but nothing running, no arrivals, no controls:
        // the head can never start. Drop it so the rest can drain.
        drop_queue_head();
      }
      ++stats_.events;
      in_emergency_regrant_ = emergency;
      try_start_queue_head();
      in_emergency_regrant_ = false;

      if (sample) {
        const auto dt = std::chrono::steady_clock::now() - t0;
        m.latency_us.observe(
            std::chrono::duration<double, std::micro>(dt).count());
      }
    }
  }

  void finalize() {
    // Identical to the flat engines' finalize_stats (work sums over ALL
    // jobs, including dropped ones).
    if (!run_.jobs.empty()) {
      double wait = 0.0;
      double response = 0.0;
      double work = 0.0;
      double makespan = 0.0;
      for (const auto& o : run_.jobs) {
        wait += o.wait().value();
        response += o.response().value();
        makespan = std::max(makespan, o.finish.value());
      }
      for (const auto& job : jobs_) work += job.work_gunits;
      const auto n = static_cast<double>(run_.jobs.size());
      run_.mean_wait = Seconds{wait / n};
      run_.mean_response = Seconds{response / n};
      run_.makespan = Seconds{makespan};
      run_.work_per_joule = run_.total_energy.value() > 0.0
                                ? work / run_.total_energy.value()
                                : 0.0;
    }
    run_.event_stats = stats_;

    EventMetrics& m = event_metrics();
    m.events.add(stats_.events);
    m.resolves.add(stats_.subtree_resolves);
    m.preempted.add(stats_.jobs_preempted);
    m.shed_regrant.add(stats_.emergency_sheds + stats_.emergency_regrants);
    if (stats_.watts_redistributed > 0.0) {
      m.redistributed.add(stats_.watts_redistributed);
    }
    // Per-level grant counters, flushed once per run.
    std::map<std::string, std::uint64_t> by_level;
    for (const Vertex& v : verts_) {
      if (v.grants > 0) by_level[*v.level] += v.grants;
    }
    for (const auto& [level, count] : by_level) {
      obs::global_registry()
          .counter("pbc_cluster_level_grants_total",
                   "Grants placed through budget-tree vertices, by level",
                   {{"level", level}})
          .add(count);
    }
  }

  const hw::CpuMachine& node_type_;
  const hw::GpuMachine* gpu_type_;
  std::vector<SimJob> jobs_;
  const ClusterSimConfig& config_;
  const ClusterNodeProvider* provider_;

  HierarchySpec owned_spec_;
  const HierarchySpec* spec_ = nullptr;
  std::vector<Vertex> verts_;
  ClusterProfiles profiles_;
  std::vector<RunState> state_;
  std::vector<Control> controls_;

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapOrder> heap_;
  std::map<std::uint64_t, std::uint32_t> running_map_;  ///< start seq → job
  std::set<std::size_t> queue_;
  /// threshold → queued job indices, per domain (0 = CPU, 1 = GPU); jobs
  /// with a +inf threshold stay out (they only leave via drop-head).
  std::map<double, std::set<std::size_t>> buckets_[2];
  std::size_t total_free_[2] = {0, 0};
  std::size_t next_arrival_ = 0;
  std::size_t next_control_ = 0;
  std::size_t active_running_ = 0;
  std::uint64_t next_seq_ = 0;
  double now_ = 0.0;
  bool in_emergency_regrant_ = false;
  ClusterEventStats stats_;
  ClusterRun run_;
};

}  // namespace

ClusterRun simulate_cluster_events(const hw::CpuMachine& node_type,
                                   const hw::GpuMachine* gpu_type,
                                   std::vector<SimJob> jobs,
                                   const ClusterSimConfig& config,
                                   const ClusterNodeProvider* provider) {
  return EventEngine(node_type, gpu_type, std::move(jobs), config, provider)
      .run();
}

}  // namespace pbc::core::detail
