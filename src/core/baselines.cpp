#include "core/baselines.hpp"

#include <algorithm>
#include <cassert>

namespace pbc::core {

const sim::AllocationSample& oracle_best(
    const sim::BudgetSweep& sweep) noexcept {
  assert(!sweep.samples.empty());
  return *sweep.best();
}

CpuAllocation memory_first(const CpuCriticalPowers& p, Watts budget) noexcept {
  CpuAllocation a;
  const double pb = budget.value();
  // Memory gets its full demand first (but never squeezes the CPU below its
  // hardware floor), the CPU whatever remains.
  a.mem = Watts{std::min(p.mem_l1.value(),
                         std::max(pb - p.cpu_l4.value(), 0.0))};
  a.cpu = Watts{pb - a.mem.value()};
  if (pb >= p.max_demand().value()) {
    a.cpu = p.cpu_l1;
    a.status = CoordStatus::kPowerSurplus;
    a.surplus = Watts{pb - a.total().value()};
  } else if (pb < p.productive_threshold().value()) {
    a.status = CoordStatus::kBudgetTooSmall;
  }
  return a;
}

CpuAllocation fixed_ratio_split(Watts budget, double cpu_fraction) noexcept {
  CpuAllocation a;
  const double f = std::clamp(cpu_fraction, 0.0, 1.0);
  a.cpu = Watts{budget.value() * f};
  a.mem = Watts{budget.value() * (1.0 - f)};
  return a;
}

}  // namespace pbc::core
