// Scenario categorization of cross-component power allocations (paper §3.2).
//
// For a fixed total budget, each split of the budget between processor and
// memory falls into one of six categories on CPU machines:
//   I   adequate power for both components
//   II  adequate memory power, lightly constrained CPU power (DVFS region)
//   III adequate CPU power, constrained memory power (BW throttling)
//   IV  adequate memory power, seriously constrained CPU power (T-states)
//   V   adequate CPU power, minimum memory power (DRAM at its floor)
//   VI  adequate memory power, minimum CPU power (package at its floor)
// GPUs expose only I-III: the driver's cap clamps and automatic budget
// reclaim remove the catastrophic configurations (§4).
//
// Two classifiers are provided: a mechanism-aware one that reads the
// governor telemetry the simulator reports (which power-saving state was
// engaged), and a black-box one that, like the paper's Fig. 3 analysis,
// uses only the externally observable performance and actual-power curves.
// Tests cross-validate them.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "hw/machine.hpp"
#include "sim/sweep.hpp"

namespace pbc::core {

enum class Category { kI, kII, kIII, kIV, kV, kVI };

[[nodiscard]] constexpr const char* to_string(Category c) noexcept {
  switch (c) {
    case Category::kI:
      return "I";
    case Category::kII:
      return "II";
    case Category::kIII:
      return "III";
    case Category::kIV:
      return "IV";
    case Category::kV:
      return "V";
    case Category::kVI:
      return "VI";
  }
  return "?";
}

/// Mechanism-aware classification of one sample on a CPU machine.
[[nodiscard]] Category categorize_cpu(const sim::AllocationSample& s,
                                      const hw::CpuMachine& machine) noexcept;

/// Black-box classification of sample `index` within a split sweep, using
/// only perf / actual-power observations (no governor telemetry). The sweep
/// must be in ascending mem_cap order, as produced by sweep_cpu_split.
[[nodiscard]] Category categorize_cpu_blackbox(const sim::BudgetSweep& sweep,
                                               std::size_t index,
                                               const hw::CpuMachine& machine);

/// GPU classification of sample `index` within a memory-clock sweep (ascending
/// estimated memory power): flat perf → I, falling → II, rising → III.
[[nodiscard]] Category categorize_gpu(const sim::BudgetSweep& sweep,
                                      std::size_t index) noexcept;

/// A contiguous run of samples sharing one category along the split axis.
struct CategorySpan {
  Category category = Category::kI;
  std::size_t first = 0;  ///< sample indices [first, last]
  std::size_t last = 0;
  Watts mem_lo{0.0};      ///< mem_cap range covered
  Watts mem_hi{0.0};
};

/// Splits a CPU budget sweep into category spans (mechanism-aware).
[[nodiscard]] std::vector<CategorySpan> category_spans_cpu(
    const sim::BudgetSweep& sweep, const hw::CpuMachine& machine);

/// Splits a GPU memory-clock sweep into category spans.
[[nodiscard]] std::vector<CategorySpan> category_spans_gpu(
    const sim::BudgetSweep& sweep);

/// The distinct categories present, in span order (paper: the set shrinks
/// as the total budget shrinks).
[[nodiscard]] std::vector<Category> categories_present(
    const std::vector<CategorySpan>& spans);

/// Renders spans like "V[40,64] III[68,116] I[120,128] II[132,188] ...".
[[nodiscard]] std::string format_spans(const std::vector<CategorySpan>& spans);

}  // namespace pbc::core
