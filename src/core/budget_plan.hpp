// Budget planning — the paper's research question 4: "what ranges of P_b
// are acceptable regarding achievable performance and power efficiency?"
//
// For a (workload, machine) pair the planner derives the budget landmarks
// a higher-level scheduler needs:
//   * reject_below   — the productive threshold (categories I-III
//                       unreachable underneath; §5.1 heuristic 1);
//   * efficient_at   — the budget maximizing perf per consumed watt;
//   * diminishing_at — where the marginal perf per extra budget watt falls
//                       under a knee fraction of its peak;
//   * saturation_at  — where perf_max stops growing (extra power is pure
//                       surplus; §3.1 "power over-budgeting wastes power").
#pragma once

#include <vector>

#include "core/critical.hpp"
#include "core/frontier.hpp"
#include "sim/cpu_node.hpp"

namespace pbc::core {

struct BudgetPlan {
  Watts reject_below{0.0};
  Watts efficient_at{0.0};
  Watts diminishing_at{0.0};
  Watts saturation_at{0.0};
  /// perf_max at saturation (the workload's best on this machine).
  double peak_perf = 0.0;
  /// Best perf-per-consumed-watt observed, and the perf there.
  double peak_efficiency = 0.0;
  double perf_at_efficient = 0.0;
  /// The frontier the landmarks were derived from.
  std::vector<FrontierPoint> frontier;
};

struct BudgetPlanOptions {
  Watts grid_step{8.0};
  /// Marginal gain below this fraction of the peak marginal gain counts
  /// as diminishing returns.
  double knee_fraction = 0.25;
  sim::CpuSweepOptions sweep{Watts{48.0}, Watts{40.0}, Watts{4.0}};
};

/// Builds the plan from a frontier sweep between the productive threshold
/// and beyond the max demand.
[[nodiscard]] BudgetPlan plan_budget(const sim::CpuNodeSim& node,
                                     const BudgetPlanOptions& opt = {});

}  // namespace pbc::core
