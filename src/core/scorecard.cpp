#include "core/scorecard.hpp"

#include <algorithm>
#include <sstream>

#include "core/baselines.hpp"
#include "core/categorize.hpp"
#include "core/coord.hpp"
#include "core/critical.hpp"
#include "core/frontier.hpp"
#include "core/optimal.hpp"
#include "hw/platforms.hpp"
#include "sim/sweep.hpp"
#include "util/table.hpp"
#include "workload/cpu_suite.hpp"
#include "workload/gpu_suite.hpp"

namespace pbc::core {

namespace {

ClaimResult judge(std::string id, std::string claim, double value,
                  double lo, double hi, const std::string& unit) {
  ClaimResult r;
  r.id = std::move(id);
  r.claim = std::move(claim);
  r.value = value;
  r.band_lo = lo;
  r.band_hi = hi;
  r.in_band = value >= lo && value <= hi;
  std::ostringstream ss;
  ss << TableWriter::num(value, 2) << ' ' << unit << " (band "
     << TableWriter::num(lo, 2) << ".." << TableWriter::num(hi, 2) << ')';
  r.measured = ss.str();
  return r;
}

double best_of(const std::vector<sim::AllocationSample>& samples) {
  double best = 0.0;
  for (const auto& s : samples) best = std::max(best, s.perf);
  return best;
}

double worst_of(const std::vector<sim::AllocationSample>& samples) {
  double worst = 1e300;
  for (const auto& s : samples) worst = std::min(worst, s.perf);
  return worst;
}

}  // namespace

std::vector<ClaimResult> run_scorecard() {
  std::vector<ClaimResult> out;
  const auto ivy = hw::ivybridge_node();

  // --- Fig. 1: STREAM spread at 208 W (paper: up to ~30x). ---
  {
    const sim::CpuNodeSim node(ivy, workload::stream_cpu());
    const auto samples = sim::sweep_cpu_split(
        node, Watts{208.0}, {Watts{40.0}, Watts{32.0}, Watts{4.0}});
    out.push_back(judge("fig1/cpu-stream-spread",
                        "STREAM @208 W best/worst split ~30x",
                        best_of(samples) / worst_of(samples), 20.0, 90.0,
                        "x"));
  }

  // --- Fig. 3: SRA scenario-I powers and span (paper: 112/116 W,
  //     P_mem in [120,132]). ---
  {
    const sim::CpuNodeSim node(ivy, workload::sra());
    const auto u = node.uncapped();
    out.push_back(judge("fig3/sra-cpu-power",
                        "SRA unconstrained CPU power ~112 W",
                        u.proc_power.value(), 104.0, 120.0, "W"));
    out.push_back(judge("fig3/sra-mem-power",
                        "SRA unconstrained DRAM power ~116 W",
                        u.mem_power.value(), 108.0, 124.0, "W"));
    sim::BudgetSweep sweep;
    sweep.budget = Watts{240.0};
    sweep.samples = sim::sweep_cpu_split(
        node, Watts{240.0}, {Watts{40.0}, Watts{32.0}, Watts{4.0}});
    const auto cats =
        categories_present(category_spans_cpu(sweep, ivy));
    out.push_back(judge("fig3/six-categories",
                        "six scenario categories at 240 W",
                        static_cast<double>(cats.size()), 6.0, 6.0,
                        "categories"));
  }

  // --- Fig. 2: DGEMM frontier saturates near 240 W. ---
  {
    const sim::CpuNodeSim node(ivy, workload::dgemm());
    const auto budgets =
        sim::budget_grid(Watts{140.0}, Watts{290.0}, Watts{10.0});
    const auto frontier = perf_frontier_cpu(
        node, budgets, {Watts{40.0}, Watts{32.0}, Watts{4.0}});
    out.push_back(judge("fig2/dgemm-saturation",
                        "DGEMM perf_max flattens near 240 W",
                        saturation_budget(frontier).value(), 200.0, 260.0,
                        "W"));
  }

  // --- Table 1 / §3.4.2: SRA optimum at 224 W and shift asymmetry. ---
  {
    const sim::CpuNodeSim node(ivy, workload::sra());
    const auto row = optimal_allocation_row(
        node, Watts{224.0}, Watts{24.0}, {Watts{40.0}, Watts{32.0},
                                          Watts{4.0}});
    out.push_back(judge("tab1/sra-optimum-cpu",
                        "optimal split at 224 W ~(108, 116)",
                        row.best_proc.value(), 96.0, 120.0, "W cpu"));
    out.push_back(judge("tab1/shift-mem-loss",
                        "-50% when 24 W leave DRAM",
                        100.0 * row.loss_mem_underpowered, 35.0, 65.0, "%"));
    out.push_back(judge("tab1/shift-cpu-loss",
                        "-10% when 24 W leave the CPU",
                        100.0 * row.loss_proc_underpowered, 4.0, 22.0, "%"));
    out.push_back(judge(
        "tab1/critical-component",
        "DRAM critical at 224 W",
        row.critical && *row.critical == hw::Component::kMemory ? 1.0 : 0.0,
        1.0, 1.0, "bool"));
  }

  // --- Fig. 9 CPU: COORD accuracy. ---
  {
    double gap_sum = 0.0;
    int n = 0;
    double large_worst = 0.0;
    for (const auto& wl : workload::cpu_suite()) {
      const sim::CpuNodeSim node(ivy, wl);
      const auto profile = profile_critical_powers(node);
      for (double b = 145.0; b <= 265.0; b += 20.0) {
        const auto alloc = coord_cpu(profile, Watts{b});
        if (alloc.status == CoordStatus::kBudgetTooSmall) continue;
        sim::BudgetSweep sweep;
        sweep.budget = Watts{b};
        sweep.samples = sim::sweep_cpu_split(
            node, Watts{b}, {Watts{40.0}, Watts{32.0}, Watts{4.0}});
        const double oracle = oracle_best(sweep).perf;
        const double coord = node.steady_state(alloc.cpu, alloc.mem).perf;
        const double gap = std::max(0.0, 1.0 - coord / oracle);
        gap_sum += gap;
        ++n;
        if (b >= 200.0) large_worst = std::max(large_worst, gap);
      }
    }
    out.push_back(judge("fig9/coord-mean-gap",
                        "COORD ~9.6% mean gap from the oracle",
                        100.0 * gap_sum / n, 0.0, 16.0, "%"));
    out.push_back(judge("fig9/coord-large-cap-gap",
                        "COORD <5% from the oracle at large caps",
                        100.0 * large_worst, 0.0, 8.0, "%"));
  }

  // --- Fig. 6/9 GPU: SGEMM demand, Titan V saturation, default-policy gain. ---
  {
    const sim::GpuNodeSim xp(hw::titan_xp(), workload::sgemm());
    out.push_back(judge("fig6/sgemm-xp-demand",
                        "SGEMM demands >300 W on the Titan XP",
                        xp.uncapped_board_power().value(), 300.0, 400.0,
                        "W"));
    const sim::GpuNodeSim v(hw::titan_v(), workload::sgemm());
    const auto caps = sim::budget_grid(Watts{125.0}, Watts{300.0},
                                       Watts{12.5});
    const auto frontier = perf_frontier_gpu(v, caps);
    out.push_back(judge("fig6/sgemm-v-saturation",
                        "SGEMM flattens near 180 W on the Titan V",
                        saturation_budget(frontier).value(), 150.0, 210.0,
                        "W"));

    double max_gain = 0.0;
    for (const auto& wl : workload::gpu_suite()) {
      const sim::GpuNodeSim node(hw::titan_xp(), wl);
      const auto p = profile_gpu_params(node);
      for (double cap = 125.0; cap <= 300.0; cap += 25.0) {
        const auto a = coord_gpu(p, node.gpu_model(), Watts{cap});
        const double coord =
            node.steady_state(a.mem_clock_index, Watts{cap}).perf;
        const double dflt = node.default_policy(Watts{cap}).perf;
        max_gain = std::max(max_gain, coord / dflt - 1.0);
      }
    }
    out.push_back(judge("fig9/gpu-gain-over-default",
                        "COORD up to ~33% over the default policy",
                        100.0 * max_gain, 20.0, 45.0, "%"));
  }

  return out;
}

bool all_in_band(const std::vector<ClaimResult>& results) {
  return std::all_of(results.begin(), results.end(),
                     [](const ClaimResult& r) { return r.in_band; });
}

}  // namespace pbc::core
