// The upper performance bound perf_max(P_b) and its analysis (paper §3.1,
// research question 1; Figs. 2 and 6).
//
// For each total budget the frontier records the best achievable
// performance over all splits and the split that achieves it. The curve
// analysis locates the saturation budget (beyond which extra power is
// waste) and the productive threshold (below which performance and
// efficiency are unacceptably poor) — the two budgeting guardrails the
// paper derives for higher-level schedulers.
#pragma once

#include <span>
#include <vector>

#include "sim/sweep.hpp"
#include "util/interp.hpp"
#include "util/thread_pool.hpp"

namespace pbc::core {

struct FrontierPoint {
  Watts budget{0.0};
  double perf_max = 0.0;
  Watts best_proc_cap{0.0};
  Watts best_mem_cap{0.0};
  /// Power actually consumed at the best split (≤ budget).
  Watts consumed{0.0};
};

/// Frontier over a budget grid for a CPU node (parallel sweep per budget).
[[nodiscard]] std::vector<FrontierPoint> perf_frontier_cpu(
    const sim::CpuNodeSim& node, std::span<const Watts> budgets,
    const sim::CpuSweepOptions& opt = {}, ThreadPool* pool = nullptr);

/// Frontier over board caps for a GPU node.
[[nodiscard]] std::vector<FrontierPoint> perf_frontier_gpu(
    const sim::GpuNodeSim& node, std::span<const Watts> board_caps,
    ThreadPool* pool = nullptr);

/// perf_max as a piecewise-linear curve of the budget.
[[nodiscard]] Result<PiecewiseLinear> frontier_curve(
    std::span<const FrontierPoint> frontier);

/// Smallest budget whose perf_max is within rel_tol of the final value —
/// the point where provisioning more power stops paying (Fig. 2's "finally
/// stops growing").
[[nodiscard]] Watts saturation_budget(std::span<const FrontierPoint> frontier,
                                      double rel_tol = 0.02);

/// Smallest budget achieving at least `frac` of the final perf_max — a
/// productive-threshold proxy for admission control.
[[nodiscard]] Watts productive_budget(std::span<const FrontierPoint> frontier,
                                      double frac = 0.25);

}  // namespace pbc::core
