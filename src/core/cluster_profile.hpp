// Shared pre-profiling for the prepared-node cluster engines (kFast and
// kEvent): deduplicate workloads, build one prepared simulator node and
// one critical-power profile per distinct (domain, workload) pair —
// fanned out over a ThreadPool — and derive each job's start threshold
// for the admission index. Extracted from the fast path's profiling
// stage so the event engine shares it verbatim; identical inputs
// produce bit-identical profiles (pinned solves only), which is half of
// the flat-mode bit-identity contract (docs/cluster.md).
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "core/cluster_sim.hpp"
#include "core/critical.hpp"

namespace pbc::core::detail {

inline constexpr double kClusterInf = std::numeric_limits<double>::infinity();
inline constexpr std::size_t kClusterNoSlot =
    std::numeric_limits<std::size_t>::max();

struct ClusterJobMeta {
  bool gpu = false;
  std::size_t slot = kClusterNoSlot;  ///< distinct-workload slot
  /// Minimum free power at which the pre-solve start checks pass; +inf
  /// when they never can (GPU job without GPU nodes, demand below the
  /// admission floor).
  double threshold = kClusterInf;
};

/// One distinct (domain, workload) pair: its prepared node and profile,
/// built once per run and shared by every job carrying that workload.
struct ClusterDistinctSlot {
  bool gpu = false;
  std::size_t first_job = 0;
  sim::PreparedCpuNode cpu_node;
  sim::PreparedGpuNode gpu_node;
  CpuCriticalPowers cpu_profile;
  GpuProfileParams gpu_profile;
};

struct ClusterProfiles {
  std::vector<ClusterJobMeta> meta;    ///< one entry per job, job order
  std::vector<ClusterDistinctSlot> slots;
};

/// Deduplicates workloads by their exact text form (to_text round-trips
/// every double, so equal text ⟺ equal workload), then builds one
/// prepared node and one profile per distinct pair across config.pool
/// (global_pool() when null; serial when already on a pool worker).
/// `jobs` must already be in the engine's run order (stable-sorted by
/// arrival) so slot numbering matches between engines.
[[nodiscard]] ClusterProfiles build_cluster_profiles(
    const hw::CpuMachine& node_type, const hw::GpuMachine* gpu_type,
    const std::vector<SimJob>& jobs, const ClusterSimConfig& config,
    const ClusterNodeProvider* provider);

}  // namespace pbc::core::detail
