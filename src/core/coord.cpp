#include "core/coord.hpp"

#include <algorithm>

namespace pbc::core {

CpuAllocation coord_cpu(const CpuCriticalPowers& p, Watts budget,
                        CpuCoordVariant variant) noexcept {
  CpuAllocation a;
  const double pb = budget.value();

  if (pb >= p.cpu_l1.value() + p.mem_l1.value()) {
    // (A) Adequate power for both: cap each at its maximum demand and hand
    // the remainder back.
    a.cpu = p.cpu_l1;
    a.mem = p.mem_l1;
    a.status = CoordStatus::kPowerSurplus;
    a.surplus = Watts{pb - a.total().value()};
  } else if (pb >= p.cpu_l2.value() + p.mem_l1.value()) {
    // (B) Adequate power for one: warrant memory its full demand — memory
    // constraints hurt performance more than DVFS does (scenario III vs II).
    a.mem = p.mem_l1;
    a.cpu = Watts{pb - a.mem.value()};
  } else if (pb >= p.cpu_l2.value() + p.mem_l2.value()) {
    if (variant == CpuCoordVariant::kProportional) {
      // (C) Neither component is adequate: split the headroom above the
      // lowest-performance-state powers in proportion to the demand ranges.
      const double pd_cpu = p.cpu_l1.value() - p.cpu_l2.value();
      const double pd_mem = p.mem_l1.value() - p.mem_l2.value();
      const double pct_cpu =
          pd_cpu + pd_mem > 0.0 ? pd_cpu / (pd_cpu + pd_mem) : 0.5;
      const double prop = pb - (p.cpu_l2.value() + p.mem_l2.value());
      a.cpu = Watts{p.cpu_l2.value() + pct_cpu * prop};
      a.mem = Watts{pb - a.cpu.value()};
    } else {
      // (C') Extension: pin the processor at the bottom of its DVFS range
      // and spend every remaining watt on memory bandwidth.
      a.cpu = p.cpu_l2;
      a.mem = Watts{pb - a.cpu.value()};
    }
  } else {
    // (D) Below the productive threshold: both components would have to be
    // throttled down; reject the job (still return a best-effort split in
    // case the caller insists on running).
    a.status = CoordStatus::kBudgetTooSmall;
    const double cpu_share = std::clamp(pb - p.mem_l3.value(),
                                        p.cpu_l4.value(),
                                        p.cpu_l3.value());
    a.cpu = Watts{cpu_share};
    a.mem = Watts{std::max(pb - cpu_share, p.mem_l3.value())};
  }
  return a;
}

std::size_t mem_clock_for_power(const hw::GpuModel& model,
                                Watts power) noexcept {
  std::size_t best = 0;
  for (std::size_t i = 0; i < model.mem_clock_count(); ++i) {
    if (model.estimated_mem_power(i).value() <= power.value() + 1e-9) {
      best = i;
    }
  }
  return best;
}

GpuAllocation coord_gpu(const GpuProfileParams& p, const hw::GpuModel& model,
                        Watts budget, double gamma) noexcept {
  GpuAllocation a;
  const double pb = budget.value();

  if (pb >= p.tot_max.value()) {
    a.status = CoordStatus::kPowerSurplus;
    a.surplus = Watts{pb - p.tot_max.value()};
  }

  if (p.compute_intensive) {
    // Compute intensive: starve memory, feed the SMs.
    a.mem = p.mem_min;
  } else if (pb >= p.tot_ref.value()) {
    // Memory intensive with enough total power: memory at full speed.
    a.mem = p.mem_max;
  } else {
    // In between: balance, splitting the headroom above the all-minimum
    // operating point.
    a.mem = Watts{p.mem_min.value() +
                  gamma * std::max(pb - p.tot_min.value(), 0.0)};
  }
  a.mem = clamp(a.mem, p.mem_min, p.mem_max);
  a.sm = Watts{std::max(pb - a.mem.value(), 0.0)};
  a.mem_clock_index = mem_clock_for_power(model, a.mem);
  return a;
}

}  // namespace pbc::core
