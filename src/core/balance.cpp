#include "core/balance.hpp"

#include <algorithm>

namespace pbc::core {

namespace {
// "Excessively powered": far above any component's maximum demand.
constexpr Watts kOverprovision{100000.0};
}  // namespace

BalancePoint balance_at(const sim::CpuNodeSim& node, Watts proc_cap,
                        Watts mem_cap) {
  BalancePoint bp;
  bp.proc_cap = proc_cap;
  bp.mem_cap = mem_cap;
  bp.compute_capacity = node.steady_state(proc_cap, kOverprovision).perf;
  bp.mem_capacity = node.steady_state(kOverprovision, mem_cap).perf;
  bp.actual = node.steady_state(proc_cap, mem_cap).perf;
  bp.compute_utilization =
      bp.compute_capacity > 0.0
          ? std::min(1.0, bp.actual / bp.compute_capacity)
          : 0.0;
  bp.mem_utilization =
      bp.mem_capacity > 0.0 ? std::min(1.0, bp.actual / bp.mem_capacity) : 0.0;
  return bp;
}

std::vector<BalancePoint> balance_sweep(const sim::CpuNodeSim& node,
                                        Watts budget, Watts mem_lo,
                                        Watts proc_lo, Watts step) {
  std::vector<BalancePoint> points;
  const double hi = budget.value() - proc_lo.value();
  for (double m = mem_lo.value(); m <= hi + 1e-9; m += step.value()) {
    points.push_back(balance_at(node, Watts{budget.value() - m}, Watts{m}));
  }
  return points;
}

}  // namespace pbc::core
