// Hierarchical budget-tree specification for the event-driven cluster
// engine (ClusterPath::kEvent), plus the timed control events that turn a
// run into a scenario: cap changes ("power emergencies") and node
// failures. docs/cluster.md describes the semantics; cluster_event.cpp
// executes them.
//
// The tree mirrors a datacenter: a root (the facility feed), optional
// aggregation levels (rows), and rack leaves that own compute nodes.
// Every vertex carries a power budget; a job's grant must fit below every
// ancestor's free budget simultaneously. Racks list their member node
// ids explicitly so validation can reject duplicate or missing
// membership instead of asserting mid-run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.hpp"
#include "util/units.hpp"

namespace pbc::core {

/// One vertex of the budget tree. Vertices are stored root-first and
/// parents precede children. A vertex with member nodes is a rack
/// (leaf); a vertex without members is an aggregation level and must
/// have at least one child.
struct HierVertexSpec {
  std::int32_t parent = -1;  ///< index into vertices; -1 only for the root
  Watts budget{0.0};         ///< this vertex's power cap
  std::vector<std::uint32_t> cpu_nodes;  ///< member CPU node ids (racks only)
  std::vector<std::uint32_t> gpu_nodes;  ///< member GPU node ids (racks only)
  std::string level;  ///< level label for metrics ("dc", "row", "rack")
  std::string name;   ///< display name ("rack17")
};

struct HierarchySpec {
  std::vector<HierVertexSpec> vertices;
  /// When true, a start attempt squeezed by an intermediate cap may pull
  /// unused budget from sibling subtrees through their common ancestor
  /// (Medhat-style inter-node power redistribution). The transfer is
  /// persistent: donated watts stay with the recipient until donated
  /// back. The root budget never changes — redistribution conserves the
  /// facility feed.
  bool redistribution = true;

  [[nodiscard]] bool empty() const noexcept { return vertices.empty(); }
};

/// Single-vertex tree: one rack holding every node, budget = the global
/// budget. The event engine runs this shape bit-identically to the flat
/// reference path (docs/cluster.md).
[[nodiscard]] HierarchySpec flat_hierarchy(std::size_t cpu_nodes,
                                           std::size_t gpu_nodes,
                                           Watts budget);

/// Uniform tree built bottom-up from group sizes: group_sizes[0] CPU
/// nodes per rack, group_sizes[1] racks per next level, and so on; a
/// root is added on top. GPU nodes spread round-robin over racks. Each
/// vertex's budget is min(parent budget, oversubscription × root ×
/// node share), so sibling budgets intentionally sum past their parent —
/// that slack is what redistribution moves around.
[[nodiscard]] HierarchySpec uniform_hierarchy(
    std::size_t cpu_nodes, std::size_t gpu_nodes, Watts root_budget,
    const std::vector<std::size_t>& group_sizes,
    double oversubscription = 1.15);

/// Structural validation, run by simulate_cluster_checked before the
/// event engine touches the tree. kInvalidArgument: no vertices, a
/// non-root vertex whose parent is not an earlier vertex, an aggregation
/// vertex with no children ("empty level"), a rack with children, a
/// non-finite or non-positive budget, and duplicate / missing / unknown
/// node membership (cpu ids must cover 0..cpu_nodes-1 exactly once; gpu
/// ids likewise). kFailedPrecondition: a child budget exceeding its
/// parent's — structurally valid, but the tree could never honor it.
[[nodiscard]] Status validate_hierarchy(const HierarchySpec& spec,
                                        std::size_t cpu_nodes,
                                        std::size_t gpu_nodes);

/// Re-caps a vertex at `at` sim-seconds. Dropping a budget below the
/// power held under that vertex is the "power emergency": the engine
/// sheds newest-started jobs until the subtree fits, then re-grants from
/// the queue within a bounded number of events (docs/cluster.md).
struct CapChangeEvent {
  Seconds at{0.0};
  std::uint32_t vertex = 0;  ///< index into HierarchySpec::vertices
  Watts budget{0.0};
};

/// Removes slots from a rack at `at` sim-seconds. Jobs running on the
/// lost nodes (newest started first) are preempted and re-queued at
/// their original queue position with their remaining work.
struct NodeFailureEvent {
  Seconds at{0.0};
  std::uint32_t vertex = 0;   ///< must be a rack
  std::uint32_t cpu_lost = 0;
  std::uint32_t gpu_lost = 0;
};

struct ClusterScenario {
  std::vector<CapChangeEvent> cap_changes;
  std::vector<NodeFailureEvent> failures;

  [[nodiscard]] bool empty() const noexcept {
    return cap_changes.empty() && failures.empty();
  }
};

/// Scenario validation against the tree it will run over: event times
/// must be finite and non-negative, cap-change vertices must exist with
/// finite non-negative budgets, failure vertices must be racks, and a
/// failure cannot remove more slots than the rack has.
[[nodiscard]] Status validate_scenario(const ClusterScenario& scenario,
                                       const HierarchySpec& spec);

/// Diurnal arrival times: `n` arrivals over `span` whose instantaneous
/// rate follows 1 + a·sin(2πt/day) with a = (peak−1)/(peak+1) scaled so
/// peak/trough rate ratio equals `peak_to_trough` — generated by
/// inverse-transform sampling of the cumulative rate, then jittered
/// uniformly within each slot. Deterministic in `seed`.
[[nodiscard]] std::vector<Seconds> diurnal_arrivals(std::size_t n,
                                                    Seconds span,
                                                    Seconds day,
                                                    double peak_to_trough,
                                                    std::uint64_t seed);

/// A sudden facility-feed drop at `drop_at` to `drop_fraction` of
/// `root_budget`, restored `restore_after` seconds later (restore_after
/// <= 0 means the drop is permanent).
[[nodiscard]] ClusterScenario make_emergency_scenario(Watts root_budget,
                                                      Seconds drop_at,
                                                      double drop_fraction,
                                                      Seconds restore_after);

/// `failures` rack failures spread uniformly over [0, span): each failed
/// rack loses half its CPU slots (rounded up) and half its GPU slots.
/// Deterministic in `seed`.
[[nodiscard]] ClusterScenario make_failure_scenario(const HierarchySpec& spec,
                                                    std::size_t failures,
                                                    Seconds span,
                                                    std::uint64_t seed);

}  // namespace pbc::core
