#include "core/model_fit.hpp"

#include <algorithm>
#include <cmath>

namespace pbc::core {

FittedPhase fit_single_phase(const sim::CpuNodeSim& node) {
  FittedPhase fit;
  const auto& machine = node.machine();
  const auto& cpu = machine.cpu;
  const auto& dram = machine.dram;
  const GBps full = dram.peak_bw;

  // Probe 1: everything unconstrained at the top P-state.
  const hw::CpuOperatingPoint top{cpu.pstates.size() - 1, 1.0, false};
  const sim::AllocationSample p1 = node.pinned(top, full);

  if (p1.rate_gunits > 0.0) {
    fit.bytes_per_unit = p1.achieved_bw.value() / p1.rate_gunits;
  }
  fit.max_bw_frac =
      std::min(1.0, p1.achieved_bw.value() / dram.peak_bw.value());
  fit.compute_util = p1.compute_util;
  fit.compute_bound = p1.compute_util > 0.97;

  // DRAM power inversion: P = background + e_dyn · scale · achieved_bw.
  if (p1.achieved_bw.value() > 1e-9) {
    const double dynamic =
        p1.mem_power.value() - dram.background_power().value();
    fit.mem_energy_scale = std::max(
        1.0, dynamic / (dram.dyn_w_per_gbps * p1.achieved_bw.value()));
  }

  // Package power inversion at the top P-state:
  // P = uncore + cores·static·V + cores·k·V²·f·act  =>  act.
  {
    const auto& ps = cpu.pstates.back();
    const double cores = cpu.total_cores();
    const double leakage = cores * cpu.static_w_per_core_per_volt * ps.voltage;
    const double dyn_coeff = cores * cpu.dyn_coeff_w_per_ghz_v2 * ps.voltage *
                             ps.voltage * ps.frequency.value();
    if (dyn_coeff > 0.0) {
      fit.activity_eff = std::clamp(
          (p1.proc_power.value() - cpu.uncore_power.value() - leakage) /
              dyn_coeff,
          0.0, 1.0);
    }
  }

  // Effective FLOPs per unit from the achieved compute rate. Exact when
  // compute bound; otherwise a lower bound on the true ratio's reciprocal
  // is all the data supports, so report the observed value regardless.
  const hw::CpuModel cm(cpu);
  const double capacity = cm.compute_capacity(top).value();
  if (p1.rate_gunits > 0.0) {
    fit.effective_flops_per_unit =
        capacity * p1.compute_util / p1.rate_gunits;
  }

  // Probe 2: lowest P-state, still unconstrained — the log-ratio of
  // achieved bandwidths identifies the ceiling's clock exponent when the
  // ceiling binds at both points.
  const hw::CpuOperatingPoint low{0, 1.0, false};
  const sim::AllocationSample p2 = node.pinned(low, full);
  const double f_ratio =
      cpu.f_max().value() / cpu.f_min().value();
  if (p2.achieved_bw.value() > 1e-9 && p1.achieved_bw.value() > 1e-9 &&
      f_ratio > 1.0) {
    fit.freq_scaling = std::max(
        0.0, std::log(p1.achieved_bw.value() / p2.achieved_bw.value()) /
                 std::log(f_ratio));
  }
  return fit;
}

workload::Intensity classify_intensity(const FittedPhase& fit,
                                       const hw::CpuMachine& machine) {
  (void)machine;
  if (fit.compute_bound) return workload::Intensity::kCompute;
  // An unconstrained run that leaves the cores mostly stalled is memory
  // bound — whether by bandwidth (STREAM) or by latency/MLP (SRA, IS).
  if (fit.compute_util < 0.5) return workload::Intensity::kMemory;
  return workload::Intensity::kBalanced;
}

}  // namespace pbc::core
