#include "core/critical.hpp"

namespace pbc::core {

CpuCriticalPowers profile_critical_powers(const sim::CpuNodeSim& node) {
  const auto& cpu = node.machine().cpu;
  const auto& dram = node.machine().dram;
  const GBps peak = dram.peak_bw;

  const hw::CpuOperatingPoint top{cpu.pstates.size() - 1, 1.0, false};
  const hw::CpuOperatingPoint lowest_p{0, 1.0, false};
  const hw::CpuOperatingPoint deepest_t{0, cpu.min_duty(), false};

  CpuCriticalPowers cp;
  const sim::AllocationSample at_top = node.pinned(top, peak);
  cp.cpu_l1 = at_top.proc_power;
  cp.mem_l1 = at_top.mem_power;
  cp.cpu_l2 = node.pinned(lowest_p, peak).proc_power;
  const sim::AllocationSample at_deepest = node.pinned(deepest_t, peak);
  cp.cpu_l3 = at_deepest.proc_power;
  cp.mem_l2 = at_deepest.mem_power;
  cp.cpu_l4 = cpu.floor;   // hardware-controlled, application-independent
  cp.mem_l3 = dram.floor;  // likewise
  return cp;
}

GpuProfileParams profile_gpu_params(const sim::GpuNodeSim& node) {
  const auto& gpu = node.gpu_model();
  const std::size_t top_sm = gpu.sm_step_count() - 1;
  const std::size_t top_mem = gpu.mem_clock_count() - 1;

  // The reference SM clock is the lowest *offset-reachable* one — the "min
  // pairing frequency" of §5.2 — not the deep clocks only the board capper
  // can reach.
  const std::size_t pairing_step =
      gpu.step_for_clock(node.machine().gpu.sm_pairing_min_mhz);

  GpuProfileParams p;
  p.tot_max = node.pinned(top_sm, top_mem).total_power();
  p.tot_ref = node.pinned(pairing_step, top_mem).total_power();
  p.tot_min = node.pinned(pairing_step, 0).total_power();
  p.mem_min = gpu.estimated_mem_power(0);
  p.mem_max = gpu.estimated_mem_power(top_mem);
  // A demand close to the hardware maximum marks a compute-intensive
  // application (paper: P_totmax near 300 W on the Titan XP).
  p.compute_intensive =
      p.tot_max.value() >= 0.95 * node.machine().gpu.board_max_cap.value();
  return p;
}

}  // namespace pbc::core
