// Co-scheduling tuner: place two jobs on one power-bounded node and search
// the (core split × power split) space for the best aggregate outcome.
//
// Implements the paper's §8 "multi-task" future work on top of
// sim::SharedCpuNodeSim. Quality is scored with system throughput (STP):
// the sum of each tenant's performance normalized to what it achieves
// running the node alone under the same total budget — the standard
// co-run metric, which rewards pairings whose bottlenecks complement each
// other (e.g. DGEMM + STREAM).
#pragma once

#include <vector>

#include "sim/cpu_node.hpp"
#include "sim/shared_node.hpp"

namespace pbc::core {

struct CoTuneOptions {
  /// Core-split granularity (cores are moved between tenants in steps).
  int core_step = 2;
  /// Minimum cores per tenant.
  int min_cores = 2;
  /// Memory-cap grid step for the power split.
  Watts mem_step{8.0};
  Watts mem_lo{68.0};
  Watts proc_lo{48.0};
};

struct CoTuneResult {
  int cores_a = 0;
  int cores_b = 0;
  Watts cpu_cap{0.0};
  Watts mem_cap{0.0};
  /// Per-tenant performance at the chosen configuration.
  double perf_a = 0.0;
  double perf_b = 0.0;
  /// Solo performance of each job on the whole node, same total budget.
  double solo_a = 0.0;
  double solo_b = 0.0;
  /// System throughput: perf_a/solo_a + perf_b/solo_b (max 2 in theory).
  double stp = 0.0;
  std::size_t configurations_searched = 0;
};

/// Exhaustive search over core and power splits for two jobs under a total
/// node budget.
[[nodiscard]] CoTuneResult cotune_pair(const hw::CpuMachine& machine,
                                       const workload::Workload& job_a,
                                       const workload::Workload& job_b,
                                       Watts total_budget,
                                       const CoTuneOptions& opt = {});

}  // namespace pbc::core
