// Critical power values — the lightweight application profile that feeds
// COORD (paper §5.1 / §5.2).
//
// On CPUs there are four processor values and three memory values, each the
// power at a transition point of RAPL's mechanism ladder:
//   P_cpu,L1  max package power (highest P-state)
//   P_cpu,L2  package power at the lowest P-state           (end of DVFS)
//   P_cpu,L3  package power at the deepest T-state          (end of throttling)
//   P_cpu,L4  hardware floor (application-independent)
//   P_mem,L1  DRAM power with everything at full speed
//   P_mem,L2  DRAM power when the processor sits at P_cpu,L3
//   P_mem,L3  DRAM hardware floor (application-independent)
// They are measured with seven pinned runs — no allocation sweep needed.
//
// On GPUs only two per-application parameters are required (plus two
// card-wide constants), reflecting the narrower management range:
//   P_totmax  board power with no cap (also classifies compute-intensity)
//   P_totref  board power with memory at nominal clock, SMs at minimum
//   P_memmin / P_memmax  estimated memory power range of the card
#pragma once

#include "sim/cpu_node.hpp"
#include "sim/gpu_node.hpp"

namespace pbc::core {

/// The seven CPU critical power values for one (workload, machine) pair.
struct CpuCriticalPowers {
  Watts cpu_l1{0.0};
  Watts cpu_l2{0.0};
  Watts cpu_l3{0.0};
  Watts cpu_l4{0.0};
  Watts mem_l1{0.0};
  Watts mem_l2{0.0};
  Watts mem_l3{0.0};

  /// The minimum productive budget: below L2c + L2m the node cannot run in
  /// categories I-III (paper heuristic 1).
  [[nodiscard]] Watts productive_threshold() const noexcept {
    return cpu_l2 + mem_l2;
  }
  /// The maximum useful budget: beyond L1c + L1m extra power is surplus.
  [[nodiscard]] Watts max_demand() const noexcept { return cpu_l1 + mem_l1; }
};

/// Measures the critical powers with pinned runs (the "lightweight
/// application profiling" of contribution 4).
[[nodiscard]] CpuCriticalPowers profile_critical_powers(
    const sim::CpuNodeSim& node);

/// The GPU profile parameters for one (workload, card) pair.
struct GpuProfileParams {
  Watts tot_max{0.0};   ///< board power, no cap
  Watts tot_ref{0.0};   ///< board power, memory nominal + SM minimum
  Watts tot_min{0.0};   ///< board power, both domains at minimum
  Watts mem_min{0.0};   ///< card constant: lowest estimated memory power
  Watts mem_max{0.0};   ///< card constant: highest estimated memory power
  bool compute_intensive = false;  ///< tot_max near the hardware maximum
};

/// Measures the GPU profile parameters with two pinned runs per
/// application plus card constants (paper §5.2).
[[nodiscard]] GpuProfileParams profile_gpu_params(const sim::GpuNodeSim& node);

}  // namespace pbc::core
