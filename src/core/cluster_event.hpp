// Entry point for the event-driven hierarchical cluster engine
// (ClusterPath::kEvent). simulate_cluster dispatches here; callers use
// the public simulate_cluster / simulate_cluster_checked API in
// cluster_sim.hpp. Semantics and the flat-mode bit-identity contract
// are documented in docs/cluster.md.
#pragma once

#include <vector>

#include "core/cluster_sim.hpp"

namespace pbc::core::detail {

/// Runs `jobs` through the event engine over config.hierarchy (or a
/// flat single-rack tree over config.nodes / config.gpu_nodes /
/// config.global_budget when null), applying config.scenario's cap
/// changes and node failures. With a flat tree and no scenario the run
/// is bit-identical to ClusterPath::kFast / kReference.
[[nodiscard]] ClusterRun simulate_cluster_events(
    const hw::CpuMachine& node_type, const hw::GpuMachine* gpu_type,
    std::vector<SimJob> jobs, const ClusterSimConfig& config,
    const ClusterNodeProvider* provider);

}  // namespace pbc::core::detail
