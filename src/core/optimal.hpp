// Optimal-allocation analysis per budget (paper §3.4.2, Table 1).
//
// For a budget the optimal split sits in scenario I when power is
// plentiful, and at the intersection of two neighbouring scenarios as the
// budget shrinks (II|III → III|IV → IV|VI → V|VI). The *critical component*
// is the one whose underpowering costs the most performance — the paper's
// example: shifting 24 W away from DRAM at the SRA optimum loses 50%,
// shifting 24 W away from the CPU loses 10%, so DRAM is critical there.
#pragma once

#include <optional>
#include <utility>

#include "core/categorize.hpp"
#include "sim/cpu_node.hpp"
#include "sim/sweep.hpp"

namespace pbc::core {

struct OptimalAllocationRow {
  Watts budget{0.0};
  /// Scenario categories present across the split sweep, in span order.
  std::vector<Category> valid_scenarios;
  /// Categories immediately left/right of the optimum (equal in scenario I).
  std::pair<Category, Category> intersection{Category::kI, Category::kI};
  /// Best split and its performance.
  Watts best_proc{0.0};
  Watts best_mem{0.0};
  double perf_max = 0.0;
  /// Relative perf loss when `shift` W move from DRAM to the processor
  /// (DRAM underpowered) and vice versa.
  double loss_mem_underpowered = 0.0;
  double loss_proc_underpowered = 0.0;
  /// The critical component, when the losses differ meaningfully.
  std::optional<hw::Component> critical;
};

/// Builds one Table-1 row from an exhaustive split sweep at `budget`.
/// `shift` is the probe power moved each way from the optimum (paper: 24 W).
[[nodiscard]] OptimalAllocationRow optimal_allocation_row(
    const sim::CpuNodeSim& node, Watts budget, Watts shift = Watts{24.0},
    const sim::CpuSweepOptions& opt = {});

}  // namespace pbc::core
