#include "core/cluster_hier.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <unordered_set>

#include "util/rng.hpp"

namespace pbc::core {

namespace {

[[nodiscard]] std::string vertex_label(const HierVertexSpec& v,
                                       std::size_t index) {
  if (!v.name.empty()) return "'" + v.name + "'";
  return "#" + std::to_string(index);
}

/// Membership check for one domain: every id in [0, count) exactly once.
[[nodiscard]] Status check_membership(const HierarchySpec& spec,
                                      std::size_t count, bool gpu) {
  const char* const domain = gpu ? "GPU" : "CPU";
  std::vector<std::uint8_t> seen(count, 0);
  std::size_t members = 0;
  for (std::size_t i = 0; i < spec.vertices.size(); ++i) {
    const HierVertexSpec& v = spec.vertices[i];
    for (const std::uint32_t id : gpu ? v.gpu_nodes : v.cpu_nodes) {
      if (id >= count) {
        return invalid_argument(
            std::string(domain) + " node id " + std::to_string(id) +
            " in rack " + vertex_label(v, i) + " is out of range (cluster has " +
            std::to_string(count) + ")");
      }
      if (seen[id]) {
        return invalid_argument("duplicate node membership: " +
                                std::string(domain) + " node " +
                                std::to_string(id) +
                                " appears in more than one rack (second: " +
                                vertex_label(v, i) + ")");
      }
      seen[id] = 1;
      ++members;
    }
  }
  if (members != count) {
    return invalid_argument("hierarchy covers " + std::to_string(members) +
                            " of " + std::to_string(count) + " " + domain +
                            " nodes — every node must belong to exactly one "
                            "rack");
  }
  return Status{};
}

}  // namespace

HierarchySpec flat_hierarchy(std::size_t cpu_nodes, std::size_t gpu_nodes,
                             Watts budget) {
  HierarchySpec spec;
  HierVertexSpec root;
  root.parent = -1;
  root.budget = budget;
  root.level = "dc";
  root.name = "flat";
  root.cpu_nodes.resize(cpu_nodes);
  for (std::size_t i = 0; i < cpu_nodes; ++i) {
    root.cpu_nodes[i] = static_cast<std::uint32_t>(i);
  }
  root.gpu_nodes.resize(gpu_nodes);
  for (std::size_t i = 0; i < gpu_nodes; ++i) {
    root.gpu_nodes[i] = static_cast<std::uint32_t>(i);
  }
  spec.vertices.push_back(std::move(root));
  // A single vertex has no siblings; the flag is inert but kept off so a
  // flat spec compares cleanly against the builder default.
  spec.redistribution = false;
  return spec;
}

HierarchySpec uniform_hierarchy(std::size_t cpu_nodes, std::size_t gpu_nodes,
                                Watts root_budget,
                                const std::vector<std::size_t>& group_sizes,
                                double oversubscription) {
  if (cpu_nodes == 0 || group_sizes.empty()) {
    return flat_hierarchy(cpu_nodes, gpu_nodes, root_budget);
  }
  // Vertex counts per level, bottom-up: level 0 = racks.
  std::vector<std::size_t> level_count;
  std::size_t racks =
      (cpu_nodes + group_sizes[0] - 1) / std::max<std::size_t>(1, group_sizes[0]);
  level_count.push_back(std::max<std::size_t>(1, racks));
  for (std::size_t l = 1; l < group_sizes.size(); ++l) {
    const std::size_t g = std::max<std::size_t>(1, group_sizes[l]);
    const std::size_t above = (level_count.back() + g - 1) / g;
    if (above >= level_count.back()) break;  // level would be a no-op
    level_count.push_back(above);
  }

  const std::size_t n_levels = level_count.size();
  const double total_nodes = static_cast<double>(cpu_nodes + gpu_nodes);

  HierarchySpec spec;
  spec.redistribution = true;
  HierVertexSpec root;
  root.parent = -1;
  root.budget = root_budget;
  root.level = "dc";
  root.name = "dc";
  spec.vertices.push_back(std::move(root));

  // Emit levels top-down so parents precede children; remember the index
  // of the first vertex of the previous (upper) level.
  std::vector<std::size_t> upper_first = {0};
  std::vector<std::size_t> upper_count = {1};
  std::size_t first_rack = 0;
  for (std::size_t l = n_levels; l-- > 0;) {
    const bool is_rack_level = l == 0;
    const std::size_t count = level_count[l];
    const std::size_t first = spec.vertices.size();
    if (is_rack_level) first_rack = first;
    const std::size_t parents = upper_count.back();
    const std::size_t per_parent = (count + parents - 1) / parents;
    for (std::size_t i = 0; i < count; ++i) {
      HierVertexSpec v;
      v.parent = static_cast<std::int32_t>(upper_first.back() +
                                           std::min(i / per_parent,
                                                    parents - 1));
      v.level = is_rack_level
                    ? "rack"
                    : "row" + (n_levels > 2
                                   ? std::to_string(n_levels - 1 - l)
                                   : std::string{});
      v.name = v.level + std::to_string(i);
      spec.vertices.push_back(std::move(v));
    }
    upper_first.push_back(first);
    upper_count.push_back(count);
  }

  // Membership: CPU nodes block-wise, GPU nodes round-robin over racks.
  const std::size_t n_racks = level_count[0];
  for (std::size_t id = 0; id < cpu_nodes; ++id) {
    const std::size_t r = std::min(id / group_sizes[0], n_racks - 1);
    spec.vertices[first_rack + r].cpu_nodes.push_back(
        static_cast<std::uint32_t>(id));
  }
  for (std::size_t id = 0; id < gpu_nodes; ++id) {
    spec.vertices[first_rack + id % n_racks].gpu_nodes.push_back(
        static_cast<std::uint32_t>(id));
  }

  // Budgets: oversubscribed node-share of the root, capped by the parent.
  // Computed leaf-up so an inner vertex weighs the nodes below it.
  std::vector<double> nodes_below(spec.vertices.size(), 0.0);
  for (std::size_t i = spec.vertices.size(); i-- > 1;) {
    const HierVertexSpec& v = spec.vertices[i];
    nodes_below[i] +=
        static_cast<double>(v.cpu_nodes.size() + v.gpu_nodes.size());
    nodes_below[static_cast<std::size_t>(v.parent)] += nodes_below[i];
  }
  for (std::size_t i = 1; i < spec.vertices.size(); ++i) {
    HierVertexSpec& v = spec.vertices[i];
    const double share = nodes_below[i] / total_nodes;
    const double parent_budget =
        spec.vertices[static_cast<std::size_t>(v.parent)].budget.value();
    v.budget = Watts{std::min(parent_budget,
                              oversubscription * root_budget.value() * share)};
  }
  return spec;
}

Status validate_hierarchy(const HierarchySpec& spec, std::size_t cpu_nodes,
                          std::size_t gpu_nodes) {
  if (spec.vertices.empty()) {
    return invalid_argument(
        "hierarchy has no vertices — at least a root rack is required "
        "(empty level)");
  }
  std::vector<std::uint32_t> children(spec.vertices.size(), 0);
  for (std::size_t i = 0; i < spec.vertices.size(); ++i) {
    const HierVertexSpec& v = spec.vertices[i];
    if (i == 0) {
      if (v.parent != -1) {
        return invalid_argument("vertex #0 must be the root (parent == -1)");
      }
    } else {
      if (v.parent < 0 || static_cast<std::size_t>(v.parent) >= i) {
        return invalid_argument(
            "vertex " + vertex_label(v, i) +
            " must name an earlier vertex as parent (got " +
            std::to_string(v.parent) + ")");
      }
      ++children[static_cast<std::size_t>(v.parent)];
    }
    if (!std::isfinite(v.budget.value()) || v.budget.value() <= 0.0) {
      return invalid_argument("vertex " + vertex_label(v, i) +
                              " budget must be positive and finite, got " +
                              std::to_string(v.budget.value()) + " W");
    }
    if (i > 0) {
      const HierVertexSpec& p =
          spec.vertices[static_cast<std::size_t>(v.parent)];
      if (v.budget.value() > p.budget.value()) {
        return failed_precondition(
            "child budget exceeds parent: vertex " + vertex_label(v, i) +
            " (" + std::to_string(v.budget.value()) + " W) > " +
            vertex_label(p, static_cast<std::size_t>(v.parent)) + " (" +
            std::to_string(p.budget.value()) + " W)");
      }
    }
  }
  for (std::size_t i = 0; i < spec.vertices.size(); ++i) {
    const HierVertexSpec& v = spec.vertices[i];
    const bool is_rack = !v.cpu_nodes.empty() || !v.gpu_nodes.empty();
    if (is_rack && children[i] != 0) {
      return invalid_argument("rack " + vertex_label(v, i) +
                              " cannot also have child vertices");
    }
    if (!is_rack && children[i] == 0) {
      return invalid_argument(
          "empty level: vertex " + vertex_label(v, i) +
          " aggregates nothing (no children, no member nodes)");
    }
  }
  if (Status s = check_membership(spec, cpu_nodes, /*gpu=*/false); !s.ok()) {
    return s;
  }
  return check_membership(spec, gpu_nodes, /*gpu=*/true);
}

Status validate_scenario(const ClusterScenario& scenario,
                         const HierarchySpec& spec) {
  for (const CapChangeEvent& e : scenario.cap_changes) {
    if (!std::isfinite(e.at.value()) || e.at.value() < 0.0) {
      return invalid_argument("cap change time must be finite and >= 0");
    }
    if (e.vertex >= spec.vertices.size()) {
      return invalid_argument("cap change targets vertex " +
                              std::to_string(e.vertex) +
                              " but the hierarchy has " +
                              std::to_string(spec.vertices.size()));
    }
    if (!std::isfinite(e.budget.value()) || e.budget.value() < 0.0) {
      return invalid_argument("cap change budget must be finite and >= 0, got " +
                              std::to_string(e.budget.value()) + " W");
    }
  }
  for (const NodeFailureEvent& e : scenario.failures) {
    if (!std::isfinite(e.at.value()) || e.at.value() < 0.0) {
      return invalid_argument("node failure time must be finite and >= 0");
    }
    if (e.vertex >= spec.vertices.size()) {
      return invalid_argument("node failure targets vertex " +
                              std::to_string(e.vertex) +
                              " but the hierarchy has " +
                              std::to_string(spec.vertices.size()));
    }
    const HierVertexSpec& v = spec.vertices[e.vertex];
    if (v.cpu_nodes.empty() && v.gpu_nodes.empty()) {
      return invalid_argument("node failure targets vertex " +
                              vertex_label(v, e.vertex) +
                              ", which is not a rack");
    }
    if (e.cpu_lost > v.cpu_nodes.size() || e.gpu_lost > v.gpu_nodes.size()) {
      return invalid_argument(
          "node failure at rack " + vertex_label(v, e.vertex) + " removes " +
          std::to_string(e.cpu_lost) + " CPU / " + std::to_string(e.gpu_lost) +
          " GPU slots but the rack has " + std::to_string(v.cpu_nodes.size()) +
          " / " + std::to_string(v.gpu_nodes.size()));
    }
  }
  return Status{};
}

std::vector<Seconds> diurnal_arrivals(std::size_t n, Seconds span, Seconds day,
                                      double peak_to_trough,
                                      std::uint64_t seed) {
  std::vector<Seconds> arrivals;
  arrivals.reserve(n);
  if (n == 0 || span.value() <= 0.0) return arrivals;
  const double ratio = std::max(1.0, peak_to_trough);
  const double a = (ratio - 1.0) / (ratio + 1.0);  // modulation depth
  const double period = day.value() > 0.0 ? day.value() : span.value();
  const double omega = 2.0 * std::numbers::pi / period;
  // Cumulative rate Λ(t) = t − (a/ω)(cos ωt − 1); invert per arrival by
  // bisection (Λ is strictly increasing).
  const auto cumulative = [&](double t) {
    return t - a / omega * (std::cos(omega * t) - 1.0);
  };
  const double total = cumulative(span.value());
  Xoshiro256 rng(seed, /*stream=*/13);
  for (std::size_t i = 0; i < n; ++i) {
    // Jittered stratified targets keep the load curve smooth while every
    // arrival stays independent-ish and the set stays sorted.
    const double target = total * (static_cast<double>(i) + rng.uniform()) /
                          static_cast<double>(n);
    double lo = 0.0;
    double hi = span.value();
    for (int it = 0; it < 48; ++it) {
      const double mid = 0.5 * (lo + hi);
      (cumulative(mid) < target ? lo : hi) = mid;
    }
    arrivals.push_back(Seconds{0.5 * (lo + hi)});
  }
  return arrivals;
}

ClusterScenario make_emergency_scenario(Watts root_budget, Seconds drop_at,
                                        double drop_fraction,
                                        Seconds restore_after) {
  ClusterScenario scenario;
  scenario.cap_changes.push_back(
      {drop_at, 0, Watts{root_budget.value() * drop_fraction}});
  if (restore_after.value() > 0.0) {
    scenario.cap_changes.push_back(
        {Seconds{drop_at.value() + restore_after.value()}, 0, root_budget});
  }
  return scenario;
}

ClusterScenario make_failure_scenario(const HierarchySpec& spec,
                                      std::size_t failures, Seconds span,
                                      std::uint64_t seed) {
  ClusterScenario scenario;
  std::vector<std::uint32_t> racks;
  for (std::size_t i = 0; i < spec.vertices.size(); ++i) {
    const HierVertexSpec& v = spec.vertices[i];
    if (!v.cpu_nodes.empty() || !v.gpu_nodes.empty()) {
      racks.push_back(static_cast<std::uint32_t>(i));
    }
  }
  if (racks.empty()) return scenario;
  Xoshiro256 rng(seed, /*stream=*/17);
  for (std::size_t f = 0; f < failures; ++f) {
    const std::uint32_t rack = racks[rng.below(racks.size())];
    const HierVertexSpec& v = spec.vertices[rack];
    NodeFailureEvent e;
    e.at = Seconds{rng.uniform(0.0, span.value())};
    e.vertex = rack;
    e.cpu_lost = static_cast<std::uint32_t>((v.cpu_nodes.size() + 1) / 2);
    e.gpu_lost = static_cast<std::uint32_t>(v.gpu_nodes.size() / 2);
    scenario.failures.push_back(e);
  }
  std::stable_sort(scenario.failures.begin(), scenario.failures.end(),
                   [](const NodeFailureEvent& x, const NodeFailureEvent& y) {
                     return x.at.value() < y.at.value();
                   });
  return scenario;
}

}  // namespace pbc::core
