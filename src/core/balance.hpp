// Capacity/utilization balance analysis (paper §3.4.1, Fig. 5).
//
// The capacity of a component under a power allocation is its highest
// achievable rate when the *other* component is excessively powered; the
// utilization is the ratio of the actual achieved rate to that capacity.
// At the optimal split both utilizations approach 100% — compute and
// memory access are balanced; away from it one component's capacity goes
// unused while the other saturates.
#pragma once

#include <vector>

#include "sim/cpu_node.hpp"

namespace pbc::core {

struct BalancePoint {
  Watts proc_cap{0.0};
  Watts mem_cap{0.0};
  /// Compute capacity: achieved rate with this processor cap and
  /// overprovisioned memory (workload display metric).
  double compute_capacity = 0.0;
  /// Memory-access capacity: achieved rate with this memory cap and an
  /// overprovisioned processor.
  double mem_capacity = 0.0;
  /// Rate actually achieved with both caps applied.
  double actual = 0.0;
  /// actual / capacity, each clipped to [0, 1].
  double compute_utilization = 0.0;
  double mem_utilization = 0.0;
};

/// Balance analysis for one split.
[[nodiscard]] BalancePoint balance_at(const sim::CpuNodeSim& node,
                                      Watts proc_cap, Watts mem_cap);

/// Balance across a split sweep of one budget: mem caps from `mem_lo` to
/// budget − proc_lo in `step` increments.
[[nodiscard]] std::vector<BalancePoint> balance_sweep(
    const sim::CpuNodeSim& node, Watts budget, Watts mem_lo = Watts{48.0},
    Watts proc_lo = Watts{40.0}, Watts step = Watts{8.0});

}  // namespace pbc::core
