// Discrete-event simulation of a power-bounded cluster over time.
//
// ClusterScheduler (scheduler.hpp) answers the static question — how to
// split a global budget across a fixed job set. This module adds the
// temporal dimension the paper's §2 premise implies ("a large-scale system
// reconfigures itself according to its current workload"): jobs arrive
// over time, each carries a fixed amount of work, nodes and watts are
// claimed at start and released at completion, and freed power immediately
// lets queued jobs start. Policies differ in how a node's budget is split
// (COORD vs a naive fixed ratio) and whether unproductive grants are
// refused (admission control).
//
// Three engine paths (docs/cluster.md):
//  * the fast path (default) builds one prepared simulator per distinct
//    (machine, workload) pair — reused across every job-start attempt —
//    pre-profiles distinct workloads in parallel over a ThreadPool, and
//    replaces the full-queue rescan after each event with an incremental
//    admission index bucketed by (domain, power threshold);
//  * the reference path (ClusterPath::kReference) retains the original
//    serial implementation — per-job profiling, a fresh node constructed
//    on every attempt, a linear queue scan — and is the baseline the
//    bench/cluster_throughput speedup gate measures against;
//  * the event path (ClusterPath::kEvent, cluster_event.cpp) runs the
//    same decision procedure over a hierarchical budget tree
//    (cluster_hier.hpp) with per-event cost independent of cluster size,
//    plus inter-rack power redistribution, cap-change emergencies, and
//    node failures. With a flat (single-vertex) hierarchy and no
//    scenario it is bit-identical to the other two.
// All paths share one grant ledger type, one job-start decision
// procedure, and one set of admission counters;
// tests/core/cluster_engine_test.cpp and cluster_event_test.cpp hold
// them to the bit-identical contract over randomized traces.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/coord.hpp"
#include "sim/cpu_node.hpp"
#include "sim/gpu_node.hpp"
#include "util/status.hpp"
#include "util/thread_pool.hpp"

namespace pbc::core {

/// One job in the arrival trace.
struct SimJob {
  std::string name;
  workload::Workload wl;
  Seconds arrival{0.0};
  /// Work to complete, in the workload's Gunits.
  double work_gunits = 1.0;
};

/// How a node's budget is split for a job.
enum class SplitPolicy {
  kCoord,       ///< Algorithm 1 from the job's critical-power profile
  kEvenSplit,   ///< cpu = mem = budget/2, application-oblivious
};

/// Queue discipline.
enum class QueuePolicy {
  kFifo,      ///< strict order; a power-starved head blocks the queue
  kBackfill,  ///< a blocked head lets smaller queued jobs start (EASY-style)
};

/// Which engine implementation runs the trace.
enum class ClusterPath {
  kFast,       ///< prepared-node reuse + parallel profiling + admission index
  kReference,  ///< the retained serial implementation (bench baseline)
  kEvent,      ///< hierarchical event-driven engine (cluster_event.cpp)
};

struct HierarchySpec;   // cluster_hier.hpp
struct ClusterScenario; // cluster_hier.hpp

struct ClusterSimConfig {
  std::size_t nodes = 4;
  /// GPU nodes in the cluster (0 = CPU-only). GPU jobs (workloads with
  /// Domain::kGpu) queue for these; their grant is a board cap chosen by
  /// Algorithm 2.
  std::size_t gpu_nodes = 0;
  Watts global_budget{800.0};
  SplitPolicy policy = SplitPolicy::kCoord;
  QueuePolicy queue_policy = QueuePolicy::kFifo;
  /// Refuse to start a job whose grant is below its productive threshold
  /// (paper: small budgets should not run new jobs). When false, jobs
  /// start with whatever power is free.
  bool admission_control = true;
  /// Power granted per job: its max demand if free power allows, never
  /// more.
  ///
  /// min_grant is consulted ONLY when admission_control is false: it is
  /// the absolute floor a grant must reach for a job to start at all
  /// (without it, a job could start on epsilon watts and never finish).
  /// With admission control on, the job's own productive threshold is the
  /// floor and min_grant is ignored. A min_grant above the global budget
  /// therefore deadlocks every CPU job when admission is off —
  /// simulate_cluster_checked rejects that configuration.
  Watts min_grant{100.0};  ///< absolute floor on a grant without admission
  /// Engine selection; both paths are bit-identical (see header comment).
  ClusterPath path = ClusterPath::kFast;
  /// Pool for the fast path's parallel pre-profiling (null = global_pool()).
  /// The reference path is serial by construction and ignores it.
  ThreadPool* pool = nullptr;
  /// Budget tree for the event path (null = flat_hierarchy over nodes /
  /// gpu_nodes / global_budget, which matches the flat paths
  /// bit-identically). Ignored — and rejected by the checked entry
  /// points — on the flat paths. Must outlive the simulate call.
  const HierarchySpec* hierarchy = nullptr;
  /// Timed cap changes and node failures for the event path (null =
  /// none). Same lifetime and path rules as `hierarchy`.
  const ClusterScenario* scenario = nullptr;
};

/// Per-job outcome.
struct JobOutcome {
  std::string name;
  Seconds arrival{0.0};
  Seconds start{0.0};
  Seconds finish{0.0};
  Watts budget{0.0};
  double perf = 0.0;       ///< steady-state rate during execution
  Joules energy{0.0};      ///< actual consumption over the run

  [[nodiscard]] Seconds wait() const noexcept {
    return Seconds{start.value() - arrival.value()};
  }
  [[nodiscard]] Seconds response() const noexcept {
    return Seconds{finish.value() - arrival.value()};
  }
};

/// Event-path accounting, zero on the flat paths. Mirrors the
/// pbc_cluster_* metrics published to the global obs registry, exposed
/// here per-run so tests can assert scenario semantics directly.
struct ClusterEventStats {
  std::uint64_t events = 0;            ///< events processed (all kinds)
  std::uint64_t subtree_resolves = 0;  ///< dirty-subtree aggregate refreshes
  std::uint64_t donations = 0;         ///< inter-rack budget transfers
  std::uint64_t jobs_preempted = 0;    ///< sheds (emergency + node failure)
  std::uint64_t emergency_sheds = 0;   ///< preemptions caused by cap drops
  std::uint64_t emergency_regrants = 0;  ///< starts in post-shed re-grant passes
  double watts_redistributed = 0.0;    ///< Σ donated watts (absolute)
  /// Every control event left each vertex's held power within its cap
  /// (up to FP tolerance) once its shed/re-grant pass settled.
  bool caps_respected = true;
};

struct ClusterRun {
  std::vector<JobOutcome> jobs;  ///< completed jobs, in finish order
  Seconds makespan{0.0};
  Seconds mean_wait{0.0};
  Seconds mean_response{0.0};
  Joules total_energy{0.0};
  /// Aggregate work completed per joule.
  double work_per_joule = 0.0;
  /// Event-path accounting (all zero on kFast/kReference).
  ClusterEventStats event_stats;
};

/// Supplies prepared simulator nodes to the fast path. The svc query
/// engine routes these through its cross-run sim-node cache so repeated
/// cluster queries for overlapping workload mixes skip construction and
/// table building entirely; when absent, the engine keeps a per-run cache.
/// Callbacks must be thread-safe: the fast path invokes them from the
/// profiling ThreadPool.
struct ClusterNodeProvider {
  std::function<sim::PreparedCpuNode(const hw::CpuMachine&,
                                     const workload::Workload&)>
      cpu;
  std::function<sim::PreparedGpuNode(const hw::GpuMachine&,
                                     const workload::Workload&)>
      gpu;
};

/// Runs the event simulation to completion (all jobs finish eventually:
/// freed power always lets the queue head start). Jobs that can never
/// start (GPU jobs without GPU nodes, grants permanently below the
/// admission floor) are silently dropped once the cluster idles — use
/// simulate_cluster_checked to surface them as errors instead.
[[nodiscard]] ClusterRun simulate_cluster(
    const hw::CpuMachine& node_type, std::vector<SimJob> jobs,
    const ClusterSimConfig& config,
    const ClusterNodeProvider* provider = nullptr);

/// Heterogeneous variant: CPU jobs run on `node_type`, GPU jobs on
/// `gpu_type` cards (config.gpu_nodes of them), all drawing from the same
/// global power budget.
[[nodiscard]] ClusterRun simulate_cluster(
    const hw::CpuMachine& node_type, const hw::GpuMachine& gpu_type,
    std::vector<SimJob> jobs, const ClusterSimConfig& config,
    const ClusterNodeProvider* provider = nullptr);

/// Validating entry points: reject configurations that silently drop or
/// deadlock jobs instead of running them. Errors (ErrorCode
/// kInvalidArgument) cover: nodes == 0; non-positive global_budget;
/// min_grant > global_budget while admission_control is off (no CPU job
/// could ever start); GPU jobs submitted to a cluster with gpu_nodes == 0
/// or no GPU machine. On success the run is identical to simulate_cluster.
[[nodiscard]] Result<ClusterRun> simulate_cluster_checked(
    const hw::CpuMachine& node_type, std::vector<SimJob> jobs,
    const ClusterSimConfig& config,
    const ClusterNodeProvider* provider = nullptr);

[[nodiscard]] Result<ClusterRun> simulate_cluster_checked(
    const hw::CpuMachine& node_type, const hw::GpuMachine& gpu_type,
    std::vector<SimJob> jobs, const ClusterSimConfig& config,
    const ClusterNodeProvider* provider = nullptr);

}  // namespace pbc::core
