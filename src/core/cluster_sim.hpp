// Discrete-event simulation of a power-bounded cluster over time.
//
// ClusterScheduler (scheduler.hpp) answers the static question — how to
// split a global budget across a fixed job set. This module adds the
// temporal dimension the paper's §2 premise implies ("a large-scale system
// reconfigures itself according to its current workload"): jobs arrive
// over time, each carries a fixed amount of work, nodes and watts are
// claimed at start and released at completion, and freed power immediately
// lets queued jobs start. Policies differ in how a node's budget is split
// (COORD vs a naive fixed ratio) and whether unproductive grants are
// refused (admission control).
#pragma once

#include <string>
#include <vector>

#include "core/coord.hpp"
#include "sim/cpu_node.hpp"

namespace pbc::core {

/// One job in the arrival trace.
struct SimJob {
  std::string name;
  workload::Workload wl;
  Seconds arrival{0.0};
  /// Work to complete, in the workload's Gunits.
  double work_gunits = 1.0;
};

/// How a node's budget is split for a job.
enum class SplitPolicy {
  kCoord,       ///< Algorithm 1 from the job's critical-power profile
  kEvenSplit,   ///< cpu = mem = budget/2, application-oblivious
};

/// Queue discipline.
enum class QueuePolicy {
  kFifo,      ///< strict order; a power-starved head blocks the queue
  kBackfill,  ///< a blocked head lets smaller queued jobs start (EASY-style)
};

struct ClusterSimConfig {
  std::size_t nodes = 4;
  /// GPU nodes in the cluster (0 = CPU-only). GPU jobs (workloads with
  /// Domain::kGpu) queue for these; their grant is a board cap chosen by
  /// Algorithm 2.
  std::size_t gpu_nodes = 0;
  Watts global_budget{800.0};
  SplitPolicy policy = SplitPolicy::kCoord;
  QueuePolicy queue_policy = QueuePolicy::kFifo;
  /// Refuse to start a job whose grant is below its productive threshold
  /// (paper: small budgets should not run new jobs). When false, jobs
  /// start with whatever power is free.
  bool admission_control = true;
  /// Power granted per job: its max demand if free power allows, never
  /// more.
  Watts min_grant{100.0};  ///< absolute floor on a grant without admission
};

/// Per-job outcome.
struct JobOutcome {
  std::string name;
  Seconds arrival{0.0};
  Seconds start{0.0};
  Seconds finish{0.0};
  Watts budget{0.0};
  double perf = 0.0;       ///< steady-state rate during execution
  Joules energy{0.0};      ///< actual consumption over the run

  [[nodiscard]] Seconds wait() const noexcept {
    return Seconds{start.value() - arrival.value()};
  }
  [[nodiscard]] Seconds response() const noexcept {
    return Seconds{finish.value() - arrival.value()};
  }
};

struct ClusterRun {
  std::vector<JobOutcome> jobs;  ///< completed jobs, in finish order
  Seconds makespan{0.0};
  Seconds mean_wait{0.0};
  Seconds mean_response{0.0};
  Joules total_energy{0.0};
  /// Aggregate work completed per joule.
  double work_per_joule = 0.0;
};

/// Runs the event simulation to completion (all jobs finish eventually:
/// freed power always lets the queue head start).
[[nodiscard]] ClusterRun simulate_cluster(const hw::CpuMachine& node_type,
                                          std::vector<SimJob> jobs,
                                          const ClusterSimConfig& config);

/// Heterogeneous variant: CPU jobs run on `node_type`, GPU jobs on
/// `gpu_type` cards (config.gpu_nodes of them), all drawing from the same
/// global power budget.
[[nodiscard]] ClusterRun simulate_cluster(const hw::CpuMachine& node_type,
                                          const hw::GpuMachine& gpu_type,
                                          std::vector<SimJob> jobs,
                                          const ClusterSimConfig& config);

}  // namespace pbc::core
