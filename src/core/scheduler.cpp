#include "core/scheduler.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "workload/serialize.hpp"

namespace pbc::core {

NodePowerManager::NodePowerManager(hw::CpuMachine machine,
                                   workload::Workload wl)
    : node_(sim::make_prepared_cpu_node(std::move(machine), std::move(wl))),
      profile_(profile_critical_powers(*node_)) {}

NodePowerManager::NodePowerManager(sim::PreparedCpuNode node)
    : node_(std::move(node)), profile_(profile_critical_powers(*node_)) {}

NodePowerManager::Plan NodePowerManager::plan(Watts budget) const {
  Plan plan;
  plan.allocation = coord_cpu(profile_, budget);
  plan.accepted = plan.allocation.status != CoordStatus::kBudgetTooSmall;
  if (plan.accepted) {
    plan.predicted =
        node_->steady_state(plan.allocation.cpu, plan.allocation.mem);
  }
  return plan;
}

ClusterScheduler::ClusterScheduler(hw::CpuMachine node_type,
                                   std::size_t node_count)
    : node_type_(std::move(node_type)), node_count_(node_count) {}

ScheduleResult ClusterScheduler::schedule(std::span<const JobRequest> jobs,
                                          Watts global_budget,
                                          ThreadPool* pool) const {
  ScheduleResult result;

  // Candidate jobs: one node each, first come first served.
  std::vector<const JobRequest*> cand_jobs;
  cand_jobs.reserve(std::min(jobs.size(), node_count_));
  for (const auto& job : jobs) {
    if (cand_jobs.size() == node_count_) {
      result.rejected.push_back(job.name);  // no node left
      continue;
    }
    cand_jobs.push_back(&job);
  }

  // One prepared node per distinct workload (exact text form ⟺ exact
  // workload), built in parallel when a pool is supplied. Candidates with
  // equal workloads share the node — and hence one operating-point table.
  std::unordered_map<std::string, std::size_t> seen;
  std::vector<std::size_t> representative;  // distinct slot → candidate
  std::vector<std::size_t> slot_of(cand_jobs.size());
  for (std::size_t i = 0; i < cand_jobs.size(); ++i) {
    auto [it, inserted] = seen.try_emplace(
        workload::to_text(cand_jobs[i]->wl), representative.size());
    if (inserted) representative.push_back(i);
    slot_of[i] = it->second;
  }
  std::vector<sim::PreparedCpuNode> nodes(representative.size());
  const auto build = [&](std::size_t s) {
    nodes[s] =
        sim::make_prepared_cpu_node(node_type_, cand_jobs[representative[s]]->wl);
  };
  if (pool != nullptr && representative.size() >= 2 &&
      !pool->is_worker_thread()) {
    pool->parallel_for_index(representative.size(), build);
  } else {
    for (std::size_t s = 0; s < representative.size(); ++s) build(s);
  }

  struct Candidate {
    const JobRequest* job;
    NodePowerManager manager;
    Watts budget{0.0};
    bool placed = false;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(cand_jobs.size());
  for (std::size_t i = 0; i < cand_jobs.size(); ++i) {
    candidates.push_back(
        Candidate{cand_jobs[i], NodePowerManager(nodes[slot_of[i]]),
                  Watts{0.0}});
  }

  // Pass 1 — fair share clipped to [threshold, demand]; jobs whose share
  // cannot reach their productive threshold are denied (their power stays
  // in the pool for the others).
  double remaining = global_budget.value();
  std::size_t pending = candidates.size();
  for (auto& c : candidates) {
    const double fair = pending > 0 ? remaining / static_cast<double>(pending)
                                    : 0.0;
    const double threshold = c.manager.min_productive().value();
    const double demand = c.manager.max_demand().value();
    --pending;
    if (fair < threshold) {
      result.rejected.push_back(c.job->name);
      continue;
    }
    c.budget = Watts{std::min(fair, demand)};
    c.placed = true;
    remaining -= c.budget.value();
  }

  // Pass 2 — water-fill the leftover into placed jobs that can still use
  // it (up to max demand).
  for (auto& c : candidates) {
    if (!c.placed || remaining <= 0.0) continue;
    const double room = c.manager.max_demand().value() - c.budget.value();
    const double extra = std::min(room, remaining);
    if (extra > 0.0) {
      c.budget += Watts{extra};
      remaining -= extra;
    }
  }

  std::size_t node_index = 0;
  for (auto& c : candidates) {
    if (!c.placed) continue;
    const NodePowerManager::Plan plan = c.manager.plan(c.budget);
    Placement p;
    p.job = c.job->name;
    p.node_index = node_index++;
    p.budget = c.budget;
    p.allocation = plan.allocation;
    p.predicted_perf = plan.predicted.perf;
    result.placements.push_back(std::move(p));
    // COORD may itself report surplus inside the granted budget; that also
    // returns to the pool.
    remaining += plan.allocation.surplus.value();
    result.allocated += Watts{c.budget.value() -
                              plan.allocation.surplus.value()};
  }
  result.reclaimed = Watts{remaining};
  return result;
}

}  // namespace pbc::core
