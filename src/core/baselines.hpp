// Baseline allocation strategies COORD is evaluated against (paper §6.3).
//
//  * oracle_best        — the best split found by an exhaustive sweep (the
//                         paper's "best identified from experiments").
//  * memory_first       — the strategy of the ICPP'16 paper [19]:
//                         conservatively warrant memory its full demand at
//                         every budget and give the CPU the rest.
//  * fixed_ratio_split  — a static, application-oblivious split (the
//                         "poorly coordinated" reference).
//  * The default Nvidia GPU policy (memory always at nominal clock) is
//    exposed by sim::GpuNodeSim::default_policy.
#pragma once

#include "core/coord.hpp"
#include "sim/sweep.hpp"

namespace pbc::core {

/// Best-performing sample of an exhaustive split sweep. The sweep must be
/// non-empty.
[[nodiscard]] const sim::AllocationSample& oracle_best(
    const sim::BudgetSweep& sweep) noexcept;

/// Memory-first strategy [19]: allocate memory its maximum demand (clipped
/// so the CPU keeps at least its floor) and the remainder to the CPU.
[[nodiscard]] CpuAllocation memory_first(const CpuCriticalPowers& profile,
                                         Watts budget) noexcept;

/// Static split: cpu_fraction of the budget to the processor, the rest to
/// memory. Application-oblivious.
[[nodiscard]] CpuAllocation fixed_ratio_split(Watts budget,
                                              double cpu_fraction) noexcept;

}  // namespace pbc::core
