#include "core/cluster_sim.hpp"

#include <algorithm>
#include <deque>
#include <queue>

#include "core/baselines.hpp"
#include "sim/gpu_node.hpp"

namespace pbc::core {

namespace {

struct Running {
  std::size_t job_index;
  Seconds finish{0.0};
  Watts budget{0.0};
  bool gpu = false;
  JobOutcome outcome;
};

struct FinishOrder {
  bool operator()(const Running& a, const Running& b) const {
    return a.finish.value() > b.finish.value();
  }
};

ClusterRun run_simulation(const hw::CpuMachine& node_type,
                          const hw::GpuMachine* gpu_type,
                          std::vector<SimJob> jobs,
                          const ClusterSimConfig& config) {
  std::stable_sort(jobs.begin(), jobs.end(),
                   [](const SimJob& a, const SimJob& b) {
                     return a.arrival.value() < b.arrival.value();
                   });

  // Pre-profile each job once (lightweight, as COORD intends).
  std::vector<CpuCriticalPowers> cpu_profiles(jobs.size());
  std::vector<GpuProfileParams> gpu_profiles(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].wl.domain == workload::Domain::kGpu) {
      if (gpu_type == nullptr) continue;  // such jobs will never start
      gpu_profiles[i] =
          profile_gpu_params(sim::GpuNodeSim(*gpu_type, jobs[i].wl));
    } else {
      cpu_profiles[i] =
          profile_critical_powers(sim::CpuNodeSim(node_type, jobs[i].wl));
    }
  }

  ClusterRun run;
  std::priority_queue<Running, std::vector<Running>, FinishOrder> running;
  std::deque<std::size_t> queue;  // FIFO job indices
  std::size_t next_arrival = 0;
  double free_power = config.global_budget.value();
  std::size_t free_cpu_nodes = config.nodes;
  std::size_t free_gpu_nodes = gpu_type ? config.gpu_nodes : 0;
  double now = 0.0;

  auto start_running = [&](std::size_t j, Watts held, double rate,
                           double perf, Watts actual_power, bool gpu) {
    Running r;
    r.job_index = j;
    r.gpu = gpu;
    r.budget = held;
    const double duration = jobs[j].work_gunits / rate;
    r.finish = Seconds{now + duration};
    r.outcome.name = jobs[j].name;
    r.outcome.arrival = jobs[j].arrival;
    r.outcome.start = Seconds{now};
    r.outcome.finish = r.finish;
    r.outcome.budget = held;
    r.outcome.perf = perf;
    r.outcome.energy = actual_power * Seconds{duration};
    free_power -= held.value();
    if (gpu) {
      --free_gpu_nodes;
    } else {
      --free_cpu_nodes;
    }
    running.push(std::move(r));
  };

  // Attempts to start job index `j`; returns true if it started.
  auto try_start_job = [&](std::size_t j) {
    if (jobs[j].wl.domain == workload::Domain::kGpu) {
      if (gpu_type == nullptr || free_gpu_nodes == 0) return false;
      const auto& profile = gpu_profiles[j];
      const double demand = std::min(profile.tot_max.value(),
                                     gpu_type->gpu.board_max_cap.value());
      const double threshold = gpu_type->gpu.board_min_cap.value();
      const double grant = std::min(demand, free_power);
      if (grant < threshold) return false;  // driver rejects lower caps

      const sim::GpuNodeSim node(*gpu_type, jobs[j].wl);
      const auto alloc =
          coord_gpu(profile, node.gpu_model(), Watts{grant});
      const auto s = node.steady_state(alloc.mem_clock_index, Watts{grant});
      if (s.rate_gunits <= 0.0) return false;
      start_running(j, Watts{grant - alloc.surplus.value()}, s.rate_gunits,
                    s.perf, s.total_power(), /*gpu=*/true);
      return true;
    }

    if (free_cpu_nodes == 0) return false;
    const auto& profile = cpu_profiles[j];
    const double demand = profile.max_demand().value();
    const double threshold = profile.productive_threshold().value();
    const double grant = std::min(demand, free_power);
    if (config.admission_control) {
      if (grant < threshold) return false;
    } else {
      if (grant < config.min_grant.value()) return false;
    }

    CpuAllocation alloc;
    if (config.policy == SplitPolicy::kCoord) {
      alloc = coord_cpu(profile, Watts{grant});
    } else {
      alloc = fixed_ratio_split(Watts{grant}, 0.5);
    }
    const sim::CpuNodeSim node(node_type, jobs[j].wl);
    const sim::AllocationSample s = node.steady_state(alloc.cpu, alloc.mem);
    if (s.rate_gunits <= 0.0) return false;
    // Only the power COORD actually allocated is held; surplus stays in
    // the pool.
    start_running(j, Watts{grant - alloc.surplus.value()}, s.rate_gunits,
                  s.perf, s.total_power(), /*gpu=*/false);
    return true;
  };

  auto try_start_queue_head = [&]() {
    // FIFO pass: start jobs strictly in order until the head blocks.
    while (!queue.empty() && try_start_job(queue.front())) {
      queue.pop_front();
    }
    if (config.queue_policy != QueuePolicy::kBackfill) return;
    // Backfill pass: the head is starved; let later jobs whose demands fit
    // the leftover run ahead of it (EASY-style, without a reservation —
    // jobs are short relative to power churn here).
    for (auto it = queue.begin(); it != queue.end();) {
      if (it != queue.begin() && try_start_job(*it)) {
        it = queue.erase(it);
      } else {
        ++it;
      }
    }
  };

  while (next_arrival < jobs.size() || !running.empty() || !queue.empty()) {
    // Next event: arrival or completion.
    const double t_arrive = next_arrival < jobs.size()
                                ? jobs[next_arrival].arrival.value()
                                : 1e300;
    const double t_finish =
        !running.empty() ? running.top().finish.value() : 1e300;

    if (t_arrive <= t_finish && next_arrival < jobs.size()) {
      now = t_arrive;
      queue.push_back(next_arrival);
      ++next_arrival;
    } else if (!running.empty()) {
      now = t_finish;
      Running done = running.top();
      running.pop();
      free_power += done.budget.value();
      if (done.gpu) {
        ++free_gpu_nodes;
      } else {
        ++free_cpu_nodes;
      }
      run.jobs.push_back(done.outcome);
      run.total_energy += done.outcome.energy;
    } else {
      // Queue non-empty but nothing running and no arrivals: the head can
      // never start (e.g. a GPU job with no GPU nodes). Drop it so the
      // rest of the queue can drain.
      queue.pop_front();
    }
    try_start_queue_head();
  }

  if (!run.jobs.empty()) {
    double wait = 0.0;
    double response = 0.0;
    double work = 0.0;
    double makespan = 0.0;
    for (const auto& o : run.jobs) {
      wait += o.wait().value();
      response += o.response().value();
      makespan = std::max(makespan, o.finish.value());
    }
    for (const auto& job : jobs) work += job.work_gunits;
    const auto n = static_cast<double>(run.jobs.size());
    run.mean_wait = Seconds{wait / n};
    run.mean_response = Seconds{response / n};
    run.makespan = Seconds{makespan};
    run.work_per_joule = run.total_energy.value() > 0.0
                             ? work / run.total_energy.value()
                             : 0.0;
  }
  return run;
}

}  // namespace

ClusterRun simulate_cluster(const hw::CpuMachine& node_type,
                            std::vector<SimJob> jobs,
                            const ClusterSimConfig& config) {
  return run_simulation(node_type, nullptr, std::move(jobs), config);
}

ClusterRun simulate_cluster(const hw::CpuMachine& node_type,
                            const hw::GpuMachine& gpu_type,
                            std::vector<SimJob> jobs,
                            const ClusterSimConfig& config) {
  return run_simulation(node_type, &gpu_type, std::move(jobs), config);
}

}  // namespace pbc::core
