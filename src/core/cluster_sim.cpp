#include "core/cluster_sim.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <map>
#include <optional>
#include <queue>
#include <set>
#include <utility>

#include "core/baselines.hpp"
#include "core/cluster_event.hpp"
#include "core/cluster_hier.hpp"
#include "core/cluster_profile.hpp"
#include "core/critical.hpp"
#include "core/grant_ledger.hpp"
#include "obs/metrics.hpp"
#include "workload/serialize.hpp"

namespace pbc::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::size_t kNoSlot = detail::kClusterNoSlot;

/// Scheduler admission counters, shared by both engine paths so the
/// bit-identity contract between them also covers the metrics. Resolved
/// once per process; observation is a relaxed add.
struct SchedulerCounters {
  obs::Counter& attempts;
  obs::Counter& rejects;
  obs::Counter& starts;
};

[[nodiscard]] SchedulerCounters& scheduler_counters() {
  static SchedulerCounters c{
      obs::global_registry().counter(
          "pbc_cluster_start_attempts_total",
          "Job-start attempts considered by the scheduler"),
      obs::global_registry().counter(
          "pbc_cluster_admission_rejects_total",
          "Start attempts rejected by power admission (grant below "
          "threshold or min_grant)"),
      obs::global_registry().counter("pbc_cluster_jobs_started_total",
                                     "Jobs granted power and started"),
  };
  return c;
}

struct Running {
  std::size_t job_index;
  Seconds finish{0.0};
  Watts budget{0.0};
  bool gpu = false;
  std::size_t ledger_slot = 0;
  JobOutcome outcome;
};

struct FinishOrder {
  bool operator()(const Running& a, const Running& b) const {
    return a.finish.value() > b.finish.value();
  }
};

// GrantLedger lives in core/grant_ledger.hpp since PR 8 (shared with the
// event-driven engine, and with an incremental O(active grants) release
// that is bit-identical to the original full rescan).

/// One discrete-event run. Both paths share the event loop, the grant
/// ledger, and try_start_job's decision sequence; they differ only in how
/// profiles and simulator nodes are obtained (prepared + deduped + parallel
/// vs per-job fresh + serial) and how the queue is scanned after an event
/// (threshold-indexed vs linear). The fast/reference bit-identical contract
/// rests on two facts proven by tests/core/cluster_engine_test.cpp:
/// profiles depend only on (machine, workload), and a job's pre-solve
/// start checks pass exactly when free_power >= its precomputed threshold
/// and a node of its domain is free.
class ClusterEngine {
 public:
  ClusterEngine(const hw::CpuMachine& node_type, const hw::GpuMachine* gpu_type,
                std::vector<SimJob> jobs, const ClusterSimConfig& config,
                const ClusterNodeProvider* provider)
      : node_type_(node_type),
        gpu_type_(gpu_type),
        jobs_(std::move(jobs)),
        config_(config),
        provider_(provider),
        fast_(config.path == ClusterPath::kFast),
        ledger_(config.global_budget.value()) {}

  ClusterRun run() {
    std::stable_sort(jobs_.begin(), jobs_.end(),
                     [](const SimJob& a, const SimJob& b) {
                       return a.arrival.value() < b.arrival.value();
                     });
    if (fast_) {
      profile_fast();
    } else {
      profile_reference();
    }
    event_loop();
    finalize_stats();
    return std::move(run_);
  }

 private:
  using JobMeta = detail::ClusterJobMeta;
  using DistinctSlot = detail::ClusterDistinctSlot;

  // --- profiling -----------------------------------------------------

  /// The original per-job serial pass: a fresh simulator per job, even for
  /// repeated workloads (lightweight, as COORD intends).
  void profile_reference() {
    ref_cpu_profiles_.resize(jobs_.size());
    ref_gpu_profiles_.resize(jobs_.size());
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
      if (jobs_[i].wl.domain == workload::Domain::kGpu) {
        if (gpu_type_ == nullptr) continue;  // such jobs will never start
        ref_gpu_profiles_[i] =
            profile_gpu_params(sim::GpuNodeSim(*gpu_type_, jobs_[i].wl));
      } else {
        ref_cpu_profiles_[i] =
            profile_critical_powers(sim::CpuNodeSim(node_type_, jobs_[i].wl));
      }
    }
    meta_.resize(jobs_.size());
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
      meta_[i].gpu = jobs_[i].wl.domain == workload::Domain::kGpu;
    }
  }

  /// Deduplicates, prepares, and profiles via the shared helper (also
  /// used verbatim by the event engine — half of the flat-mode
  /// bit-identity contract). See cluster_profile.hpp.
  void profile_fast() {
    detail::ClusterProfiles p = detail::build_cluster_profiles(
        node_type_, gpu_type_, jobs_, config_, provider_);
    meta_ = std::move(p.meta);
    slots_ = std::move(p.slots);
  }

  [[nodiscard]] const CpuCriticalPowers& cpu_profile(std::size_t j) const {
    return fast_ ? slots_[meta_[j].slot].cpu_profile : ref_cpu_profiles_[j];
  }
  [[nodiscard]] const GpuProfileParams& gpu_profile(std::size_t j) const {
    return fast_ ? slots_[meta_[j].slot].gpu_profile : ref_gpu_profiles_[j];
  }

  // --- job starts ----------------------------------------------------

  void start_running(std::size_t j, Watts held, double rate, double perf,
                     Watts actual_power, bool gpu) {
    Running r;
    r.job_index = j;
    r.gpu = gpu;
    r.budget = held;
    const double duration = jobs_[j].work_gunits / rate;
    r.finish = Seconds{now_ + duration};
    r.outcome.name = jobs_[j].name;
    r.outcome.arrival = jobs_[j].arrival;
    r.outcome.start = Seconds{now_};
    r.outcome.finish = r.finish;
    r.outcome.budget = held;
    r.outcome.perf = perf;
    r.outcome.energy = actual_power * Seconds{duration};
    r.ledger_slot = ledger_.hold(held.value());
    if (gpu) {
      --free_gpu_nodes_;
    } else {
      --free_cpu_nodes_;
    }
    running_.push(std::move(r));
  }

  /// Attempts to start job index `j`; returns true if it started. Checks,
  /// grant arithmetic, and solves are path-independent; only where the
  /// simulator node comes from differs (shared prepared node vs a fresh
  /// construction whose operating-point table is rebuilt on the spot —
  /// the dominant cost the fast path eliminates).
  bool try_start_job(std::size_t j) {
    SchedulerCounters& counters = scheduler_counters();
    counters.attempts.add(1);
    if (jobs_[j].wl.domain == workload::Domain::kGpu) {
      if (gpu_type_ == nullptr || free_gpu_nodes_ == 0) return false;
      const GpuProfileParams& profile = gpu_profile(j);
      const double demand = std::min(profile.tot_max.value(),
                                     gpu_type_->gpu.board_max_cap.value());
      const double threshold = gpu_type_->gpu.board_min_cap.value();
      const double grant = std::min(demand, ledger_.free_power());
      if (grant < threshold) {  // driver rejects lower caps
        counters.rejects.add(1);
        return false;
      }

      GpuAllocation alloc;
      sim::AllocationSample s;
      if (fast_) {
        const sim::GpuNodeSim& node = *slots_[meta_[j].slot].gpu_node;
        alloc = coord_gpu(profile, node.gpu_model(), Watts{grant});
        s = node.steady_state(alloc.mem_clock_index, Watts{grant});
      } else {
        const sim::GpuNodeSim node(*gpu_type_, jobs_[j].wl);
        alloc = coord_gpu(profile, node.gpu_model(), Watts{grant});
        s = node.steady_state(alloc.mem_clock_index, Watts{grant});
      }
      if (s.rate_gunits <= 0.0) return false;
      start_running(j, Watts{grant - alloc.surplus.value()}, s.rate_gunits,
                    s.perf, s.total_power(), /*gpu=*/true);
      counters.starts.add(1);
      return true;
    }

    if (free_cpu_nodes_ == 0) return false;
    const CpuCriticalPowers& profile = cpu_profile(j);
    const double demand = profile.max_demand().value();
    const double threshold = profile.productive_threshold().value();
    const double grant = std::min(demand, ledger_.free_power());
    if (config_.admission_control) {
      if (grant < threshold) {
        counters.rejects.add(1);
        return false;
      }
    } else if (grant < config_.min_grant.value()) {
      counters.rejects.add(1);
      return false;
    }

    CpuAllocation alloc;
    if (config_.policy == SplitPolicy::kCoord) {
      alloc = coord_cpu(profile, Watts{grant});
    } else {
      alloc = fixed_ratio_split(Watts{grant}, 0.5);
    }
    sim::AllocationSample s;
    if (fast_) {
      s = slots_[meta_[j].slot].cpu_node->steady_state(alloc.cpu, alloc.mem);
    } else {
      const sim::CpuNodeSim node(node_type_, jobs_[j].wl);
      s = node.steady_state(alloc.cpu, alloc.mem);
    }
    if (s.rate_gunits <= 0.0) return false;
    // Only the power COORD actually allocated is held; surplus stays in
    // the pool.
    start_running(j, Watts{grant - alloc.surplus.value()}, s.rate_gunits,
                  s.perf, s.total_power(), /*gpu=*/false);
    counters.starts.add(1);
    return true;
  }

  // --- queue ---------------------------------------------------------
  //
  // The reference path keeps the original deque and rescans it linearly.
  // The fast path mirrors the queue into an ordered index set (job indices
  // are enqueued in increasing order, so set order == FIFO order) plus
  // per-domain buckets keyed by start threshold; the backfill pass reads
  // only the buckets whose thresholds fit the current free power instead
  // of probing every queued job.

  [[nodiscard]] bool queue_empty() const {
    return fast_ ? fast_queue_.empty() : ref_queue_.empty();
  }

  void queue_push(std::size_t j) {
    if (!fast_) {
      ref_queue_.push_back(j);
      return;
    }
    fast_queue_.insert(j);
    const JobMeta& m = meta_[j];
    if (std::isfinite(m.threshold)) {
      buckets_[m.gpu ? 1 : 0][m.threshold].insert(j);
    }
  }

  void bucket_remove(std::size_t j) {
    const JobMeta& m = meta_[j];
    if (!std::isfinite(m.threshold)) return;
    auto& domain = buckets_[m.gpu ? 1 : 0];
    const auto it = domain.find(m.threshold);
    it->second.erase(j);
    if (it->second.empty()) domain.erase(it);
  }

  /// Fast-path removal (start or drop) from the set and its bucket.
  void queue_erase(std::size_t j) {
    fast_queue_.erase(j);
    bucket_remove(j);
  }

  /// Lowest-indexed queued job whose pre-solve start checks pass right
  /// now, or kNoSlot. O(#buckets): each bucket is ordered, so its minimum
  /// is its first element, and there are only as many buckets as distinct
  /// thresholds (≈ distinct workloads).
  [[nodiscard]] std::size_t min_eligible() const {
    const double free = ledger_.free_power();
    std::size_t best = kNoSlot;
    for (int d = 0; d < 2; ++d) {
      if ((d == 1 ? free_gpu_nodes_ : free_cpu_nodes_) == 0) continue;
      for (const auto& [threshold, members] : buckets_[d]) {
        if (threshold > free) break;
        best = std::min(best, *members.begin());
      }
    }
    return best;
  }

  void drop_queue_head() {
    if (fast_) {
      queue_erase(*fast_queue_.begin());
    } else {
      ref_queue_.pop_front();
    }
  }

  void try_start_queue_head() {
    if (!fast_) {
      // FIFO pass: start jobs strictly in order until the head blocks.
      while (!ref_queue_.empty() && try_start_job(ref_queue_.front())) {
        ref_queue_.pop_front();
      }
      if (config_.queue_policy != QueuePolicy::kBackfill) return;
      // Backfill pass: the head is starved; let later jobs whose demands
      // fit the leftover run ahead of it (EASY-style, without a
      // reservation — jobs are short relative to power churn here).
      for (auto it = ref_queue_.begin(); it != ref_queue_.end();) {
        if (it != ref_queue_.begin() && try_start_job(*it)) {
          it = ref_queue_.erase(it);
        } else {
          ++it;
        }
      }
      return;
    }

    while (!fast_queue_.empty()) {
      const std::size_t head = *fast_queue_.begin();
      if (!try_start_job(head)) break;
      queue_erase(head);
    }
    if (config_.queue_policy != QueuePolicy::kBackfill) return;
    if (fast_queue_.size() < 2) return;
    const std::size_t head = *fast_queue_.begin();

    // Backfill: repeatedly start the lowest-indexed eligible job. This
    // reproduces the linear rescan's start sequence exactly — eligibility
    // only shrinks as grants land, so a job the rescan would have passed
    // over (ineligible at its turn) can never become eligible later in
    // the pass, and the minimum over eligible jobs is always the next job
    // the rescan would start. The blocked head and jobs whose solve
    // refuses to run (rate <= 0, which the rescan also skips without
    // removing) are parked outside the buckets until the pass ends.
    std::vector<std::size_t> parked;
    for (;;) {
      const std::size_t j = min_eligible();
      if (j == kNoSlot) break;
      if (j == head) {  // the blocked head keeps its place
        bucket_remove(j);
        parked.push_back(j);
        continue;
      }
      if (try_start_job(j)) {
        queue_erase(j);
      } else {
        bucket_remove(j);
        parked.push_back(j);
      }
    }
    for (const std::size_t j : parked) {
      const JobMeta& m = meta_[j];
      buckets_[m.gpu ? 1 : 0][m.threshold].insert(j);
    }
  }

  // --- event loop ----------------------------------------------------

  void event_loop() {
    free_cpu_nodes_ = config_.nodes;
    free_gpu_nodes_ = gpu_type_ != nullptr ? config_.gpu_nodes : 0;

    while (next_arrival_ < jobs_.size() || !running_.empty() ||
           !queue_empty()) {
      // Next event: arrival or completion.
      const double t_arrive = next_arrival_ < jobs_.size()
                                  ? jobs_[next_arrival_].arrival.value()
                                  : 1e300;
      const double t_finish =
          !running_.empty() ? running_.top().finish.value() : 1e300;

      if (t_arrive <= t_finish && next_arrival_ < jobs_.size()) {
        now_ = t_arrive;
        queue_push(next_arrival_);
        ++next_arrival_;
      } else if (!running_.empty()) {
        now_ = t_finish;
        Running done = running_.top();
        running_.pop();
        ledger_.release(done.ledger_slot);
        if (done.gpu) {
          ++free_gpu_nodes_;
        } else {
          ++free_cpu_nodes_;
        }
        run_.jobs.push_back(done.outcome);
        run_.total_energy += done.outcome.energy;
      } else {
        // Queue non-empty but nothing running and no arrivals: the head
        // can never start (e.g. a GPU job with no GPU nodes). Drop it so
        // the rest of the queue can drain.
        drop_queue_head();
      }
      try_start_queue_head();
    }
  }

  void finalize_stats() {
    if (run_.jobs.empty()) return;
    double wait = 0.0;
    double response = 0.0;
    double work = 0.0;
    double makespan = 0.0;
    for (const auto& o : run_.jobs) {
      wait += o.wait().value();
      response += o.response().value();
      makespan = std::max(makespan, o.finish.value());
    }
    for (const auto& job : jobs_) work += job.work_gunits;
    const auto n = static_cast<double>(run_.jobs.size());
    run_.mean_wait = Seconds{wait / n};
    run_.mean_response = Seconds{response / n};
    run_.makespan = Seconds{makespan};
    run_.work_per_joule = run_.total_energy.value() > 0.0
                              ? work / run_.total_energy.value()
                              : 0.0;
  }

  const hw::CpuMachine& node_type_;
  const hw::GpuMachine* gpu_type_;
  std::vector<SimJob> jobs_;
  const ClusterSimConfig& config_;
  const ClusterNodeProvider* provider_;
  const bool fast_;

  std::vector<JobMeta> meta_;
  std::vector<DistinctSlot> slots_;            // fast path
  std::vector<CpuCriticalPowers> ref_cpu_profiles_;  // reference path
  std::vector<GpuProfileParams> ref_gpu_profiles_;

  GrantLedger ledger_;
  std::priority_queue<Running, std::vector<Running>, FinishOrder> running_;
  std::deque<std::size_t> ref_queue_;
  std::set<std::size_t> fast_queue_;
  /// threshold → queued job indices, per domain (0 = CPU, 1 = GPU). Jobs
  /// whose threshold is +inf are never power-eligible and stay out of the
  /// buckets entirely (they only leave via the drop-head path).
  std::map<double, std::set<std::size_t>> buckets_[2];
  std::size_t next_arrival_ = 0;
  std::size_t free_cpu_nodes_ = 0;
  std::size_t free_gpu_nodes_ = 0;
  double now_ = 0.0;
  ClusterRun run_;
};

[[nodiscard]] Status validate(const hw::GpuMachine* gpu_type,
                              const std::vector<SimJob>& jobs,
                              const ClusterSimConfig& config) {
  if (config.nodes == 0) {
    return invalid_argument("cluster has no CPU nodes (config.nodes == 0)");
  }
  if (!(config.global_budget.value() > 0.0)) {
    return invalid_argument("global power budget must be positive, got " +
                            std::to_string(config.global_budget.value()) +
                            " W");
  }
  if (!config.admission_control &&
      config.min_grant.value() > config.global_budget.value()) {
    return invalid_argument(
        "min_grant (" + std::to_string(config.min_grant.value()) +
        " W) exceeds the global budget (" +
        std::to_string(config.global_budget.value()) +
        " W) with admission control off — no CPU job could ever start");
  }
  for (const SimJob& job : jobs) {
    if (job.wl.domain != workload::Domain::kGpu) continue;
    if (gpu_type == nullptr) {
      return invalid_argument("GPU job '" + job.name +
                              "' submitted to a cluster with no GPU machine");
    }
    if (config.gpu_nodes == 0) {
      return invalid_argument("GPU job '" + job.name +
                              "' submitted but config.gpu_nodes == 0");
    }
  }
  if (config.path != ClusterPath::kEvent) {
    if (config.hierarchy != nullptr || config.scenario != nullptr) {
      return invalid_argument(
          "config.hierarchy/config.scenario require ClusterPath::kEvent — "
          "the flat paths ignore them, which would silently change the run");
    }
    return Status{};
  }
  const std::size_t gpus = gpu_type != nullptr ? config.gpu_nodes : 0;
  if (config.hierarchy != nullptr) {
    if (Status s = validate_hierarchy(*config.hierarchy, config.nodes, gpus);
        !s.ok()) {
      return s;
    }
  }
  if (config.scenario != nullptr) {
    const HierarchySpec flat =
        config.hierarchy == nullptr
            ? flat_hierarchy(config.nodes, gpus, config.global_budget)
            : HierarchySpec{};
    const HierarchySpec& spec =
        config.hierarchy != nullptr ? *config.hierarchy : flat;
    if (Status s = validate_scenario(*config.scenario, spec); !s.ok()) {
      return s;
    }
  }
  return Status{};
}

}  // namespace

ClusterRun simulate_cluster(const hw::CpuMachine& node_type,
                            std::vector<SimJob> jobs,
                            const ClusterSimConfig& config,
                            const ClusterNodeProvider* provider) {
  if (config.path == ClusterPath::kEvent) {
    return detail::simulate_cluster_events(node_type, nullptr,
                                           std::move(jobs), config, provider);
  }
  return ClusterEngine(node_type, nullptr, std::move(jobs), config, provider)
      .run();
}

ClusterRun simulate_cluster(const hw::CpuMachine& node_type,
                            const hw::GpuMachine& gpu_type,
                            std::vector<SimJob> jobs,
                            const ClusterSimConfig& config,
                            const ClusterNodeProvider* provider) {
  if (config.path == ClusterPath::kEvent) {
    return detail::simulate_cluster_events(node_type, &gpu_type,
                                           std::move(jobs), config, provider);
  }
  return ClusterEngine(node_type, &gpu_type, std::move(jobs), config, provider)
      .run();
}

Result<ClusterRun> simulate_cluster_checked(const hw::CpuMachine& node_type,
                                            std::vector<SimJob> jobs,
                                            const ClusterSimConfig& config,
                                            const ClusterNodeProvider* provider) {
  if (Status s = validate(nullptr, jobs, config); !s.ok()) return s.error();
  return simulate_cluster(node_type, std::move(jobs), config, provider);
}

Result<ClusterRun> simulate_cluster_checked(const hw::CpuMachine& node_type,
                                            const hw::GpuMachine& gpu_type,
                                            std::vector<SimJob> jobs,
                                            const ClusterSimConfig& config,
                                            const ClusterNodeProvider* provider) {
  if (Status s = validate(&gpu_type, jobs, config); !s.ok()) return s.error();
  return simulate_cluster(node_type, gpu_type, std::move(jobs), config,
                          provider);
}

}  // namespace pbc::core
