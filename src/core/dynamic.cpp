#include "core/dynamic.hpp"

#include <algorithm>

#include "core/coord.hpp"
#include "core/critical.hpp"

namespace pbc::core {

ShiftingResult replay_with_shifting(const sim::CpuNodeSim& node,
                                    const workload::PhaseTrace& trace,
                                    Watts total_budget,
                                    const ShiftingConfig& cfg) {
  ShiftingResult out;
  const auto& wl = node.wl();
  const auto& machine = node.machine();

  // Per-phase single-phase simulators (as in replay_trace).
  std::vector<sim::CpuNodeSim> phase_nodes;
  phase_nodes.reserve(wl.phases.size());
  for (const auto& phase : wl.phases) {
    workload::Workload single = wl;
    single.name = wl.name + "/" + phase.name;
    single.phases = {phase};
    single.phases[0].weight = 1.0;
    phase_nodes.emplace_back(machine, std::move(single));
  }

  // Start from the static heuristic's split — the shifter is an *online
  // refinement* of COORD, not a replacement.
  const CpuCriticalPowers profile = profile_critical_powers(node);
  const CpuAllocation start = coord_cpu(profile, total_budget);
  double cpu_cap =
      std::clamp(start.cpu.value(), cfg.cpu_min.value(),
                 total_budget.value() - cfg.mem_min.value());
  const double step = cfg.step.value();

  double total_work = 0.0;
  for (const auto& seg : trace) {
    if (seg.phase_index >= phase_nodes.size() || seg.work_units <= 0.0) {
      continue;
    }
    const auto& pn = phase_nodes[seg.phase_index];

    // Hill-climb the split on this segment's phase: try one step in each
    // direction, commit strict improvements, stop at a local optimum. The
    // budget invariant cpu+mem == total holds throughout.
    sim::AllocationSample s = pn.steady_state(
        Watts{cpu_cap}, Watts{total_budget.value() - cpu_cap});
    for (int i = 0; i < cfg.max_steps_per_segment; ++i) {
      double best_cpu = cpu_cap;
      sim::AllocationSample best = s;
      for (const double candidate_cpu : {cpu_cap - step, cpu_cap + step}) {
        if (candidate_cpu < cfg.cpu_min.value() ||
            total_budget.value() - candidate_cpu < cfg.mem_min.value()) {
          continue;
        }
        const sim::AllocationSample candidate = pn.steady_state(
            Watts{candidate_cpu},
            Watts{total_budget.value() - candidate_cpu});
        if (candidate.perf > best.perf + 1e-12) {
          best = candidate;
          best_cpu = candidate_cpu;
        }
      }
      if (best_cpu == cpu_cap) break;
      cpu_cap = best_cpu;
      s = best;
      ++out.shifts;
    }

    out.caps.push_back(SegmentCaps{seg.phase_index, Watts{cpu_cap},
                                   Watts{total_budget.value() - cpu_cap}});

    sim::SegmentResult r;
    r.phase_index = seg.phase_index;
    r.work_units = seg.work_units;
    r.rate_gunits = s.rate_gunits;
    r.duration =
        Seconds{s.rate_gunits > 0.0 ? seg.work_units / s.rate_gunits : 0.0};
    r.proc_power = s.proc_power;
    r.mem_power = s.mem_power;
    out.replay.segments.push_back(r);
    out.replay.total_time += r.duration;
    out.replay.proc_energy += r.proc_power * r.duration;
    out.replay.mem_energy += r.mem_power * r.duration;
    total_work += seg.work_units;
  }

  auto& agg = out.replay.aggregate;
  agg.proc_cap = Watts{cpu_cap};
  agg.mem_cap = Watts{total_budget.value() - cpu_cap};
  if (out.replay.total_time.value() > 0.0) {
    agg.rate_gunits = total_work / out.replay.total_time.value();
    agg.perf = agg.rate_gunits * wl.metric_per_gunit;
    agg.proc_power = out.replay.proc_energy / out.replay.total_time;
    agg.mem_power = out.replay.mem_energy / out.replay.total_time;
  }
  agg.proc_cap_respected = true;  // total never exceeds the budget
  agg.mem_cap_respected = true;
  return out;
}

}  // namespace pbc::core
