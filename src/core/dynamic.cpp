#include "core/dynamic.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "core/coord.hpp"
#include "core/critical.hpp"

namespace pbc::core {

namespace {

/// One segment's climb: where it settled, the steady state there, and how
/// many one-step moves it committed.
struct ClimbOutcome {
  double cpu_cap = 0.0;
  sim::AllocationSample sample;
  std::size_t steps = 0;
};

// One segment's hill climb, shared verbatim by both engines: evaluate the
// entry split, then try one step in each direction, committing strict
// improvements, stopping at a local optimum. `eval(cpu_cap)` supplies the
// phase's steady state at (cpu_cap, total - cpu_cap). The budget
// invariant cpu + mem == total holds throughout.
template <class Eval>
ClimbOutcome climb_segment(double entry_cpu, double total, double step,
                           double cpu_min, double mem_min, int max_steps,
                           Eval&& eval) {
  ClimbOutcome out;
  double cpu_cap = entry_cpu;
  sim::AllocationSample s = eval(cpu_cap);
  for (int i = 0; i < max_steps; ++i) {
    double best_cpu = cpu_cap;
    sim::AllocationSample best = s;
    for (const double candidate_cpu : {cpu_cap - step, cpu_cap + step}) {
      if (candidate_cpu < cpu_min || total - candidate_cpu < mem_min) {
        continue;
      }
      const sim::AllocationSample candidate = eval(candidate_cpu);
      if (candidate.perf > best.perf + 1e-12) {
        best = candidate;
        best_cpu = candidate_cpu;
      }
    }
    if (best_cpu == cpu_cap) break;
    cpu_cap = best_cpu;
    s = best;
    ++out.steps;
  }
  out.cpu_cap = cpu_cap;
  out.sample = s;
  return out;
}

// Fast-engine working state for one (trace, budget, config) run: an
// exact-bit split memo and a whole-climb memo per phase, plus one solver
// warm-start hint per phase. Every split the climber can visit lies on
// the lattice {start ± k·step} reached through identical FP operations,
// so the exact bit pattern of cpu_cap is a sound memo key: a hit returns
// the very sample the reference engine would recompute, and the climb
// memo replays a whole segment's deterministic climb from cache. Hints
// only seed the bisection gallops (the warm-start invariant), so the
// engine stays bit-identical to the reference path.
class FastClimber {
 public:
  FastClimber(const sim::PhaseNodeSet& nodes, double total)
      : nodes_(nodes),
        total_(total),
        splits_(nodes.phase_count()),
        climbs_(nodes.phase_count()),
        hints_(nodes.phase_count()) {}

  ClimbOutcome climb(std::size_t phase, double entry_cpu, double step,
                     double cpu_min, double mem_min, int max_steps) {
    auto& memo = climbs_[phase];
    const std::uint64_t key = std::bit_cast<std::uint64_t>(entry_cpu);
    if (const auto it = memo.find(key); it != memo.end()) {
      return it->second;
    }
    ClimbOutcome out = climb_segment(
        entry_cpu, total_, step, cpu_min, mem_min, max_steps,
        [&](double cpu_cap) { return solve(phase, cpu_cap); });
    memo.emplace(key, out);
    return out;
  }

 private:
  sim::AllocationSample solve(std::size_t phase, double cpu_cap) {
    auto& memo = splits_[phase];
    const std::uint64_t key = std::bit_cast<std::uint64_t>(cpu_cap);
    if (const auto it = memo.find(key); it != memo.end()) {
      return it->second;
    }
    const sim::AllocationSample s = nodes_.phase(phase).steady_state_hinted(
        Watts{cpu_cap}, Watts{total_ - cpu_cap}, &hints_[phase]);
    memo.emplace(key, s);
    return s;
  }

  const sim::PhaseNodeSet& nodes_;
  double total_;
  std::vector<std::unordered_map<std::uint64_t, sim::AllocationSample>>
      splits_;
  std::vector<std::unordered_map<std::uint64_t, ClimbOutcome>> climbs_;
  std::vector<sim::SolveHint> hints_;
};

// COORD's split clamped into the feasible band. Written as min(max(...))
// instead of std::clamp so an infeasible budget (total < cpu_min +
// mem_min — rejected by the checked API, tolerated by the unchecked one)
// degrades deterministically instead of hitting std::clamp's hi < lo
// precondition.
double start_split(const CpuCriticalPowers& profile, Watts total_budget,
                   double cpu_min, double mem_min) {
  const CpuAllocation start = coord_cpu(profile, total_budget);
  return std::min(std::max(start.cpu.value(), cpu_min),
                  total_budget.value() - mem_min);
}

// The trace loop both engines share: the committed split carries across
// segments (the shifter is an online controller), and the aggregate
// reports time-weighted mean caps — the split varies per segment, so a
// single final split would misreport the trace (out.caps is the source
// of truth). `climb(phase, entry_cpu)` supplies one segment's outcome.
template <class Climb>
ShiftingResult shifting_loop(const workload::Workload& wl,
                             const workload::PhaseTrace& trace,
                             std::size_t phase_count, Watts total_budget,
                             double start_cpu, Climb&& climb) {
  ShiftingResult out;
  double cpu_cap = start_cpu;
  double total_work = 0.0;
  double weighted_cpu_cap = 0.0;
  double weighted_mem_cap = 0.0;
  for (const auto& seg : trace) {
    if (seg.phase_index >= phase_count || seg.work_units <= 0.0) {
      continue;
    }
    const ClimbOutcome c = climb(seg.phase_index, cpu_cap);
    cpu_cap = c.cpu_cap;
    out.shifts += c.steps;
    out.caps.push_back(SegmentCaps{seg.phase_index, Watts{cpu_cap},
                                   Watts{total_budget.value() - cpu_cap}});

    sim::SegmentResult r;
    r.phase_index = seg.phase_index;
    r.work_units = seg.work_units;
    r.rate_gunits = c.sample.rate_gunits;
    r.duration = Seconds{c.sample.rate_gunits > 0.0
                             ? seg.work_units / c.sample.rate_gunits
                             : 0.0};
    r.proc_power = c.sample.proc_power;
    r.mem_power = c.sample.mem_power;
    out.replay.segments.push_back(r);
    out.replay.total_time += r.duration;
    out.replay.proc_energy += r.proc_power * r.duration;
    out.replay.mem_energy += r.mem_power * r.duration;
    total_work += seg.work_units;
    weighted_cpu_cap += cpu_cap * r.duration.value();
    weighted_mem_cap +=
        (total_budget.value() - cpu_cap) * r.duration.value();
  }

  auto& agg = out.replay.aggregate;
  if (out.replay.total_time.value() > 0.0) {
    agg.proc_cap = Watts{weighted_cpu_cap / out.replay.total_time.value()};
    agg.mem_cap = Watts{weighted_mem_cap / out.replay.total_time.value()};
    agg.rate_gunits = total_work / out.replay.total_time.value();
    agg.perf = agg.rate_gunits * wl.metric_per_gunit;
    agg.proc_power = out.replay.proc_energy / out.replay.total_time;
    agg.mem_power = out.replay.mem_energy / out.replay.total_time;
  }
  agg.proc_cap_respected = true;  // total never exceeds the budget
  agg.mem_cap_respected = true;
  return out;
}

// The retained original implementation: fresh per-phase simulators, one
// full steady-state solve per candidate per segment.
ShiftingResult shift_reference(const hw::CpuMachine& machine,
                               const workload::Workload& wl,
                               const workload::PhaseTrace& trace,
                               Watts total_budget, const ShiftingConfig& cfg,
                               const CpuCriticalPowers& profile) {
  // Per-phase single-phase simulators (as in replay_trace).
  std::vector<sim::CpuNodeSim> phase_nodes;
  phase_nodes.reserve(wl.phases.size());
  for (std::size_t i = 0; i < wl.phases.size(); ++i) {
    phase_nodes.emplace_back(machine, sim::single_phase_workload(wl, i));
  }

  const auto [cpu_min_w, mem_min_w] = shifting_floors(cfg, machine);
  const double cpu_min = cpu_min_w.value();
  const double mem_min = mem_min_w.value();
  const double step = cfg.step.value();
  const double start = start_split(profile, total_budget, cpu_min, mem_min);

  return shifting_loop(
      wl, trace, phase_nodes.size(), total_budget, start,
      [&](std::size_t phase, double entry_cpu) {
        return climb_segment(
            entry_cpu, total_budget.value(), step, cpu_min, mem_min,
            cfg.max_steps_per_segment, [&](double cpu_cap) {
              return phase_nodes[phase].steady_state(
                  Watts{cpu_cap}, Watts{total_budget.value() - cpu_cap});
            });
      });
}

ShiftingResult shift_fast(const sim::PhaseNodeSet& nodes,
                          const workload::PhaseTrace& trace,
                          Watts total_budget, const ShiftingConfig& cfg,
                          const CpuCriticalPowers& profile) {
  const auto [cpu_min_w, mem_min_w] = shifting_floors(cfg, nodes.machine());
  const double cpu_min = cpu_min_w.value();
  const double mem_min = mem_min_w.value();
  const double step = cfg.step.value();
  const double start = start_split(profile, total_budget, cpu_min, mem_min);

  FastClimber climber(nodes, total_budget.value());
  return shifting_loop(nodes.wl(), trace, nodes.phase_count(), total_budget,
                       start, [&](std::size_t phase, double entry_cpu) {
                         return climber.climb(phase, entry_cpu, step,
                                              cpu_min, mem_min,
                                              cfg.max_steps_per_segment);
                       });
}

Status validate_shifting(const workload::PhaseTrace& trace,
                         std::size_t phase_count, Watts total_budget,
                         const ShiftingConfig& cfg,
                         const hw::CpuMachine& machine) {
  if (!(cfg.step.value() > 0.0)) {
    return invalid_argument("shifting step must be > 0 W, got " +
                            std::to_string(cfg.step.value()));
  }
  if (cfg.max_steps_per_segment < 0) {
    return invalid_argument("max_steps_per_segment must be >= 0, got " +
                            std::to_string(cfg.max_steps_per_segment));
  }
  const auto [cpu_min, mem_min] = shifting_floors(cfg, machine);
  if (total_budget.value() < cpu_min.value() + mem_min.value()) {
    return failed_precondition(
        "total budget " + std::to_string(total_budget.value()) +
        " W below cpu_min + mem_min = " +
        std::to_string(cpu_min.value() + mem_min.value()) + " W");
  }
  return sim::check_trace(trace, phase_count);
}

}  // namespace

std::pair<Watts, Watts> shifting_floors(
    const ShiftingConfig& cfg, const hw::CpuMachine& machine) noexcept {
  const auto resolve = [](const std::optional<Watts>& explicit_floor,
                          Watts machine_floor, double fallback) {
    if (explicit_floor.has_value()) return *explicit_floor;
    if (machine_floor.value() > 0.0) return machine_floor;
    return Watts{fallback};
  };
  return {resolve(cfg.cpu_min, machine.cpu.floor, 48.0),
          resolve(cfg.mem_min, machine.dram.floor, 68.0)};
}

ShiftingResult replay_with_shifting(const sim::CpuNodeSim& node,
                                    const workload::PhaseTrace& trace,
                                    Watts total_budget,
                                    const ShiftingConfig& cfg) {
  // Start from the static heuristic's split — the shifter is an *online
  // refinement* of COORD, not a replacement.
  const CpuCriticalPowers profile = profile_critical_powers(node);
  if (cfg.path == sim::ReplayPath::kReference) {
    return shift_reference(node.machine(), node.wl(), trace, total_budget,
                           cfg, profile);
  }
  const sim::PhaseNodeSet nodes(node.machine(), node.wl());
  return shift_fast(nodes, trace, total_budget, cfg, profile);
}

ShiftingResult replay_with_shifting(const sim::PhaseNodeSet& nodes,
                                    const workload::PhaseTrace& trace,
                                    Watts total_budget,
                                    const ShiftingConfig& cfg) {
  const CpuCriticalPowers profile = profile_critical_powers(nodes.full());
  if (cfg.path == sim::ReplayPath::kReference) {
    return shift_reference(nodes.machine(), nodes.wl(), trace, total_budget,
                           cfg, profile);
  }
  return shift_fast(nodes, trace, total_budget, cfg, profile);
}

Result<ShiftingResult> replay_with_shifting_checked(
    const sim::CpuNodeSim& node, const workload::PhaseTrace& trace,
    Watts total_budget, const ShiftingConfig& cfg) {
  if (Status s = validate_shifting(trace, node.wl().phases.size(),
                                   total_budget, cfg, node.machine());
      !s.ok()) {
    return s.error();
  }
  return replay_with_shifting(node, trace, total_budget, cfg);
}

Result<ShiftingResult> replay_with_shifting_checked(
    const sim::PhaseNodeSet& nodes, const workload::PhaseTrace& trace,
    Watts total_budget, const ShiftingConfig& cfg) {
  if (Status s = validate_shifting(trace, nodes.phase_count(), total_budget,
                                   cfg, nodes.machine());
      !s.ok()) {
    return s.error();
  }
  return replay_with_shifting(nodes, trace, total_budget, cfg);
}

std::vector<ShiftingResult> shifting_batch(
    const sim::PhaseNodeSet& nodes,
    std::span<const workload::PhaseTrace> traces,
    std::span<const Watts> budgets, const ShiftingConfig& cfg,
    ThreadPool* pool) {
  const std::size_t n = traces.size() * budgets.size();
  std::vector<ShiftingResult> out(n);
  if (n == 0) return out;
  // One profile for the whole grid: it depends only on (machine,
  // workload), and profiling is the per-call fixed cost the batch exists
  // to amortize.
  const CpuCriticalPowers profile = profile_critical_powers(nodes.full());
  const auto run = [&](std::size_t i) {
    const std::size_t t = i / budgets.size();
    const std::size_t b = i % budgets.size();
    out[i] = cfg.path == sim::ReplayPath::kReference
                 ? shift_reference(nodes.machine(), nodes.wl(), traces[t],
                                   budgets[b], cfg, profile)
                 : shift_fast(nodes, traces[t], budgets[b], cfg, profile);
  };
  ThreadPool& p = pool != nullptr ? *pool : global_pool();
  if (n < 2 || p.is_worker_thread()) {
    for (std::size_t i = 0; i < n; ++i) run(i);
  } else {
    p.parallel_for_index(n, run);
  }
  return out;
}

}  // namespace pbc::core
