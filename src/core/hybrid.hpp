// Hybrid-node power coordination: a host (CPU package + DRAM) and a
// discrete GPU under one node power budget.
//
// §2 of the paper defers "hybrid computing" to future work; this module
// extends COORD hierarchically to the three-component case that dominates
// accelerated HPC nodes (the paper's Summit motivation). The node budget
// is first divided between the host and the GPU board by the same
// regime logic as Algorithm 1 — full demands when affordable, otherwise
// proportional shares of the headroom above the productive minima — and
// each side then runs its own COORD (Algorithm 1 for CPU+DRAM,
// Algorithm 2 for SM+memory).
//
// Quality is scored with node utility: each side's performance normalized
// to its unconstrained solo performance, summed (2.0 = both at full
// speed), so the heuristic can be compared against an exhaustive
// two-level sweep oracle.
#pragma once

#include "core/coord.hpp"
#include "sim/cpu_node.hpp"
#include "sim/gpu_node.hpp"

namespace pbc::core {

/// A host job and a GPU job sharing one node.
struct HybridNode {
  hw::CpuMachine host;
  hw::GpuMachine gpu;
  workload::Workload host_wl;
  workload::Workload gpu_wl;
};

struct HybridAllocation {
  CoordStatus status = CoordStatus::kSuccess;
  Watts surplus{0.0};
  /// Host share and its internal split.
  CpuAllocation host;
  /// GPU board cap and the memory clock Algorithm 2 picked.
  Watts gpu_cap{0.0};
  std::size_t gpu_mem_clock_index = 0;
  /// Simulated outcomes.
  double host_perf = 0.0;
  double gpu_perf = 0.0;
  /// host_perf/host_solo + gpu_perf/gpu_solo, in [0, 2].
  double utility = 0.0;

  [[nodiscard]] Watts total() const noexcept {
    return host.total() + gpu_cap;
  }
};

/// Hierarchical COORD across host and GPU.
[[nodiscard]] HybridAllocation coord_hybrid(const HybridNode& node,
                                            Watts node_budget);

/// Exhaustive two-level sweep: GPU share grid × host split grid,
/// maximizing utility. The reference COORD is compared against.
[[nodiscard]] HybridAllocation hybrid_oracle(const HybridNode& node,
                                             Watts node_budget,
                                             Watts step = Watts{8.0});

}  // namespace pbc::core
