#include "core/frontier.hpp"

#include <algorithm>
#include <chrono>
#include <optional>

#include "sim/instrumentation.hpp"

namespace pbc::core {

namespace {
FrontierPoint to_point(Watts budget,
                       const std::optional<sim::AllocationSample>& best) {
  FrontierPoint fp;
  fp.budget = budget;
  if (best) {
    fp.perf_max = best->perf;
    fp.best_proc_cap = best->proc_cap;
    fp.best_mem_cap = best->mem_cap;
    fp.consumed = best->total_power();
  }
  return fp;
}
}  // namespace

std::vector<FrontierPoint> perf_frontier_cpu(const sim::CpuNodeSim& node,
                                             std::span<const Watts> budgets,
                                             const sim::CpuSweepOptions& opt,
                                             ThreadPool* pool) {
  // The blocked frontier driver: budgets tile into (budget x split)
  // blocks, each relaxed in one batched pass that materializes only the
  // per-budget winners — the frontier never needs the full sample
  // vectors, and each SoA table row streams once per block instead of
  // once per budget. Bit-identical to the per-budget sweep reduction.
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<std::optional<sim::AllocationSample>> best =
      sim::sweep_cpu_budgets_best(node, budgets, opt, pool);
  std::vector<FrontierPoint> frontier;
  frontier.reserve(budgets.size());
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    frontier.push_back(to_point(budgets[i], best[i]));
  }
  sim::detail::record_frontier_build("cpu", t0);
  return frontier;
}

std::vector<FrontierPoint> perf_frontier_gpu(const sim::GpuNodeSim& node,
                                             std::span<const Watts> board_caps,
                                             ThreadPool* pool) {
  // Batched best-clock reduction per board cap (one vectorized scan per
  // memory clock, winners only) — same samples BudgetSweep::best picks.
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<std::optional<sim::AllocationSample>> best =
      sim::sweep_gpu_budgets_best(node, board_caps, sim::SolverPath::kFast,
                                  pool);
  std::vector<FrontierPoint> frontier;
  frontier.reserve(board_caps.size());
  for (std::size_t i = 0; i < board_caps.size(); ++i) {
    frontier.push_back(to_point(board_caps[i], best[i]));
  }
  sim::detail::record_frontier_build("gpu", t0);
  return frontier;
}

Result<PiecewiseLinear> frontier_curve(
    std::span<const FrontierPoint> frontier) {
  std::vector<std::pair<double, double>> pts;
  pts.reserve(frontier.size());
  for (const auto& fp : frontier) {
    pts.emplace_back(fp.budget.value(), fp.perf_max);
  }
  return PiecewiseLinear::from_points(std::move(pts));
}

Watts saturation_budget(std::span<const FrontierPoint> frontier,
                        double rel_tol) {
  auto curve = frontier_curve(frontier);
  if (!curve.ok()) return Watts{0.0};
  return Watts{plateau_onset(curve.value(), rel_tol)};
}

Watts productive_budget(std::span<const FrontierPoint> frontier, double frac) {
  if (frontier.empty()) return Watts{0.0};
  const double target = frontier.back().perf_max * frac;
  for (const auto& fp : frontier) {
    if (fp.perf_max >= target) return fp.budget;
  }
  return frontier.back().budget;
}

}  // namespace pbc::core
