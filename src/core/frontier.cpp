#include "core/frontier.hpp"

#include <algorithm>

namespace pbc::core {

namespace {
FrontierPoint to_point(const sim::BudgetSweep& sweep) {
  FrontierPoint fp;
  fp.budget = sweep.budget;
  if (const sim::AllocationSample* best = sweep.best()) {
    fp.perf_max = best->perf;
    fp.best_proc_cap = best->proc_cap;
    fp.best_mem_cap = best->mem_cap;
    fp.consumed = best->total_power();
  }
  return fp;
}
}  // namespace

std::vector<FrontierPoint> perf_frontier_cpu(const sim::CpuNodeSim& node,
                                             std::span<const Watts> budgets,
                                             const sim::CpuSweepOptions& opt,
                                             ThreadPool* pool) {
  // Build the node's operating-point table once up front, then reduce each
  // budget to its best split directly — the frontier never needs the full
  // per-budget sample vectors materialized.
  if (opt.path == sim::SolverPath::kFast) node.prepare();
  std::vector<FrontierPoint> frontier(budgets.size());
  ThreadPool& tp = pool ? *pool : global_pool();
  tp.parallel_for_index(budgets.size(), [&](std::size_t i) {
    FrontierPoint fp;
    fp.budget = budgets[i];
    if (const auto best = sim::sweep_cpu_split_best(node, budgets[i], opt)) {
      fp.perf_max = best->perf;
      fp.best_proc_cap = best->proc_cap;
      fp.best_mem_cap = best->mem_cap;
      fp.consumed = best->total_power();
    }
    frontier[i] = fp;
  });
  return frontier;
}

std::vector<FrontierPoint> perf_frontier_gpu(const sim::GpuNodeSim& node,
                                             std::span<const Watts> board_caps,
                                             ThreadPool* pool) {
  const auto sweeps =
      sim::sweep_gpu_budgets(node, board_caps, sim::SolverPath::kFast, pool);
  std::vector<FrontierPoint> frontier;
  frontier.reserve(sweeps.size());
  for (const auto& sw : sweeps) frontier.push_back(to_point(sw));
  return frontier;
}

Result<PiecewiseLinear> frontier_curve(
    std::span<const FrontierPoint> frontier) {
  std::vector<std::pair<double, double>> pts;
  pts.reserve(frontier.size());
  for (const auto& fp : frontier) {
    pts.emplace_back(fp.budget.value(), fp.perf_max);
  }
  return PiecewiseLinear::from_points(std::move(pts));
}

Watts saturation_budget(std::span<const FrontierPoint> frontier,
                        double rel_tol) {
  auto curve = frontier_curve(frontier);
  if (!curve.ok()) return Watts{0.0};
  return Watts{plateau_onset(curve.value(), rel_tol)};
}

Watts productive_budget(std::span<const FrontierPoint> frontier, double frac) {
  if (frontier.empty()) return Watts{0.0};
  const double target = frontier.back().perf_max * frac;
  for (const auto& fp : frontier) {
    if (fp.perf_max >= target) return fp.budget;
  }
  return frontier.back().budget;
}

}  // namespace pbc::core
