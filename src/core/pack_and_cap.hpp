// Pack & Cap — the thread-packing baseline (Cochran et al., the paper's
// ref. [11]): under a power cap, jointly choose how many cores to run on
// and let DVFS/throttling settle, instead of always using every core.
//
// Packing matters exactly where the paper's scenario IV lives: when the
// processor cap is too small for all cores even at the lowest P-state,
// running fewer cores avoids duty-cycle throttling (whose request-issue
// gating collapses bandwidth), often winning large factors for memory-
// bound codes. With generous caps, all cores at low frequency dominate —
// which is why cross-component coordination, not packing, is the paper's
// lever at normal budgets.
#pragma once

#include "core/coord.hpp"
#include "sim/cpu_node.hpp"

namespace pbc::core {

struct PackAndCapOptions {
  /// Core-count granularity of the search.
  int core_step = 2;
  /// Memory-cap grid step for the split search.
  Watts mem_step{8.0};
  Watts mem_lo{68.0};
  Watts proc_lo{40.0};
};

struct PackAndCapResult {
  int best_cores = 0;
  Watts cpu_cap{0.0};
  Watts mem_cap{0.0};
  double perf = 0.0;
  /// Best performance achievable with all cores active (same split grid).
  double perf_all_cores = 0.0;
  /// perf / perf_all_cores: > 1 where packing pays.
  [[nodiscard]] double packing_gain() const noexcept {
    return perf_all_cores > 0.0 ? perf / perf_all_cores : 0.0;
  }
};

/// Joint (cores × split) search under a total budget.
[[nodiscard]] PackAndCapResult pack_and_cap(const sim::CpuNodeSim& node,
                                            Watts budget,
                                            const PackAndCapOptions& opt = {});

}  // namespace pbc::core
