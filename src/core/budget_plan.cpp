#include "core/budget_plan.hpp"

#include <algorithm>

namespace pbc::core {

BudgetPlan plan_budget(const sim::CpuNodeSim& node,
                       const BudgetPlanOptions& opt) {
  BudgetPlan plan;
  const CpuCriticalPowers profile = profile_critical_powers(node);
  plan.reject_below = profile.productive_threshold();

  // Frontier from the threshold to comfortably past the max demand.
  const Watts lo = plan.reject_below;
  const Watts hi{profile.max_demand().value() + 40.0};
  const auto budgets = sim::budget_grid(lo, hi, opt.grid_step);
  plan.frontier = perf_frontier_cpu(node, budgets, opt.sweep);
  if (plan.frontier.empty()) return plan;

  plan.saturation_at = saturation_budget(plan.frontier);
  plan.peak_perf = plan.frontier.back().perf_max;

  // Peak efficiency: perf_max per watt actually consumed at the best split.
  double best_eff = -1.0;
  for (const auto& fp : plan.frontier) {
    const double consumed = fp.consumed.value();
    const double eff = consumed > 0.0 ? fp.perf_max / consumed : 0.0;
    if (eff > best_eff) {
      best_eff = eff;
      plan.efficient_at = fp.budget;
      plan.perf_at_efficient = fp.perf_max;
    }
  }
  plan.peak_efficiency = best_eff;

  // Diminishing returns: first budget whose marginal perf per watt drops
  // below knee_fraction of the largest marginal gain.
  double max_marginal = 0.0;
  std::vector<double> marginal(plan.frontier.size(), 0.0);
  for (std::size_t i = 1; i < plan.frontier.size(); ++i) {
    const double dp =
        plan.frontier[i].perf_max - plan.frontier[i - 1].perf_max;
    const double db = plan.frontier[i].budget.value() -
                      plan.frontier[i - 1].budget.value();
    marginal[i] = db > 0.0 ? dp / db : 0.0;
    max_marginal = std::max(max_marginal, marginal[i]);
  }
  plan.diminishing_at = plan.frontier.back().budget;
  for (std::size_t i = 1; i < plan.frontier.size(); ++i) {
    // Look for the first knee *after* the steep region has been seen.
    if (marginal[i] < opt.knee_fraction * max_marginal &&
        plan.frontier[i].perf_max > 0.5 * plan.peak_perf) {
      plan.diminishing_at = plan.frontier[i].budget;
      break;
    }
  }
  return plan;
}

}  // namespace pbc::core
