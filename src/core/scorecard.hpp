// The reproduction scorecard: every headline claim of the paper, run as
// code and judged against an acceptance band.
//
// EXPERIMENTS.md documents the paper-vs-measured comparison; this module
// *executes* it, so a calibration or model change that silently drifts a
// reproduced result out of band fails CI (tests/core/scorecard_test.cpp)
// and shows up in `bench/repro_scorecard`. Bands encode "shape, not
// absolute numbers": each one states the range within which the measured
// value still supports the paper's qualitative claim.
#pragma once

#include <string>
#include <vector>

namespace pbc::core {

struct ClaimResult {
  std::string id;        ///< e.g. "fig3/scenario-I-powers"
  std::string claim;     ///< the paper's statement
  std::string measured;  ///< what this build measures
  double value = 0.0;    ///< the scalar judged against the band
  double band_lo = 0.0;
  double band_hi = 0.0;
  bool in_band = false;
};

/// Runs every scorecard experiment (a few seconds). Deterministic.
[[nodiscard]] std::vector<ClaimResult> run_scorecard();

/// True when every claim is in band.
[[nodiscard]] bool all_in_band(const std::vector<ClaimResult>& results);

}  // namespace pbc::core
