// COORD — the category-based heuristic power coordination method
// (paper Algorithm 1 for CPU computing, Algorithm 2 for GPU computing).
//
// Given a total node budget and the lightweight profile (critical power
// values / GPU parameters), COORD picks a near-optimal cross-component
// split without any allocation sweep. It partitions budgets into four
// regimes (§5.1): (A) both components fully powered — flag the surplus;
// (B) only one can be fully powered — warrant memory first; (C) neither —
// split the headroom above the components' lowest-performance-state powers
// proportionally to their demand ranges; (D) below the productive
// threshold — reject the job.
#pragma once

#include "core/critical.hpp"
#include "hw/gpu.hpp"
#include "util/units.hpp"

namespace pbc::core {

enum class CoordStatus {
  kSuccess,         ///< allocation within the productive range
  kPowerSurplus,    ///< budget exceeds the application's maximum demand
  kBudgetTooSmall,  ///< below the productive threshold; job should not run
};

[[nodiscard]] constexpr const char* to_string(CoordStatus s) noexcept {
  switch (s) {
    case CoordStatus::kSuccess:
      return "success";
    case CoordStatus::kPowerSurplus:
      return "power-surplus";
    case CoordStatus::kBudgetTooSmall:
      return "budget-too-small";
  }
  return "?";
}

/// A coordinated CPU/DRAM allocation.
struct CpuAllocation {
  Watts cpu{0.0};
  Watts mem{0.0};
  CoordStatus status = CoordStatus::kSuccess;
  /// Unused budget the node manager should hand back to the higher-level
  /// scheduler (non-zero only with kPowerSurplus).
  Watts surplus{0.0};

  [[nodiscard]] Watts total() const noexcept { return cpu + mem; }
};

/// How regime (C) — neither component can be fully powered — splits the
/// headroom.
enum class CpuCoordVariant {
  /// The paper's Algorithm 1: proportional to the components' demand
  /// ranges (L1 − L2).
  kProportional,
  /// Extension (see DESIGN.md ablations): hold the processor at its
  /// lowest-P-state power and give memory every remaining watt. Better on
  /// platforms whose DRAM power is dominated by the background term, where
  /// marginal memory watts buy disproportionate bandwidth.
  kMemoryBiased,
};

/// Algorithm 1: category-based heuristic power coordination for CPU nodes.
[[nodiscard]] CpuAllocation coord_cpu(
    const CpuCriticalPowers& profile, Watts budget,
    CpuCoordVariant variant = CpuCoordVariant::kProportional) noexcept;

/// A coordinated SM/global-memory allocation. The memory share is realized
/// as a clock setting; the board cap delivers the SM share (with automatic
/// reclaim of whatever memory does not use).
struct GpuAllocation {
  Watts sm{0.0};
  Watts mem{0.0};
  CoordStatus status = CoordStatus::kSuccess;
  Watts surplus{0.0};
  std::size_t mem_clock_index = 0;  ///< realization of the memory share

  [[nodiscard]] Watts total() const noexcept { return sm + mem; }
};

/// Algorithm 2: the GPU variant. gamma balances memory vs SM power for
/// in-between budgets (paper: 0.5 empirically).
[[nodiscard]] GpuAllocation coord_gpu(const GpuProfileParams& profile,
                                      const hw::GpuModel& model, Watts budget,
                                      double gamma = 0.5) noexcept;

/// Highest supported memory clock whose estimated power does not exceed
/// `power` (index 0 when even the lowest clock exceeds it).
[[nodiscard]] std::size_t mem_clock_for_power(const hw::GpuModel& model,
                                              Watts power) noexcept;

}  // namespace pbc::core
