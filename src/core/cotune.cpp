#include "core/cotune.hpp"

#include <algorithm>

#include "sim/sweep.hpp"

namespace pbc::core {

namespace {

/// Best solo performance of a job on the whole node under the budget.
double solo_best(const hw::CpuMachine& machine, const workload::Workload& wl,
                 Watts budget, const CoTuneOptions& opt) {
  const sim::CpuNodeSim node(machine, wl);
  double best = 0.0;
  const double hi = budget.value() - opt.proc_lo.value();
  for (double m = opt.mem_lo.value(); m <= hi + 1e-9;
       m += opt.mem_step.value()) {
    best = std::max(
        best, node.steady_state(Watts{budget.value() - m}, Watts{m}).perf);
  }
  return best;
}

}  // namespace

CoTuneResult cotune_pair(const hw::CpuMachine& machine,
                         const workload::Workload& job_a,
                         const workload::Workload& job_b, Watts total_budget,
                         const CoTuneOptions& opt) {
  CoTuneResult best;
  best.solo_a = solo_best(machine, job_a, total_budget, opt);
  best.solo_b = solo_best(machine, job_b, total_budget, opt);
  if (best.solo_a <= 0.0 || best.solo_b <= 0.0) return best;

  const int total_cores = machine.cpu.total_cores();
  for (int cores_a = opt.min_cores; cores_a <= total_cores - opt.min_cores;
       cores_a += opt.core_step) {
    const int cores_b = total_cores - cores_a;
    const sim::SharedCpuNodeSim shared(
        machine, {{job_a, cores_a}, {job_b, cores_b}});
    const double hi = total_budget.value() - opt.proc_lo.value();
    for (double m = opt.mem_lo.value(); m <= hi + 1e-9;
         m += opt.mem_step.value()) {
      const auto s = shared.steady_state(
          Watts{total_budget.value() - m}, Watts{m});
      ++best.configurations_searched;
      const double stp = s.tenants[0].perf / best.solo_a +
                         s.tenants[1].perf / best.solo_b;
      if (stp > best.stp) {
        best.stp = stp;
        best.cores_a = cores_a;
        best.cores_b = cores_b;
        best.cpu_cap = Watts{total_budget.value() - m};
        best.mem_cap = Watts{m};
        best.perf_a = s.tenants[0].perf;
        best.perf_b = s.tenants[1].perf;
      }
    }
  }
  return best;
}

}  // namespace pbc::core
