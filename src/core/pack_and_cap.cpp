#include "core/pack_and_cap.hpp"

#include <algorithm>

namespace pbc::core {

PackAndCapResult pack_and_cap(const sim::CpuNodeSim& node, Watts budget,
                              const PackAndCapOptions& opt) {
  PackAndCapResult best;
  const int total = node.machine().cpu.total_cores();
  const double hi = budget.value() - opt.proc_lo.value();

  for (int cores = opt.core_step; cores <= total; cores += opt.core_step) {
    for (double m = opt.mem_lo.value(); m <= hi + 1e-9;
         m += opt.mem_step.value()) {
      const auto s = node.steady_state_packed(
          cores, Watts{budget.value() - m}, Watts{m});
      if (s.perf > best.perf) {
        best.perf = s.perf;
        best.best_cores = cores;
        best.cpu_cap = Watts{budget.value() - m};
        best.mem_cap = Watts{m};
      }
      if (cores == total) {
        best.perf_all_cores = std::max(best.perf_all_cores, s.perf);
      }
    }
  }
  return best;
}

}  // namespace pbc::core
