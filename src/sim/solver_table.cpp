#include "sim/solver_table.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "sim/simd.hpp"

namespace pbc::sim {

void ResponseCurveBatch::max_index_within(
    std::span<const double> thresholds,
    std::span<std::int32_t> out) const noexcept {
  assert(out.size() == thresholds.size());
  if (curve_->monotone()) {
    simd::batch_max_index_within(power_, thresholds, out);
  } else {
    // Non-monotone fallback: the exact sorted-order + prefix-max query,
    // batched — count over the sorted lane, then gather the answer from
    // the prefix-max lane. Bit-identical to the scalar query per lane.
    simd::batch_max_index_prefix(curve_->sorted_powers(),
                                 curve_->prefix_max(), thresholds, out);
  }
#ifndef NDEBUG
  for (std::size_t j = 0; j < thresholds.size(); ++j) {
    assert(out[j] == curve_->max_index_within(thresholds[j]));
  }
#endif
}

ResponseCurve::ResponseCurve(std::vector<double> power)
    : power_(std::move(power)) {
  for (std::size_t i = 1; i < power_.size(); ++i) {
    if (power_[i] < power_[i - 1]) {
      monotone_ = false;
      break;
    }
  }
  if (!monotone_) {
    order_.resize(power_.size());
    std::iota(order_.begin(), order_.end(), 0);
    std::stable_sort(order_.begin(), order_.end(),
                     [&](std::int32_t a, std::int32_t b) {
                       return power_[static_cast<std::size_t>(a)] <
                              power_[static_cast<std::size_t>(b)];
                     });
    sorted_power_.reserve(order_.size());
    prefix_max_.reserve(order_.size());
    std::int32_t running = -1;
    for (const std::int32_t idx : order_) {
      sorted_power_.push_back(power_[static_cast<std::size_t>(idx)]);
      running = std::max(running, idx);
      prefix_max_.push_back(running);
    }
  }
}

int ResponseCurve::linear_walk(double threshold) const noexcept {
  for (std::size_t i = power_.size(); i-- > 0;) {
    if (power_[i] <= threshold) return static_cast<int>(i);
  }
  return -1;
}

int ResponseCurve::max_index_within(double threshold) const noexcept {
  int result;
  if (monotone_) {
    // Bisect for the first index whose power exceeds the threshold; the
    // answer is the index before it. Ties are harmless: the predicate
    // "power <= threshold" is downward closed on a non-decreasing curve.
    std::size_t lo = 0;
    std::size_t hi = power_.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (power_[mid] <= threshold) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    result = static_cast<int>(lo) - 1;
  } else {
    const auto it = std::upper_bound(sorted_power_.begin(),
                                     sorted_power_.end(), threshold);
    result = it == sorted_power_.begin()
                 ? -1
                 : prefix_max_[static_cast<std::size_t>(
                       it - sorted_power_.begin() - 1)];
  }
  assert(result == linear_walk(threshold));
  return result;
}

int ResponseCurve::max_index_within(double threshold,
                                    int hint) const noexcept {
  const std::size_t n = power_.size();
  if (!monotone_ || hint < 0 || static_cast<std::size_t>(hint) >= n) {
    return max_index_within(threshold);
  }
  int result;
  if (power_[static_cast<std::size_t>(hint)] <= threshold) {
    // Boundary is at or above the hint: gallop upward to bracket it.
    std::size_t lo = static_cast<std::size_t>(hint);  // satisfied
    std::size_t step = 1;
    std::size_t hi = lo + 1;
    while (hi < n && power_[hi] <= threshold) {
      lo = hi;
      step *= 2;
      hi = lo + step;
    }
    hi = std::min(hi, n);  // power_[hi] > threshold, or hi == n
    while (lo + 1 < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (power_[mid] <= threshold) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    result = static_cast<int>(lo);
  } else {
    // Boundary is below the hint: gallop downward.
    std::size_t hi = static_cast<std::size_t>(hint);  // exceeds threshold
    std::size_t step = 1;
    std::size_t lo = 0;
    bool found = false;
    while (hi > 0) {
      const std::size_t probe = hi >= step ? hi - step : 0;
      if (power_[probe] <= threshold) {
        lo = probe;
        found = true;
        break;
      }
      hi = probe;
      step *= 2;
    }
    if (!found) {
      result = -1;
    } else {
      while (lo + 1 < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (power_[mid] <= threshold) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      result = static_cast<int>(lo);
    }
  }
  assert(result == linear_walk(threshold));
  return result;
}

CpuOpTable::CpuOpTable(std::size_t ladder_states,
                       std::vector<double> level_bw, const Sampler& sample)
    : states_(ladder_states), level_bw_(std::move(level_bw)) {
  const std::size_t levels = level_bw_.size();
  cells_.reserve((states_ + 1) * levels);
  for (std::size_t s = 0; s <= states_; ++s) {
    for (std::size_t l = 0; l < levels; ++l) {
      cells_.push_back(sample(s, l));
    }
  }
  proc_curves_.reserve(levels);
  for (std::size_t l = 0; l < levels; ++l) {
    std::vector<double> powers(states_);
    for (std::size_t s = 0; s < states_; ++s) {
      powers[s] = this->sample(s, l).proc_power.value();
    }
    proc_curves_.emplace_back(std::move(powers));
    fully_monotone_ &= proc_curves_.back().monotone();
  }
  mem_curves_.reserve(states_ + 1);
  for (std::size_t s = 0; s <= states_; ++s) {
    std::vector<double> powers(levels);
    for (std::size_t l = 0; l < levels; ++l) {
      powers[l] = this->sample(s, l).mem_power.value();
    }
    mem_curves_.emplace_back(std::move(powers));
    fully_monotone_ &= mem_curves_.back().monotone();
  }
  // Pack the SoA lanes the batch kernels stream over: straight copies of
  // the curve values, so the batched compares see bit-identical doubles.
  proc_power_soa_.reserve(levels * states_);
  for (const ResponseCurve& c : proc_curves_) {
    proc_power_soa_.insert(proc_power_soa_.end(), c.powers().begin(),
                           c.powers().end());
  }
  mem_power_soa_.reserve((states_ + 1) * levels);
  for (const ResponseCurve& c : mem_curves_) {
    mem_power_soa_.insert(mem_power_soa_.end(), c.powers().begin(),
                          c.powers().end());
  }
  perf_soa_.reserve((states_ + 1) * levels);
  for (std::size_t s = 0; s <= states_; ++s) {
    for (std::size_t l = 0; l < levels; ++l) {
      perf_soa_.push_back(this->sample(s, l).perf);
    }
  }
}

int CpuOpTable::proc_response(double threshold, std::size_t level,
                              int hint) const noexcept {
  return proc_curves_[level].max_index_within(threshold, hint);
}

int CpuOpTable::mem_response(double threshold, std::size_t state,
                             int hint) const noexcept {
  return mem_curves_[state].max_index_within(threshold, hint);
}

GpuOpTable::GpuOpTable(std::size_t sm_steps, std::size_t mem_clocks,
                       const Sampler& sample, std::vector<Watts> est_mem)
    : steps_(sm_steps), est_mem_(std::move(est_mem)) {
  assert(est_mem_.size() == mem_clocks);
  cells_.reserve(steps_ * mem_clocks);
  for (std::size_t s = 0; s < steps_; ++s) {
    for (std::size_t c = 0; c < mem_clocks; ++c) {
      cells_.push_back(sample(s, c));
    }
  }
  total_curves_.reserve(mem_clocks);
  sm_curves_.reserve(mem_clocks);
  for (std::size_t c = 0; c < mem_clocks; ++c) {
    std::vector<double> total(steps_);
    std::vector<double> sm(steps_);
    for (std::size_t s = 0; s < steps_; ++s) {
      total[s] = this->sample(s, c).total_power().value();
      sm[s] = this->sample(s, c).proc_power.value();
    }
    total_curves_.emplace_back(std::move(total));
    sm_curves_.emplace_back(std::move(sm));
    fully_monotone_ &= total_curves_.back().monotone();
    fully_monotone_ &= sm_curves_.back().monotone();
  }
  total_power_soa_.reserve(mem_clocks * steps_);
  sm_power_soa_.reserve(mem_clocks * steps_);
  perf_soa_.reserve(mem_clocks * steps_);
  for (std::size_t c = 0; c < mem_clocks; ++c) {
    total_power_soa_.insert(total_power_soa_.end(),
                            total_curves_[c].powers().begin(),
                            total_curves_[c].powers().end());
    sm_power_soa_.insert(sm_power_soa_.end(), sm_curves_[c].powers().begin(),
                         sm_curves_[c].powers().end());
    for (std::size_t s = 0; s < steps_; ++s) {
      perf_soa_.push_back(this->sample(s, c).perf);
    }
  }
}

int GpuOpTable::board_response(double threshold, std::size_t clock,
                               int hint) const noexcept {
  return total_curves_[clock].max_index_within(threshold, hint);
}

int GpuOpTable::sm_response(double threshold, std::size_t clock,
                            int hint) const noexcept {
  return sm_curves_[clock].max_index_within(threshold, hint);
}

}  // namespace pbc::sim
