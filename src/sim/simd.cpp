#include "sim/simd.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdlib>
#include <cstring>

namespace pbc::sim::simd {

namespace detail {

void batch_max_index_generic(const double* power, std::size_t n,
                             const double* thr, std::size_t m,
                             std::int32_t* out) noexcept {
  // Scalar bisection per threshold — the exact logic of the monotone
  // branch of ResponseCurve::max_index_within, so the generic tier is
  // bit-identical to the scalar oracle by construction.
  for (std::size_t j = 0; j < m; ++j) {
    const double t = thr[j];
    std::size_t lo = 0;
    std::size_t hi = n;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (power[mid] <= t) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    out[j] = static_cast<std::int32_t>(lo) - 1;
  }
}

void batch_max_index_prefix_generic(const double* sorted_power,
                                    const std::int32_t* prefix_max,
                                    std::size_t n, const double* thr,
                                    std::size_t m, std::int32_t* out) noexcept {
  // Scalar upper-bound walk + prefix-max lookup — the exact logic of the
  // non-monotone branch of ResponseCurve::max_index_within.
  for (std::size_t j = 0; j < m; ++j) {
    const double t = thr[j];
    std::size_t lo = 0;
    std::size_t hi = n;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (sorted_power[mid] <= t) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    out[j] = lo == 0 ? -1 : prefix_max[lo - 1];
  }
}

void batch_max_index_indexed_generic(const double* power, std::size_t n,
                                     const double* thr_base,
                                     const std::int32_t* idx, std::size_t m,
                                     std::int32_t* out_base) noexcept {
  for (std::size_t j = 0; j < m; ++j) {
    const auto cell = static_cast<std::size_t>(idx[j]);
    const double t = thr_base[cell];
    std::size_t lo = 0;
    std::size_t hi = n;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (power[mid] <= t) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    out_base[cell] = static_cast<std::int32_t>(lo) - 1;
  }
}

std::size_t batch_confirm_generic(const double* soa, std::size_t stride,
                                  const std::int32_t* key,
                                  const std::int32_t* val, const double* thr,
                                  std::size_t n, const std::int32_t* fallback,
                                  std::int32_t sleep_state,
                                  std::int32_t* unconf) noexcept {
  // Case analysis over the value a monotone max-index query can map to
  // after the caller's fallback rule. With row monotone non-decreasing:
  //   v == sleep_state (proc only): the rescan must return -1 and the
  //     fallback must be sleep — true iff row[0] > thr.
  //   v == 0 with a zero fallback: rescan returned 0 or -1 — true iff
  //     row[1] > thr (stride >= 2 here; the degenerate stride <= 1 case
  //     is handled separately below).
  //   v == stride - 1 (top): true iff row[v] <= thr.
  //   interior: true iff row[v] <= thr && row[v + 1] > thr.
  // Each test is decided by at most two compares of the same stored
  // doubles a rescan would compare, so confirm <=> rescan returns v.
  std::size_t u = 0;
  if (stride <= 1) {
    // Degenerate one-entry rows: the rescan answer is 0 or the fallback.
    for (std::size_t i = 0; i < n; ++i) {
      const double a = soa[static_cast<std::size_t>(key[i]) * stride];
      const std::int32_t ans =
          a <= thr[i] ? 0 : (fallback != nullptr ? fallback[i] : 0);
      if (ans != val[i]) unconf[u++] = static_cast<std::int32_t>(i);
    }
    return u;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::int32_t v = val[i];
    const double* row = soa + static_cast<std::size_t>(key[i]) * stride;
    bool ok;
    if (fallback != nullptr && v == sleep_state) {
      ok = !(row[0] <= thr[i]);
    } else if (v == 0 && (fallback == nullptr || fallback[i] == 0)) {
      ok = row[1] > thr[i];
    } else if (static_cast<std::size_t>(v) >= stride - 1) {
      ok = row[static_cast<std::size_t>(v)] <= thr[i];
    } else {
      ok = row[static_cast<std::size_t>(v)] <= thr[i] &&
           row[static_cast<std::size_t>(v) + 1] > thr[i];
    }
    if (!ok) unconf[u++] = static_cast<std::int32_t>(i);
  }
  return u;
}

double lane_sum_generic(const double* x, std::size_t n) noexcept {
  // The generic tier mirrors the vector tiers' lane-split accumulation
  // (4 partial sums folded at the end) so every tier satisfies the same
  // documented ULP bound against a sequential sum — "generic" means
  // portable, not differently rounded.
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += x[i];
    s1 += x[i + 1];
    s2 += x[i + 2];
    s3 += x[i + 3];
  }
  double tail = 0.0;
  for (; i < n; ++i) tail += x[i];
  return ((s0 + s1) + (s2 + s3)) + tail;
}

}  // namespace detail

namespace {

using BatchMaxIndexFn = void (*)(const double*, std::size_t, const double*,
                                 std::size_t, std::int32_t*) noexcept;
using BatchMaxIndexPrefixFn = void (*)(const double*, const std::int32_t*,
                                       std::size_t, const double*, std::size_t,
                                       std::int32_t*) noexcept;
using BatchMaxIndexIndexedFn = void (*)(const double*, std::size_t,
                                        const double*, const std::int32_t*,
                                        std::size_t, std::int32_t*) noexcept;
using BatchConfirmFn = std::size_t (*)(const double*, std::size_t,
                                       const std::int32_t*,
                                       const std::int32_t*, const double*,
                                       std::size_t, const std::int32_t*,
                                       std::int32_t, std::int32_t*) noexcept;
using LaneSumFn = double (*)(const double*, std::size_t) noexcept;

struct KernelSet {
  SimdTier tier = SimdTier::kGeneric;
  BatchMaxIndexFn batch_max_index = detail::batch_max_index_generic;
  BatchMaxIndexPrefixFn batch_max_index_prefix =
      detail::batch_max_index_prefix_generic;
  BatchMaxIndexIndexedFn batch_max_index_indexed =
      detail::batch_max_index_indexed_generic;
  BatchConfirmFn batch_confirm = detail::batch_confirm_generic;
  LaneSumFn lane_sum = detail::lane_sum_generic;
};

[[nodiscard]] KernelSet kernels_for(SimdTier tier) noexcept {
  KernelSet k;
  k.tier = SimdTier::kGeneric;
#if defined(PBC_SIMD_X86)
  if (tier >= SimdTier::kAvx2) {
    k.tier = SimdTier::kAvx2;
    k.batch_max_index = detail::batch_max_index_avx2;
    k.batch_max_index_prefix = detail::batch_max_index_prefix_avx2;
    k.batch_max_index_indexed = detail::batch_max_index_indexed_avx2;
    // The confirm predicate is two scalar compares per cell; the AVX2
    // tier keeps the (exact either way) generic evaluation rather than
    // growing the 256-bit ISA surface for a pass the 512-bit tier owns.
    k.lane_sum = detail::lane_sum_avx2;
  }
  if (tier >= SimdTier::kAvx512) {
    k.tier = SimdTier::kAvx512;
    k.batch_max_index = detail::batch_max_index_avx512;
    k.batch_max_index_prefix = detail::batch_max_index_prefix_avx512;
    k.batch_max_index_indexed = detail::batch_max_index_indexed_avx512;
    k.batch_confirm = detail::batch_confirm_avx512;
    k.lane_sum = detail::lane_sum_avx512;
  }
#else
  (void)tier;
#endif
  return k;
}

[[nodiscard]] SimdTier detect_max_tier() noexcept {
#if defined(PBC_SIMD_X86)
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512vl")) {
    return SimdTier::kAvx512;
  }
  if (__builtin_cpu_supports("avx2")) return SimdTier::kAvx2;
#endif
  return SimdTier::kGeneric;
}

[[nodiscard]] SimdTier env_clamp(SimdTier best) noexcept {
  const char* env = std::getenv("PBC_SIMD");
  if (env == nullptr || *env == '\0') return best;
  if (std::strcmp(env, "generic") == 0 || std::strcmp(env, "scalar") == 0) {
    return SimdTier::kGeneric;
  }
  if (std::strcmp(env, "avx2") == 0) {
    return std::min(best, SimdTier::kAvx2);
  }
  // Unknown values (including "avx512" and "native") keep the detected
  // best: the override can only lower the tier, never enable an
  // unsupported one.
  return best;
}

// The resolved dispatch table. `tier_override` holds the forced tier + 1
// (0 = no force) so force_simd_tier can be reset-free and lock-free.
std::atomic<int> g_forced{0};

struct Dispatch {
  SimdTier max_tier;
  KernelSet active;
  Dispatch() : max_tier(detect_max_tier()),
               active(kernels_for(env_clamp(max_tier))) {}
};

[[nodiscard]] Dispatch& dispatch() noexcept {
  static Dispatch d;
  return d;
}

[[nodiscard]] KernelSet active_kernels() noexcept {
  Dispatch& d = dispatch();
  const int forced = g_forced.load(std::memory_order_acquire);
  if (forced != 0) {
    return kernels_for(std::min(static_cast<SimdTier>(forced - 1),
                                d.max_tier));
  }
  return d.active;
}

}  // namespace

const char* to_string(SimdTier tier) noexcept {
  switch (tier) {
    case SimdTier::kGeneric:
      return "generic";
    case SimdTier::kAvx2:
      return "avx2";
    case SimdTier::kAvx512:
      return "avx512";
  }
  return "?";
}

SimdTier active_tier() noexcept { return active_kernels().tier; }

SimdTier max_supported_tier() noexcept { return dispatch().max_tier; }

void force_simd_tier(SimdTier tier) noexcept {
  g_forced.store(static_cast<int>(tier) + 1, std::memory_order_release);
}

void reset_simd_tier() noexcept {
  g_forced.store(0, std::memory_order_release);
}

void batch_max_index_within(std::span<const double> power,
                            std::span<const double> thresholds,
                            std::span<std::int32_t> out) noexcept {
  assert(out.size() == thresholds.size());
  active_kernels().batch_max_index(power.data(), power.size(),
                                   thresholds.data(), thresholds.size(),
                                   out.data());
}

void batch_max_index_prefix(std::span<const double> sorted_power,
                            std::span<const std::int32_t> prefix_max,
                            std::span<const double> thresholds,
                            std::span<std::int32_t> out) noexcept {
  assert(prefix_max.size() == sorted_power.size());
  assert(out.size() == thresholds.size());
  active_kernels().batch_max_index_prefix(sorted_power.data(),
                                          prefix_max.data(),
                                          sorted_power.size(),
                                          thresholds.data(),
                                          thresholds.size(), out.data());
}

void batch_max_index_indexed(std::span<const double> power,
                             const double* thr_base,
                             std::span<const std::int32_t> idx,
                             std::int32_t* out_base) noexcept {
  active_kernels().batch_max_index_indexed(power.data(), power.size(),
                                           thr_base, idx.data(), idx.size(),
                                           out_base);
}

std::size_t batch_confirm(const double* soa, std::size_t stride,
                          const std::int32_t* key, const std::int32_t* val,
                          const double* thr, std::size_t n,
                          const std::int32_t* fallback,
                          std::int32_t sleep_state,
                          std::int32_t* unconf) noexcept {
  return active_kernels().batch_confirm(soa, stride, key, val, thr, n,
                                        fallback, sleep_state, unconf);
}

double lane_sum(std::span<const double> x) noexcept {
  return active_kernels().lane_sum(x.data(), x.size());
}

}  // namespace pbc::sim::simd
