#include "sim/simd.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdlib>
#include <cstring>

namespace pbc::sim::simd {

namespace detail {

void batch_max_index_generic(const double* power, std::size_t n,
                             const double* thr, std::size_t m,
                             std::int32_t* out) noexcept {
  // Scalar bisection per threshold — the exact logic of the monotone
  // branch of ResponseCurve::max_index_within, so the generic tier is
  // bit-identical to the scalar oracle by construction.
  for (std::size_t j = 0; j < m; ++j) {
    const double t = thr[j];
    std::size_t lo = 0;
    std::size_t hi = n;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (power[mid] <= t) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    out[j] = static_cast<std::int32_t>(lo) - 1;
  }
}

double lane_sum_generic(const double* x, std::size_t n) noexcept {
  // The generic tier mirrors the vector tiers' lane-split accumulation
  // (4 partial sums folded at the end) so every tier satisfies the same
  // documented ULP bound against a sequential sum — "generic" means
  // portable, not differently rounded.
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += x[i];
    s1 += x[i + 1];
    s2 += x[i + 2];
    s3 += x[i + 3];
  }
  double tail = 0.0;
  for (; i < n; ++i) tail += x[i];
  return ((s0 + s1) + (s2 + s3)) + tail;
}

}  // namespace detail

namespace {

using BatchMaxIndexFn = void (*)(const double*, std::size_t, const double*,
                                 std::size_t, std::int32_t*) noexcept;
using LaneSumFn = double (*)(const double*, std::size_t) noexcept;

struct KernelSet {
  SimdTier tier = SimdTier::kGeneric;
  BatchMaxIndexFn batch_max_index = detail::batch_max_index_generic;
  LaneSumFn lane_sum = detail::lane_sum_generic;
};

[[nodiscard]] KernelSet kernels_for(SimdTier tier) noexcept {
  KernelSet k;
  k.tier = SimdTier::kGeneric;
#if defined(PBC_SIMD_X86)
  if (tier >= SimdTier::kAvx2) {
    k.tier = SimdTier::kAvx2;
    k.batch_max_index = detail::batch_max_index_avx2;
    k.lane_sum = detail::lane_sum_avx2;
  }
  if (tier >= SimdTier::kAvx512) {
    k.tier = SimdTier::kAvx512;
    k.batch_max_index = detail::batch_max_index_avx512;
    k.lane_sum = detail::lane_sum_avx512;
  }
#else
  (void)tier;
#endif
  return k;
}

[[nodiscard]] SimdTier detect_max_tier() noexcept {
#if defined(PBC_SIMD_X86)
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512vl")) {
    return SimdTier::kAvx512;
  }
  if (__builtin_cpu_supports("avx2")) return SimdTier::kAvx2;
#endif
  return SimdTier::kGeneric;
}

[[nodiscard]] SimdTier env_clamp(SimdTier best) noexcept {
  const char* env = std::getenv("PBC_SIMD");
  if (env == nullptr || *env == '\0') return best;
  if (std::strcmp(env, "generic") == 0 || std::strcmp(env, "scalar") == 0) {
    return SimdTier::kGeneric;
  }
  if (std::strcmp(env, "avx2") == 0) {
    return std::min(best, SimdTier::kAvx2);
  }
  // Unknown values (including "avx512" and "native") keep the detected
  // best: the override can only lower the tier, never enable an
  // unsupported one.
  return best;
}

// The resolved dispatch table. `tier_override` holds the forced tier + 1
// (0 = no force) so force_simd_tier can be reset-free and lock-free.
std::atomic<int> g_forced{0};

struct Dispatch {
  SimdTier max_tier;
  KernelSet active;
  Dispatch() : max_tier(detect_max_tier()),
               active(kernels_for(env_clamp(max_tier))) {}
};

[[nodiscard]] Dispatch& dispatch() noexcept {
  static Dispatch d;
  return d;
}

[[nodiscard]] KernelSet active_kernels() noexcept {
  Dispatch& d = dispatch();
  const int forced = g_forced.load(std::memory_order_acquire);
  if (forced != 0) {
    return kernels_for(std::min(static_cast<SimdTier>(forced - 1),
                                d.max_tier));
  }
  return d.active;
}

}  // namespace

const char* to_string(SimdTier tier) noexcept {
  switch (tier) {
    case SimdTier::kGeneric:
      return "generic";
    case SimdTier::kAvx2:
      return "avx2";
    case SimdTier::kAvx512:
      return "avx512";
  }
  return "?";
}

SimdTier active_tier() noexcept { return active_kernels().tier; }

SimdTier max_supported_tier() noexcept { return dispatch().max_tier; }

void force_simd_tier(SimdTier tier) noexcept {
  g_forced.store(static_cast<int>(tier) + 1, std::memory_order_release);
}

void reset_simd_tier() noexcept {
  g_forced.store(0, std::memory_order_release);
}

void batch_max_index_within(std::span<const double> power,
                            std::span<const double> thresholds,
                            std::span<std::int32_t> out) noexcept {
  assert(out.size() == thresholds.size());
  active_kernels().batch_max_index(power.data(), power.size(),
                                   thresholds.data(), thresholds.size(),
                                   out.data());
}

double lane_sum(std::span<const double> x) noexcept {
  return active_kernels().lane_sum(x.data(), x.size());
}

}  // namespace pbc::sim::simd
