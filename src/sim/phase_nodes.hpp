// Shared prepared phase-node sets for trace-driven evaluation.
//
// Trace replay and dynamic shifting evaluate one phase at a time: every
// trace segment runs a single-phase variant of the workload to its
// governor steady state. Historically each replay_trace /
// replay_with_shifting call rebuilt those single-phase CpuNodeSim
// instances — and their operating-point tables — from scratch. A
// PhaseNodeSet hoists that work into an immutable object built once per
// (machine, workload): the full-workload node plus one table-prepared
// single-phase node per phase, shared across replays, shifting runs,
// batched grids, and repeated svc queries. It is the prepared-node
// pattern of the cluster engine (docs/cluster.md) applied to the time
// dimension (docs/dynamic.md).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "sim/cpu_node.hpp"
#include "sim/solve_arena.hpp"
#include "workload/workload.hpp"

namespace pbc::sim {

/// The single-phase variant of `wl` that trace evaluation runs for phase
/// `index`: one phase at full weight, named "workload/phase". Both the
/// fast and the reference replay paths construct exactly this workload,
/// so their solves see bit-identical operands.
[[nodiscard]] workload::Workload single_phase_workload(
    const workload::Workload& wl, std::size_t index);

/// Immutable set of prepared single-phase simulators for one
/// (machine, workload), plus the prepared full-workload node (used for
/// critical-power profiling by the shifting engine). All operating-point
/// tables are built eagerly at construction, so concurrent users never
/// contend on the build lock.
class PhaseNodeSet {
 public:
  PhaseNodeSet(hw::CpuMachine machine, workload::Workload wl);

  /// Reuses an already prepared full-workload node (e.g. the svc
  /// engine's sim-node cache entry) and builds only the per-phase nodes.
  explicit PhaseNodeSet(PreparedCpuNode full);

  [[nodiscard]] const CpuNodeSim& full() const noexcept { return *full_; }
  [[nodiscard]] const hw::CpuMachine& machine() const noexcept {
    return full_->machine();
  }
  [[nodiscard]] const workload::Workload& wl() const noexcept {
    return full_->wl();
  }
  [[nodiscard]] std::size_t phase_count() const noexcept {
    return phases_.size();
  }
  [[nodiscard]] const CpuNodeSim& phase(std::size_t i) const noexcept {
    return *phases_[i];
  }

 private:
  void build_phase_nodes();

  PreparedCpuNode full_;
  std::vector<PreparedCpuNode> phases_;
};

/// Lazy per-phase solve memo for one (PhaseNodeSet, cpu_cap, mem_cap),
/// backed by arena scratch instead of a per-call
/// vector<optional<AllocationSample>> — the allocation hotspot of the old
/// replay loop. Each distinct phase is solved at most once; one SolveHint
/// carries the previous fixed point across phases (hints can only speed
/// the bisections up, never change the answer). Must not outlive the
/// arena scope it was carved from.
class PhaseSolveMemo {
 public:
  PhaseSolveMemo(const PhaseNodeSet& nodes, Watts cpu_cap, Watts mem_cap,
                 SolveArena& arena)
      : nodes_(&nodes),
        cpu_cap_(cpu_cap),
        mem_cap_(mem_cap),
        memo_(arena.get<AllocationSample>(nodes.phase_count())),
        solved_(arena.get<std::uint8_t>(nodes.phase_count())) {
    std::fill(solved_.begin(), solved_.end(), std::uint8_t{0});
  }

  /// The steady state of phase `p` under the memo's caps; solves on first
  /// use, then returns the cached sample.
  const AllocationSample& sample(std::size_t p) {
    if (solved_[p] == 0) {
      memo_[p] = nodes_->phase(p).steady_state_hinted(cpu_cap_, mem_cap_,
                                                      &hint_);
      solved_[p] = 1;
    }
    return memo_[p];
  }

 private:
  const PhaseNodeSet* nodes_;
  Watts cpu_cap_;
  Watts mem_cap_;
  std::span<AllocationSample> memo_;
  std::span<std::uint8_t> solved_;
  SolveHint hint_;
};

/// Shared handle to an immutable phase-node set, mirroring
/// PreparedCpuNode: one set per (machine, workload) per scope, however
/// many traces, budgets, or queries touch it.
using PreparedPhaseNodes = std::shared_ptr<const PhaseNodeSet>;

[[nodiscard]] PreparedPhaseNodes make_prepared_phase_nodes(
    hw::CpuMachine machine, workload::Workload wl);

}  // namespace pbc::sim
