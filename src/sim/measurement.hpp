// Measurement records shared by the simulators and the analysis layer.
//
// An AllocationSample is one row of the paper's sweep data: the power
// allocation that was set (caps), what the components actually consumed,
// the achieved performance, and governor telemetry explaining *how* the
// caps were met (which power-saving mechanism was engaged) — the
// information §3.3 uses to explain the scenario categories.
#pragma once

#include <cstddef>

#include "util/units.hpp"

namespace pbc::sim {

/// Which solver implementation a sweep/driver should run. Both produce
/// bit-identical samples; kReference re-evaluates the workload model along
/// every governor walk and exists for differential coverage and as the
/// perf-gate baseline.
enum class SolverPath {
  kFast,
  kReference,
};

/// Which mechanism the processor-side governor is using to honour its cap.
enum class ProcRegion {
  kPState,     ///< DVFS only (possibly at the top state)
  kTState,     ///< duty-cycle clock throttling below the lowest P-state
  kSleepFloor, ///< cap below the hardware floor; floor power drawn
};

[[nodiscard]] constexpr const char* to_string(ProcRegion r) noexcept {
  switch (r) {
    case ProcRegion::kPState:
      return "p-state";
    case ProcRegion::kTState:
      return "t-state";
    case ProcRegion::kSleepFloor:
      return "sleep/floor";
  }
  return "?";
}

/// Which mechanism the memory-side governor is using.
enum class MemRegion {
  kUnthrottled, ///< full bandwidth available
  kThrottled,   ///< bandwidth throttling engaged
  kFloor,       ///< cap below the hardware floor; floor power drawn
};

[[nodiscard]] constexpr const char* to_string(MemRegion r) noexcept {
  switch (r) {
    case MemRegion::kUnthrottled:
      return "unthrottled";
    case MemRegion::kThrottled:
      return "throttled";
    case MemRegion::kFloor:
      return "floor";
  }
  return "?";
}

/// One measured (allocation → behaviour) point.
///
/// For GPU machines, `proc_*` covers the SM domain plus board overhead and
/// `mem_*` the global-memory domain; `proc_cap`/`mem_cap` are the implied
/// allocation (board cap minus estimated memory power, and the estimated
/// memory power at the chosen clock, respectively).
struct AllocationSample {
  // Allocation (what the coordinator set).
  Watts proc_cap{0.0};
  Watts mem_cap{0.0};

  // Actual consumption.
  Watts proc_power{0.0};
  Watts mem_power{0.0};

  // Achieved performance in the workload's display metric.
  double perf = 0.0;
  double rate_gunits = 0.0;

  // Did the hardware honour each cap? (floors can force violations —
  // the paper's scenarios V/VI).
  bool proc_cap_respected = true;
  bool mem_cap_respected = true;

  // Governor telemetry.
  ProcRegion proc_region = ProcRegion::kPState;
  MemRegion mem_region = MemRegion::kUnthrottled;
  std::size_t pstate_index = 0;   ///< CPU machines
  double duty = 1.0;              ///< CPU machines
  std::size_t sm_step = 0;        ///< GPU machines
  std::size_t mem_clock_index = 0;///< GPU machines

  // Workload-side telemetry.
  double compute_util = 0.0;
  double mem_util = 0.0;
  GBps avail_bw{0.0};
  GBps achieved_bw{0.0};

  [[nodiscard]] Watts total_power() const noexcept {
    return proc_power + mem_power;
  }
  [[nodiscard]] Watts total_cap() const noexcept {
    return proc_cap + mem_cap;
  }
  /// Performance per watt actually consumed.
  [[nodiscard]] double efficiency() const noexcept {
    const double p = total_power().value();
    return p > 0.0 ? perf / p : 0.0;
  }

  /// Exact field-wise equality — the contract the fast solver path is held
  /// to against the reference path (bit-identical, not approximately equal).
  [[nodiscard]] bool operator==(const AllocationSample&) const noexcept =
      default;
};

}  // namespace pbc::sim
