// Internal observability hooks for the simulators' cold paths.
//
// Table and phase-node builds are the expensive, rare events the caches
// exist to amortize, so these helpers resolve their metrics in the
// process-wide registry on every call — a mutex-guarded lookup is noise
// next to the build itself, and keeping registration here means the
// build sites stay one line. Hot-path simulator code must not call these.
#pragma once

#include <chrono>
#include <cstdint>

#include "obs/metrics.hpp"

namespace pbc::sim::detail {

[[nodiscard]] inline double elapsed_us(
    std::chrono::steady_clock::time_point t0) {
  const auto dt = std::chrono::steady_clock::now() - t0;
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                 .count()) *
         1e-3;
}

/// Records one operating-point table build (component: "cpu" or "gpu").
inline void record_table_build(const char* component,
                               std::chrono::steady_clock::time_point t0) {
  obs::MetricsRegistry& reg = obs::global_registry();
  reg.counter("pbc_sim_table_builds_total",
              "Operating-point tables built on demand",
              {{"component", component}})
      .add(1);
  reg.histogram("pbc_sim_table_build_us",
                "Operating-point table build time, microseconds",
                obs::default_latency_bounds_us(), {{"component", component}})
      .observe(elapsed_us(t0));
}

/// Counts blocked (budget x split) sweep tiles — one batched relaxation
/// per tile. Tiles fire per block inside sweep drivers, so unlike the
/// build hooks above the handle is resolved once and cached: Counter::add
/// is a relaxed atomic, safe at tile rate.
inline void add_blocked_sweep_tiles(std::uint64_t n) {
  static obs::Counter& tiles = obs::global_registry().counter(
      "pbc_sim_blocked_sweep_tiles_total",
      "Blocked (budget x split) sweep tiles relaxed");
  tiles.add(n);
}

/// Records one performance-frontier build (component: "cpu" or "gpu").
/// A warm frontier build over the blocked engine takes tens of
/// microseconds, so unlike the build hooks above the labelled handles
/// are resolved once and cached — registry references are stable, and
/// Counter::add / Histogram::observe are relaxed atomics.
inline void record_frontier_build(const char* component,
                                  std::chrono::steady_clock::time_point t0) {
  struct Handles {
    obs::Counter& builds;
    obs::Histogram& build_us;
  };
  static constexpr auto handles_for = [](const char* c) -> Handles {
    obs::MetricsRegistry& reg = obs::global_registry();
    return {reg.counter("pbc_sim_frontier_builds_total",
                        "Performance frontiers built", {{"component", c}}),
            reg.histogram("pbc_sim_frontier_build_us",
                          "Performance-frontier build time, microseconds",
                          obs::default_latency_bounds_us(),
                          {{"component", c}})};
  };
  static Handles cpu = handles_for("cpu");
  static Handles gpu = handles_for("gpu");
  Handles& h = component[0] == 'g' ? gpu : cpu;
  h.builds.add(1);
  h.build_us.observe(elapsed_us(t0));
}

/// Records one PhaseNodeSet build (per-phase prepared nodes).
inline void record_phase_nodes_build(
    std::chrono::steady_clock::time_point t0) {
  obs::MetricsRegistry& reg = obs::global_registry();
  reg.counter("pbc_sim_phase_sets_built_total",
              "Phase-node sets built on demand")
      .add(1);
  reg.histogram("pbc_sim_phase_nodes_build_us",
                "Phase-node set build time, microseconds",
                obs::default_latency_bounds_us())
      .observe(elapsed_us(t0));
}

}  // namespace pbc::sim::detail
