#include "sim/solve_arena.hpp"

namespace pbc::sim {

SolveArena& thread_solve_arena() noexcept {
  thread_local SolveArena arena;
  return arena;
}

}  // namespace pbc::sim
