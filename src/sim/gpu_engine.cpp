#include "sim/gpu_engine.hpp"

#include <algorithm>
#include <cassert>

#include "rapl/feedback.hpp"
#include "util/stats.hpp"

namespace pbc::sim {

GpuBoardEngine::GpuBoardEngine(hw::GpuMachine machine, workload::Workload wl,
                               GpuEngineConfig config)
    : machine_(std::move(machine)),
      wl_(std::move(wl)),
      gpu_(machine_.gpu),
      config_(config) {
  assert(wl_.validate().ok());
  assert(wl_.domain == workload::Domain::kGpu);
}

GpuTimedRun GpuBoardEngine::run(std::size_t mem_clock_index,
                                Watts board_cap) const {
  const auto& spec = machine_.gpu;
  const Watts cap = clamp(board_cap, spec.board_min_cap, spec.board_max_cap);
  const std::size_t mem_idx =
      std::min(mem_clock_index, gpu_.mem_clock_count() - 1);

  const double dt = config_.tick.value();
  const auto total_ticks =
      static_cast<std::size_t>(config_.duration.value() / dt);
  const auto warmup_ticks =
      static_cast<std::size_t>(config_.warmup.value() / dt);

  std::size_t sm_step = gpu_.sm_step_count() - 1;
  rapl::FeedbackController ctrl(config_.tick, config_.window);

  // Work cycles through phases by weight, as in the CPU engine.
  std::size_t phase_idx = 0;
  double phase_remaining = wl_.phases.front().weight;

  GpuTimedRun out;
  OnlineStats board_power;
  OnlineStats sm_power;
  OnlineStats mem_power;
  OnlineStats util;
  OnlineStats bw;
  double work_done = 0.0;
  std::size_t over = 0;
  std::size_t last_step = sm_step;

  // Scale so the phase list cycles ~10x/second at full speed.
  workload::PhaseOperands probe;
  probe.compute_capacity = gpu_.compute_capacity(sm_step);
  probe.avail_bw = gpu_.mem_bandwidth(mem_idx);
  probe.peak_bw = gpu_.mem_bandwidth(gpu_.mem_clock_count() - 1);
  probe.rel_clock = 1.0;
  const double free_rate = workload::evaluate(wl_, probe).rate_gunits;
  double weight_sum = 0.0;
  for (const auto& p : wl_.phases) weight_sum += p.weight;
  const double work_scale =
      free_rate > 0.0 ? (free_rate * 0.1) / weight_sum : 1.0;

  for (std::size_t t = 0; t < total_ticks; ++t) {
    workload::PhaseOperands operands;
    operands.compute_capacity = gpu_.compute_capacity(sm_step);
    operands.avail_bw = gpu_.mem_bandwidth(mem_idx);
    operands.peak_bw = gpu_.mem_bandwidth(gpu_.mem_clock_count() - 1);
    operands.rel_clock = gpu_.sm_clock_mhz(sm_step) / spec.sm_max_mhz;

    const workload::PhaseResult res =
        workload::evaluate_phase(wl_.phases[phase_idx], operands);
    const Watts p_sm = gpu_.sm_power(sm_step, res.activity_eff);
    const Watts p_mem = gpu_.mem_power(mem_idx, res.achieved_bw);
    const Watts p_board = p_sm + p_mem + spec.other_power;

    ctrl.observe(p_board);
    if (t >= warmup_ticks) {
      board_power.add(p_board.value());
      sm_power.add(p_sm.value() + spec.other_power.value());
      mem_power.add(p_mem.value());
      util.add(res.compute_util);
      bw.add(res.achieved_bw.value());
      work_done += res.rate_gunits * dt;
      if (ctrl.average().value() > cap.value() + 1.0) ++over;
      if (sm_step != last_step) {
        ++out.sm_transitions;
        last_step = sm_step;
      }
    }

    // Advance phase work.
    phase_remaining -= res.rate_gunits * dt / work_scale;
    while (phase_remaining <= 0.0) {
      phase_idx = (phase_idx + 1) % wl_.phases.size();
      phase_remaining += wl_.phases[phase_idx].weight;
    }

    // Board capper control step.
    const Watts predicted_up =
        sm_step + 1 < gpu_.sm_step_count()
            ? gpu_.sm_power(sm_step + 1, res.activity_eff) + p_mem +
                  spec.other_power
            : Watts{1e12};
    switch (ctrl.decide(cap, predicted_up)) {
      case rapl::StepDecision::kDown:
        if (sm_step > 0) --sm_step;
        break;
      case rapl::StepDecision::kUp:
        ++sm_step;
        break;
      case rapl::StepDecision::kHold:
        break;
    }
  }

  const double measured =
      static_cast<double>(total_ticks - warmup_ticks) * dt;
  AllocationSample& agg = out.aggregate;
  agg.mem_clock_index = mem_idx;
  agg.sm_step = sm_step;
  agg.proc_power = Watts{sm_power.mean()};
  agg.mem_power = Watts{mem_power.mean()};
  agg.mem_cap = gpu_.estimated_mem_power(mem_idx);
  agg.proc_cap = Watts{std::max(cap.value() - agg.mem_cap.value(), 0.0)};
  agg.rate_gunits = measured > 0.0 ? work_done / measured : 0.0;
  agg.perf = agg.rate_gunits * wl_.metric_per_gunit;
  agg.compute_util = util.mean();
  agg.achieved_bw = GBps{bw.mean()};
  agg.proc_cap_respected = true;
  agg.mem_cap_respected = true;
  const double post = static_cast<double>(total_ticks - warmup_ticks);
  out.overshoot_frac = post > 0.0 ? static_cast<double>(over) / post : 0.0;
  return out;
}

}  // namespace pbc::sim
