// Reusable scratch for the batch solver kernels and grid sweeps.
//
// The batch entry points need a handful of transient arrays per call
// (thresholds, lane indices, grouped gather buffers, sample staging).
// Allocating them per call dominated small-grid solves, so callers keep
// one SolveArena per thread (typically `thread_local`) and the solver
// borrows spans from it:
//
//   * get<T>(n) hands out a span backed by a grow-only block. Blocks are
//     stable heap vectors behind unique_ptrs, so earlier spans stay valid
//     while later ones are carved — only Scope destruction recycles them.
//   * scope() marks the per-type pools and rewinds them when the Scope
//     dies, so nested entry points (a sweep calling the batch solver)
//     share one arena without clobbering each other's spans.
//
// After warm-up the arena performs zero allocations: blocks are reused
// and std::vector::resize never shrinks capacity. Spans are handed out
// value-uninitialized (whatever the previous use left behind); kernels
// must fully write before reading, and the reuse-across-calls
// determinism tests exist to keep that true. The arena is intentionally
// not thread-safe — one arena per thread, never shared.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "sim/measurement.hpp"
#include "sim/solver_table.hpp"

namespace pbc::sim {

class SolveArena {
  template <class T>
  struct Pool {
    std::vector<std::unique_ptr<std::vector<T>>> blocks;
    std::size_t next = 0;

    std::span<T> get(std::size_t n) {
      if (next == blocks.size()) {
        blocks.push_back(std::make_unique<std::vector<T>>());
      }
      std::vector<T>& b = *blocks[next++];
      if (b.size() < n) b.resize(n);
      return {b.data(), n};
    }
  };

 public:
  SolveArena() = default;
  SolveArena(const SolveArena&) = delete;
  SolveArena& operator=(const SolveArena&) = delete;

  /// Borrows an uninitialized span of n elements, valid until the
  /// enclosing Scope (or the arena) is destroyed.
  template <class T>
  [[nodiscard]] std::span<T> get(std::size_t n) {
    return pool<T>().get(n);
  }

  /// RAII rewind point: blocks carved after scope() are recycled when the
  /// Scope dies; spans carved before it stay valid.
  class Scope {
   public:
    explicit Scope(SolveArena& arena) noexcept
        : arena_(arena),
          doubles_(arena.doubles_.next),
          indices_(arena.indices_.next),
          bytes_(arena.bytes_.next),
          caps_(arena.caps_.next),
          samples_(arena.samples_.next) {}
    ~Scope() {
      arena_.doubles_.next = doubles_;
      arena_.indices_.next = indices_;
      arena_.bytes_.next = bytes_;
      arena_.caps_.next = caps_;
      arena_.samples_.next = samples_;
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    SolveArena& arena_;
    std::size_t doubles_, indices_, bytes_, caps_, samples_;
  };

  [[nodiscard]] Scope scope() noexcept { return Scope(*this); }

 private:
  template <class T>
  [[nodiscard]] Pool<T>& pool() noexcept {
    if constexpr (std::is_same_v<T, double>) {
      return doubles_;
    } else if constexpr (std::is_same_v<T, std::int32_t>) {
      return indices_;
    } else if constexpr (std::is_same_v<T, std::uint8_t>) {
      return bytes_;
    } else if constexpr (std::is_same_v<T, CapPair>) {
      return caps_;
    } else {
      static_assert(std::is_same_v<T, AllocationSample>,
                    "SolveArena: unsupported element type");
      return samples_;
    }
  }

  Pool<double> doubles_;
  Pool<std::int32_t> indices_;
  Pool<std::uint8_t> bytes_;
  Pool<CapPair> caps_;
  Pool<AllocationSample> samples_;
};

/// The per-thread arena the convenience wrappers (vector-returning batch
/// entry points, sweeps, replay memos) borrow from. Entry points must
/// carve inside an arena.scope() so nested use composes.
[[nodiscard]] SolveArena& thread_solve_arena() noexcept;

}  // namespace pbc::sim
