#include "sim/phase_nodes.hpp"

#include <chrono>
#include <utility>

#include "sim/instrumentation.hpp"

namespace pbc::sim {

workload::Workload single_phase_workload(const workload::Workload& wl,
                                         std::size_t index) {
  workload::Workload single = wl;
  single.name = wl.name + "/" + wl.phases[index].name;
  single.phases = {wl.phases[index]};
  single.phases[0].weight = 1.0;
  return single;
}

PhaseNodeSet::PhaseNodeSet(hw::CpuMachine machine, workload::Workload wl)
    : full_(make_prepared_cpu_node(std::move(machine), std::move(wl))) {
  build_phase_nodes();
}

PhaseNodeSet::PhaseNodeSet(PreparedCpuNode full) : full_(std::move(full)) {
  build_phase_nodes();
}

void PhaseNodeSet::build_phase_nodes() {
  const auto t0 = std::chrono::steady_clock::now();
  const auto& wl = full_->wl();
  phases_.reserve(wl.phases.size());
  for (std::size_t i = 0; i < wl.phases.size(); ++i) {
    phases_.push_back(make_prepared_cpu_node(full_->machine(),
                                             single_phase_workload(wl, i)));
  }
  detail::record_phase_nodes_build(t0);
}

PreparedPhaseNodes make_prepared_phase_nodes(hw::CpuMachine machine,
                                             workload::Workload wl) {
  return std::make_shared<const PhaseNodeSet>(std::move(machine),
                                              std::move(wl));
}

}  // namespace pbc::sim
