// Multi-tenant CPU node: several jobs share one package and one DRAM
// subsystem under common PKG/DRAM power caps.
//
// The paper's §8 defers "multi-task and multi-tenant systems" to future
// work; this module implements the natural extension of its model:
//  * cores are partitioned between tenants (space sharing);
//  * the package runs one common P/T-state (RAPL's PKG domain is package
//    wide), chosen as the shallowest state whose *total* power fits the
//    PKG cap;
//  * DRAM bandwidth is a shared resource: each tenant's demand is served
//    max-min fairly out of the throttle level's bandwidth, and the DRAM
//    cap constrains the sum of the tenants' energy-weighted traffic.
#pragma once

#include <vector>

#include "hw/machine.hpp"
#include "sim/measurement.hpp"
#include "workload/workload.hpp"

namespace pbc::sim {

/// One tenant: a workload pinned to a subset of the cores.
struct TenantConfig {
  workload::Workload wl;
  int cores = 0;
};

/// Per-tenant outcome.
struct TenantResult {
  double perf = 0.0;          ///< in the tenant's display metric
  double rate_gunits = 0.0;
  GBps granted_bw{0.0};       ///< max-min fair share
  GBps achieved_bw{0.0};
  double compute_util = 0.0;
};

/// Node-level outcome of a shared run.
struct SharedSample {
  std::vector<TenantResult> tenants;
  Watts proc_cap{0.0};
  Watts mem_cap{0.0};
  Watts proc_power{0.0};
  Watts mem_power{0.0};
  bool proc_cap_respected = true;
  bool mem_cap_respected = true;
  /// Package-wide state (per-processor DVFS), or the *highest* tenant
  /// state when the machine has per-core DVFS.
  std::size_t pstate_index = 0;
  double duty = 1.0;
  /// Per-tenant P-states (all equal on per-processor-DVFS machines).
  std::vector<std::size_t> tenant_pstates;
  GBps total_bw{0.0};  ///< throttle level granted by the DRAM governor

  [[nodiscard]] Watts total_power() const noexcept {
    return proc_power + mem_power;
  }
};

class SharedCpuNodeSim {
 public:
  /// Tenants' core counts must fit the machine; validation is asserted.
  SharedCpuNodeSim(hw::CpuMachine machine, std::vector<TenantConfig> tenants);

  [[nodiscard]] const hw::CpuMachine& machine() const noexcept {
    return machine_;
  }
  [[nodiscard]] const std::vector<TenantConfig>& tenants() const noexcept {
    return tenants_;
  }

  /// Governor fixed point under common caps. On machines with per-core
  /// DVFS (CpuSpec::per_core_dvfs) each tenant receives its own P-state,
  /// chosen greedily to maximize normalized throughput under the package
  /// cap; otherwise one package-wide state is used.
  [[nodiscard]] SharedSample steady_state(Watts cpu_cap,
                                          Watts mem_cap) const noexcept;

 private:
  [[nodiscard]] SharedSample evaluate_state(const hw::CpuOperatingPoint& op,
                                            GBps total_bw) const noexcept;

  /// Per-core-DVFS evaluation: tenant i runs at pstates[i] (duty shared).
  [[nodiscard]] SharedSample evaluate_state_per_core(
      const std::vector<std::size_t>& pstates, double duty,
      GBps total_bw) const noexcept;

  [[nodiscard]] SharedSample steady_state_per_core(
      Watts cpu_cap, Watts mem_cap) const noexcept;

  hw::CpuMachine machine_;
  std::vector<TenantConfig> tenants_;
  hw::CpuModel cpu_;
  hw::DramModel dram_;
};

/// Max-min fair allocation of `capacity` across `demands`; the result sums
/// to at most `capacity` and never exceeds any demand.
[[nodiscard]] std::vector<double> max_min_fair_share(
    const std::vector<double>& demands, double capacity);

}  // namespace pbc::sim
