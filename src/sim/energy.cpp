#include "sim/energy.hpp"

#include <algorithm>

namespace pbc::sim {

EnergyReport energy_to_solution(const AllocationSample& s,
                                double work_gunits) {
  EnergyReport r;
  if (s.rate_gunits <= 0.0 || work_gunits <= 0.0) return r;
  r.duration = Seconds{work_gunits / s.rate_gunits};
  r.proc_energy = s.proc_power * r.duration;
  r.mem_energy = s.mem_power * r.duration;
  r.energy_per_gunit = r.total_energy().value() / work_gunits;
  r.edp = r.total_energy().value() * r.duration.value();
  return r;
}

std::vector<EfficiencyPoint> efficiency_curve(const BudgetSweep& sweep) {
  std::vector<EfficiencyPoint> curve;
  curve.reserve(sweep.samples.size());
  for (const auto& s : sweep.samples) {
    EfficiencyPoint p;
    p.mem_cap = s.mem_cap;
    p.perf = s.perf;
    const double consumed = s.total_power().value();
    const double budget = sweep.budget.value() > 0.0
                              ? sweep.budget.value()
                              : s.total_cap().value();
    p.perf_per_watt = consumed > 0.0 ? s.perf / consumed : 0.0;
    p.perf_per_budget_watt = budget > 0.0 ? s.perf / budget : 0.0;
    curve.push_back(p);
  }
  return curve;
}

const AllocationSample* most_efficient(const BudgetSweep& sweep) noexcept {
  const AllocationSample* best = nullptr;
  double best_eff = -1.0;
  for (const auto& s : sweep.samples) {
    const double eff = s.efficiency();
    if (eff > best_eff) {
      best_eff = eff;
      best = &s;
    }
  }
  return best;
}

}  // namespace pbc::sim
