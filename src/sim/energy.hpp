// Energy and power-efficiency accounting over measurements and sweeps.
//
// The paper's motivation is watts, not just speed: poor splits burn the
// full budget for a fraction of the performance (Fig. 1 finding 4), and
// its scheduling guidance ("small budgets should not be accepted") is an
// efficiency argument. These helpers quantify that: energy-to-solution for
// a fixed amount of work, energy-delay product, and perf-per-watt curves
// over allocation sweeps.
#pragma once

#include <vector>

#include "sim/sweep.hpp"
#include "util/units.hpp"

namespace pbc::sim {

/// Energy accounting for completing `work_gunits` of work at the sample's
/// steady state.
struct EnergyReport {
  Seconds duration{0.0};
  Joules proc_energy{0.0};
  Joules mem_energy{0.0};
  /// Joules per work unit (energy-to-solution density).
  double energy_per_gunit = 0.0;
  /// Energy-delay product in J·s (lower is better).
  double edp = 0.0;

  [[nodiscard]] Joules total_energy() const noexcept {
    return proc_energy + mem_energy;
  }
};

/// Computes the report; zero-rate samples yield an empty report.
[[nodiscard]] EnergyReport energy_to_solution(const AllocationSample& s,
                                              double work_gunits);

/// One point of a perf-per-watt curve.
struct EfficiencyPoint {
  Watts mem_cap{0.0};
  double perf = 0.0;
  /// Performance per watt of *actual* consumption.
  double perf_per_watt = 0.0;
  /// Performance per watt of *allocated* budget — exposes stranded power.
  double perf_per_budget_watt = 0.0;
};

/// Efficiency across a split sweep, in sweep order.
[[nodiscard]] std::vector<EfficiencyPoint> efficiency_curve(
    const BudgetSweep& sweep);

/// The sample with the best perf-per-consumed-watt (nullptr if empty).
[[nodiscard]] const AllocationSample* most_efficient(
    const BudgetSweep& sweep) noexcept;

}  // namespace pbc::sim
