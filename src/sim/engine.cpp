#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "rapl/feedback.hpp"
#include "rapl/ladder.hpp"
#include "rapl/msr.hpp"
#include "util/stats.hpp"

namespace pbc::sim {

namespace {

struct PhaseCursor {
  const workload::Workload* wl;
  std::size_t index = 0;
  double remaining;  ///< work units left in the current phase slice

  explicit PhaseCursor(const workload::Workload& w)
      : wl(&w), remaining(w.phases.front().weight) {}

  [[nodiscard]] const workload::Phase& current() const noexcept {
    return wl->phases[index];
  }

  /// Consume `units` of work, advancing through phase slices cyclically.
  void advance(double units) noexcept {
    remaining -= units;
    while (remaining <= 0.0) {
      index = (index + 1) % wl->phases.size();
      remaining += wl->phases[index].weight;
    }
  }
};

}  // namespace

RaplEngine::RaplEngine(hw::CpuMachine machine, workload::Workload wl,
                       EngineConfig config)
    : machine_(std::move(machine)),
      wl_(std::move(wl)),
      cpu_(machine_.cpu),
      dram_(machine_.dram),
      config_(config) {
  assert(wl_.validate().ok());
}

TimedRun RaplEngine::run(Watts cpu_cap, Watts mem_cap) const {
  const rapl::NotchLadder ladder(machine_.cpu);
  const auto& dspec = machine_.dram;
  const double bw_lo = dspec.min_bw.value();
  const double bw_step = (dspec.peak_bw.value() - bw_lo) /
                         static_cast<double>(dspec.throttle_levels - 1);

  std::size_t notch = ladder.count() - 1;
  int mem_level = dspec.throttle_levels - 1;

  const double dt = config_.tick.value();
  const auto total_ticks =
      static_cast<std::size_t>(config_.duration.value() / dt);
  const auto warmup_ticks =
      static_cast<std::size_t>(config_.warmup.value() / dt);

  // Scale the work cycle so the whole phase list repeats ~10×/second:
  // fast enough to average, slow enough that the controller sees real
  // phase changes.
  workload::PhaseOperands probe;
  probe.compute_capacity = cpu_.compute_capacity(ladder.op(notch));
  probe.avail_bw = dspec.peak_bw;
  probe.peak_bw = dspec.peak_bw;
  probe.rel_clock = 1.0;
  const double free_rate = workload::evaluate(wl_, probe).rate_gunits;
  double weight_sum = 0.0;
  for (const auto& p : wl_.phases) weight_sum += p.weight;
  const double work_scale =
      free_rate > 0.0 ? (free_rate * 0.1) / weight_sum : 1.0;

  PhaseCursor cursor(wl_);
  rapl::FeedbackController ctrl_cpu(config_.tick, config_.window);
  rapl::FeedbackController ctrl_mem(config_.tick, config_.window);
  // Meter post-warmup energy through the RAPL counter encoding, exactly as
  // userspace tooling would read it.
  rapl::RaplMsr msr;
  std::uint32_t cpu_energy_start = 0;
  std::uint32_t mem_energy_start = 0;

  TimedRun out;
  OnlineStats cpu_power_stats;
  OnlineStats mem_power_stats;
  OnlineStats util_c;
  OnlineStats util_m;
  OnlineStats bw_stats;
  double work_done = 0.0;
  std::size_t cpu_over = 0;
  std::size_t mem_over = 0;

  const Watts effective_mem_cap{
      std::max(mem_cap.value(), dspec.floor.value())};

  for (std::size_t t = 0; t < total_ticks; ++t) {
    const hw::CpuOperatingPoint op = ladder.op(notch);
    const GBps bw{bw_lo + static_cast<double>(mem_level) * bw_step};

    workload::PhaseOperands operands;
    operands.compute_capacity = cpu_.compute_capacity(op);
    operands.avail_bw = bw;
    operands.peak_bw = dspec.peak_bw;
    const auto& ps = machine_.cpu.pstates[op.pstate_index];
    operands.rel_clock =
        ps.frequency.value() / machine_.cpu.f_max().value();
    operands.duty = op.duty;

    const workload::PhaseResult res =
        workload::evaluate_phase(cursor.current(), operands);
    const Watts p_cpu = cpu_.package_power(op, res.activity_eff);
    const Watts p_mem = dram_.power(res.effective_bw);

    ctrl_cpu.observe(p_cpu);
    ctrl_mem.observe(p_mem);

    msr.accumulate_energy(rapl::Domain::kPackage, p_cpu * config_.tick);
    msr.accumulate_energy(rapl::Domain::kDram, p_mem * config_.tick);
    if (t == warmup_ticks) {
      cpu_energy_start = msr.energy_status(rapl::Domain::kPackage);
      mem_energy_start = msr.energy_status(rapl::Domain::kDram);
    }
    if (t >= warmup_ticks) {
      cpu_power_stats.add(p_cpu.value());
      mem_power_stats.add(p_mem.value());
      util_c.add(res.compute_util);
      util_m.add(res.mem_util);
      bw_stats.add(res.achieved_bw.value());
      work_done += res.rate_gunits * dt;  // Gunits/s × s
      if (ctrl_cpu.average().value() > cpu_cap.value() + 1.0) ++cpu_over;
      if (ctrl_mem.average().value() > effective_mem_cap.value() + 1.0) {
        ++mem_over;
      }
      if (config_.record_timeline && t % config_.timeline_stride == 0) {
        out.timeline.push_back(TickSample{
            Seconds{static_cast<double>(t) * dt}, p_cpu, p_mem,
            res.rate_gunits, op.pstate_index, op.duty, bw});
      }
    }
    cursor.advance(res.rate_gunits * dt / work_scale);

    // --- controller step ---
    // Package: step down when the running average breaches the cap; step up
    // when there is headroom and the instantaneous power at the next notch
    // is predicted to fit.
    {
      const Watts predicted_up =
          notch + 1 < ladder.count()
              ? cpu_.package_power(ladder.op(notch + 1), res.activity_eff)
              : Watts{1e12};  // already at the top; never step up
      switch (ctrl_cpu.decide(cpu_cap, predicted_up)) {
        case rapl::StepDecision::kDown:
          if (notch > 0) --notch;
          break;
        case rapl::StepDecision::kUp:
          ++notch;
          break;
        case rapl::StepDecision::kHold:
          break;
      }
    }
    // DRAM throttle: predict power if the workload used the next level's
    // extra bandwidth fully.
    {
      Watts predicted_up{1e12};
      if (mem_level + 1 < dspec.throttle_levels) {
        const GBps up_bw{bw_lo + static_cast<double>(mem_level + 1) * bw_step};
        const double extra_eff_bw =
            std::min(up_bw.value(),
                     res.effective_bw.value() +
                         (up_bw.value() - bw.value()) *
                             cursor.current().mem_energy_scale);
        predicted_up = dram_.power(GBps{extra_eff_bw});
      }
      switch (ctrl_mem.decide(effective_mem_cap, predicted_up)) {
        case rapl::StepDecision::kDown:
          if (mem_level > 0) --mem_level;
          break;
        case rapl::StepDecision::kUp:
          ++mem_level;
          break;
        case rapl::StepDecision::kHold:
          break;
      }
    }
  }

  const double measured =
      static_cast<double>(total_ticks - warmup_ticks) * dt;
  AllocationSample& agg = out.aggregate;
  agg.proc_cap = cpu_cap;
  agg.mem_cap = mem_cap;
  agg.proc_power = Watts{cpu_power_stats.mean()};
  agg.mem_power = Watts{mem_power_stats.mean()};
  agg.rate_gunits = measured > 0.0 ? work_done / measured : 0.0;
  agg.perf = agg.rate_gunits * wl_.metric_per_gunit;
  agg.compute_util = util_c.mean();
  agg.mem_util = util_m.mean();
  agg.achieved_bw = GBps{bw_stats.mean()};
  agg.pstate_index = ladder.op(notch).pstate_index;
  agg.duty = ladder.op(notch).duty;
  agg.proc_cap_respected = agg.proc_power.value() <= cpu_cap.value() + 1.0;
  agg.mem_cap_respected = agg.mem_power.value() <= mem_cap.value() + 1.0;
  agg.proc_region = agg.duty < 1.0 ? ProcRegion::kTState : ProcRegion::kPState;
  agg.mem_region = mem_cap.value() < dspec.floor.value()
                       ? MemRegion::kFloor
                   : mem_level + 1 < dspec.throttle_levels
                       ? MemRegion::kThrottled
                       : MemRegion::kUnthrottled;

  const double post = static_cast<double>(total_ticks - warmup_ticks);
  out.cpu_overshoot_frac = post > 0.0 ? static_cast<double>(cpu_over) / post : 0.0;
  out.mem_overshoot_frac = post > 0.0 ? static_cast<double>(mem_over) / post : 0.0;
  out.cpu_energy = msr.energy_delta(
      cpu_energy_start, msr.energy_status(rapl::Domain::kPackage));
  out.mem_energy = msr.energy_delta(
      mem_energy_start, msr.energy_status(rapl::Domain::kDram));
  return out;
}

}  // namespace pbc::sim
