#include "sim/cpu_node.hpp"

#include <algorithm>
#include <cassert>

#include "rapl/ladder.hpp"

namespace pbc::sim {

namespace {
// Governors honour a cap if measured power is within this absolute slack;
// keeps discrete-state selection stable at exact boundaries.
constexpr double kCapSlackW = 0.01;
constexpr int kMaxRelaxationIters = 24;
}  // namespace

CpuNodeSim::CpuNodeSim(hw::CpuMachine machine, workload::Workload wl)
    : machine_(std::move(machine)),
      wl_(std::move(wl)),
      cpu_(machine_.cpu),
      dram_(machine_.dram) {
  assert(wl_.validate().ok());
  assert(wl_.domain == workload::Domain::kCpu);
}

AllocationSample CpuNodeSim::evaluate_state(const hw::CpuOperatingPoint& op,
                                            GBps avail_bw,
                                            int active_cores) const noexcept {
  const auto& spec = machine_.cpu;
  const int total_cores = spec.total_cores();
  const int cores = std::clamp(active_cores, 1, total_cores);
  const auto& ps =
      spec.pstates[std::min(op.pstate_index, spec.pstates.size() - 1)];
  const double f = ps.frequency.value();
  const double duty =
      op.sleeping ? 0.02 : std::clamp(op.duty, spec.min_duty(), 1.0);

  workload::PhaseOperands operands;
  operands.compute_capacity =
      Gflops{cores * spec.flops_per_cycle * f *
             (op.sleeping ? 0.02 : std::clamp(op.duty, spec.min_duty(), 1.0))};
  operands.avail_bw = avail_bw;
  operands.peak_bw = machine_.dram.peak_bw;
  operands.rel_clock = f / spec.f_max().value();
  operands.duty = duty;
  operands.core_fraction =
      static_cast<double>(cores) / static_cast<double>(total_cores);

  const workload::WorkloadResult res = workload::evaluate(wl_, operands);

  AllocationSample s;
  s.perf = res.metric;
  s.rate_gunits = res.rate_gunits;
  if (cores == total_cores) {
    s.proc_power = cpu_.package_power(op, res.activity_eff);
  } else {
    // Packed execution: active cores switch and leak; parked cores sit in
    // a core C-state retaining ~20% of their leakage.
    const double leakage =
        (cores + 0.2 * (total_cores - cores)) *
        spec.static_w_per_core_per_volt * ps.voltage;
    const double dynamic = op.sleeping
                               ? 0.0
                               : cores * spec.dyn_coeff_w_per_ghz_v2 *
                                     ps.voltage * ps.voltage * f *
                                     res.activity_eff * duty;
    s.proc_power = Watts{std::max(
        spec.uncore_power.value() + leakage + dynamic, spec.floor.value())};
  }
  s.mem_power = dram_.power(res.effective_bw);
  s.pstate_index = op.pstate_index;
  s.duty = op.duty;
  s.compute_util = res.compute_util;
  s.mem_util = res.mem_util;
  s.avail_bw = avail_bw;
  s.achieved_bw = res.achieved_bw;
  s.proc_region = op.sleeping ? ProcRegion::kSleepFloor
                  : op.duty < 1.0 ? ProcRegion::kTState
                                  : ProcRegion::kPState;
  return s;
}

hw::CpuOperatingPoint CpuNodeSim::proc_best_response(
    Watts cap, GBps avail_bw, int active_cores) const noexcept {
  // Walk the escalation ladder from the top P-state toward the deepest
  // T-state — the order in which RAPL engages mechanisms (§3.3) — and take
  // the shallowest state that fits the cap.
  const rapl::NotchLadder ladder(machine_.cpu);
  for (std::size_t notch = ladder.count(); notch-- > 0;) {
    const hw::CpuOperatingPoint op = ladder.op(notch);
    if (evaluate_state(op, avail_bw, active_cores).proc_power.value() <=
        cap.value() + kCapSlackW) {
      return op;
    }
  }
  // Even the deepest throttle exceeds the cap: the package idles at its
  // hardware floor and the cap goes unmet (scenario VI).
  return hw::CpuOperatingPoint{0, machine_.cpu.min_duty(),
                               cap.value() < machine_.cpu.floor.value()};
}

GBps CpuNodeSim::mem_best_response(Watts cap, const hw::CpuOperatingPoint& op,
                                   int active_cores) const noexcept {
  const auto& spec = machine_.dram;
  const double effective_cap = std::max(cap.value(), spec.floor.value());
  const double lo = spec.min_bw.value();
  const double hi = spec.peak_bw.value();
  const double step =
      (hi - lo) / static_cast<double>(spec.throttle_levels - 1);
  for (int level = spec.throttle_levels - 1; level >= 0; --level) {
    const GBps bw{lo + static_cast<double>(level) * step};
    if (evaluate_state(op, bw, active_cores).mem_power.value() <=
        effective_cap + kCapSlackW) {
      return bw;
    }
  }
  return spec.min_bw;
}

AllocationSample CpuNodeSim::solve(Watts cpu_cap, Watts mem_cap,
                                   int active_cores) const noexcept {
  hw::CpuOperatingPoint op{machine_.cpu.pstates.size() - 1, 1.0, false};
  GBps bw = machine_.dram.peak_bw;

  for (int iter = 0; iter < kMaxRelaxationIters; ++iter) {
    const GBps next_bw = mem_best_response(mem_cap, op, active_cores);
    const hw::CpuOperatingPoint next_op =
        proc_best_response(cpu_cap, next_bw, active_cores);
    const bool stable = next_bw == bw &&
                        next_op.pstate_index == op.pstate_index &&
                        next_op.duty == op.duty &&
                        next_op.sleeping == op.sleeping;
    op = next_op;
    bw = next_bw;
    if (stable) break;
  }

  AllocationSample s = evaluate_state(op, bw, active_cores);
  s.proc_cap = cpu_cap;
  s.mem_cap = mem_cap;
  s.proc_cap_respected =
      s.proc_power.value() <= cpu_cap.value() + kCapSlackW;
  s.mem_cap_respected = s.mem_power.value() <= mem_cap.value() + kCapSlackW;
  s.mem_region = mem_cap.value() < machine_.dram.floor.value()
                     ? MemRegion::kFloor
                 : bw.value() < machine_.dram.peak_bw.value() - 1e-9
                     ? MemRegion::kThrottled
                     : MemRegion::kUnthrottled;
  return s;
}

AllocationSample CpuNodeSim::steady_state(Watts cpu_cap,
                                          Watts mem_cap) const noexcept {
  return solve(cpu_cap, mem_cap, machine_.cpu.total_cores());
}

AllocationSample CpuNodeSim::steady_state_packed(int active_cores,
                                                 Watts cpu_cap,
                                                 Watts mem_cap)
    const noexcept {
  return solve(cpu_cap, mem_cap, active_cores);
}

AllocationSample CpuNodeSim::pinned(const hw::CpuOperatingPoint& op,
                                    GBps avail_bw) const noexcept {
  AllocationSample s = evaluate_state(op, avail_bw,
                                      machine_.cpu.total_cores());
  s.proc_cap = s.proc_power;
  s.mem_cap = s.mem_power;
  s.mem_region = avail_bw.value() < machine_.dram.peak_bw.value() - 1e-9
                     ? MemRegion::kThrottled
                     : MemRegion::kUnthrottled;
  return s;
}

AllocationSample CpuNodeSim::uncapped() const noexcept {
  return steady_state(Watts{1e6}, Watts{1e6});
}

}  // namespace pbc::sim
