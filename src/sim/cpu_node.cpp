#include "sim/cpu_node.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <map>
#include <mutex>
#include <utility>

#include "rapl/ladder.hpp"
#include "sim/instrumentation.hpp"
#include "sim/simd.hpp"
#include "sim/solve_arena.hpp"

// Both solver paths must feed bit-identical operands to the workload model.
// Keeping the state evaluator and the throttle-bandwidth formula out of line
// pins each to a single instantiation, so the compiler cannot contract or
// reassociate them differently per call site (e.g. FMA under -march=native).
#if defined(__GNUC__) || defined(__clang__)
#define PBC_NOINLINE __attribute__((noinline))
#else
#define PBC_NOINLINE
#endif

namespace pbc::sim {

namespace {
// Governors honour a cap if measured power is within this absolute slack;
// keeps discrete-state selection stable at exact boundaries.
constexpr double kCapSlackW = 0.01;
constexpr int kMaxRelaxationIters = 24;
}  // namespace

namespace detail {
/// Lazily built operating-point tables, keyed by (clamped) active-core
/// count. Shared across copies of the node; guarded by `mu`.
struct CpuSolverCache {
  std::mutex mu;
  std::map<int, std::unique_ptr<const CpuOpTable>> by_cores;
};
}  // namespace detail

CpuNodeSim::CpuNodeSim(hw::CpuMachine machine, workload::Workload wl)
    : machine_(std::move(machine)),
      wl_(std::move(wl)),
      cpu_(machine_.cpu),
      dram_(machine_.dram),
      solver_cache_(std::make_shared<detail::CpuSolverCache>()) {
  assert(wl_.validate().ok());
  assert(wl_.domain == workload::Domain::kCpu);
}

PBC_NOINLINE AllocationSample CpuNodeSim::evaluate_state(
    const hw::CpuOperatingPoint& op, GBps avail_bw,
    int active_cores) const noexcept {
  const auto& spec = machine_.cpu;
  const int total_cores = spec.total_cores();
  const int cores = std::clamp(active_cores, 1, total_cores);
  const auto& ps =
      spec.pstates[std::min(op.pstate_index, spec.pstates.size() - 1)];
  const double f = ps.frequency.value();
  const double duty =
      op.sleeping ? 0.02 : std::clamp(op.duty, spec.min_duty(), 1.0);

  workload::PhaseOperands operands;
  operands.compute_capacity =
      Gflops{cores * spec.flops_per_cycle * f * duty};
  operands.avail_bw = avail_bw;
  operands.peak_bw = machine_.dram.peak_bw;
  operands.rel_clock = f / spec.f_max().value();
  operands.duty = duty;
  operands.core_fraction =
      static_cast<double>(cores) / static_cast<double>(total_cores);

  const workload::WorkloadResult res = workload::evaluate(wl_, operands);

  AllocationSample s;
  s.perf = res.metric;
  s.rate_gunits = res.rate_gunits;
  if (cores == total_cores) {
    s.proc_power = cpu_.package_power(op, res.activity_eff);
  } else {
    // Packed execution: active cores switch and leak; parked cores sit in
    // a core C-state retaining ~20% of their leakage.
    const double leakage =
        (cores + 0.2 * (total_cores - cores)) *
        spec.static_w_per_core_per_volt * ps.voltage;
    const double dynamic = op.sleeping
                               ? 0.0
                               : cores * spec.dyn_coeff_w_per_ghz_v2 *
                                     ps.voltage * ps.voltage * f *
                                     res.activity_eff * duty;
    s.proc_power = Watts{std::max(
        spec.uncore_power.value() + leakage + dynamic, spec.floor.value())};
  }
  s.mem_power = dram_.power(res.effective_bw);
  s.pstate_index = op.pstate_index;
  s.duty = op.duty;
  s.compute_util = res.compute_util;
  s.mem_util = res.mem_util;
  s.avail_bw = avail_bw;
  s.achieved_bw = res.achieved_bw;
  s.proc_region = op.sleeping ? ProcRegion::kSleepFloor
                  : op.duty < 1.0 ? ProcRegion::kTState
                                  : ProcRegion::kPState;
  return s;
}

PBC_NOINLINE GBps CpuNodeSim::throttle_bw(int level) const noexcept {
  const auto& spec = machine_.dram;
  const double lo = spec.min_bw.value();
  const double hi = spec.peak_bw.value();
  const double step =
      (hi - lo) / static_cast<double>(spec.throttle_levels - 1);
  return GBps{lo + static_cast<double>(level) * step};
}

hw::CpuOperatingPoint CpuNodeSim::proc_best_response(
    Watts cap, GBps avail_bw, int active_cores) const noexcept {
  // Walk the escalation ladder from the top P-state toward the deepest
  // T-state — the order in which RAPL engages mechanisms (§3.3) — and take
  // the shallowest state that fits the cap.
  const rapl::NotchLadder ladder(machine_.cpu);
  for (std::size_t notch = ladder.count(); notch-- > 0;) {
    const hw::CpuOperatingPoint op = ladder.op(notch);
    if (evaluate_state(op, avail_bw, active_cores).proc_power.value() <=
        cap.value() + kCapSlackW) {
      return op;
    }
  }
  // Even the deepest throttle exceeds the cap: the package idles at its
  // hardware floor and the cap goes unmet (scenario VI).
  return hw::CpuOperatingPoint{0, machine_.cpu.min_duty(),
                               cap.value() < machine_.cpu.floor.value()};
}

GBps CpuNodeSim::mem_best_response(Watts cap, const hw::CpuOperatingPoint& op,
                                   int active_cores) const noexcept {
  const auto& spec = machine_.dram;
  const double effective_cap = std::max(cap.value(), spec.floor.value());
  for (int level = spec.throttle_levels - 1; level >= 0; --level) {
    const GBps bw = throttle_bw(level);
    if (evaluate_state(op, bw, active_cores).mem_power.value() <=
        effective_cap + kCapSlackW) {
      return bw;
    }
  }
  return spec.min_bw;
}

AllocationSample CpuNodeSim::solve_reference(Watts cpu_cap, Watts mem_cap,
                                             int active_cores)
    const noexcept {
  hw::CpuOperatingPoint op{machine_.cpu.pstates.size() - 1, 1.0, false};
  GBps bw = machine_.dram.peak_bw;

  for (int iter = 0; iter < kMaxRelaxationIters; ++iter) {
    const GBps next_bw = mem_best_response(mem_cap, op, active_cores);
    const hw::CpuOperatingPoint next_op =
        proc_best_response(cpu_cap, next_bw, active_cores);
    const bool stable = next_bw == bw &&
                        next_op.pstate_index == op.pstate_index &&
                        next_op.duty == op.duty &&
                        next_op.sleeping == op.sleeping;
    op = next_op;
    bw = next_bw;
    if (stable) break;
  }

  AllocationSample s = evaluate_state(op, bw, active_cores);
  s.proc_cap = cpu_cap;
  s.mem_cap = mem_cap;
  s.proc_cap_respected =
      s.proc_power.value() <= cpu_cap.value() + kCapSlackW;
  s.mem_cap_respected = s.mem_power.value() <= mem_cap.value() + kCapSlackW;
  s.mem_region = mem_cap.value() < machine_.dram.floor.value()
                     ? MemRegion::kFloor
                 : bw.value() < machine_.dram.peak_bw.value() - 1e-9
                     ? MemRegion::kThrottled
                     : MemRegion::kUnthrottled;
  return s;
}

AllocationSample CpuNodeSim::solve_fast(const CpuOpTable& table, Watts cpu_cap,
                                        Watts mem_cap,
                                        [[maybe_unused]] int active_cores,
                                        SolveHint* hint) const noexcept {
  const double proc_thr = cpu_cap.value() + kCapSlackW;
  const double mem_thr =
      std::max(mem_cap.value(), machine_.dram.floor.value()) + kCapSlackW;

  // Replays solve_reference's relaxation trajectory exactly: same initial
  // iterate (top P-state, untracked peak bandwidth), same per-iteration
  // best responses (a state index equals an operating point bit for bit),
  // same stability predicate. Only the walks are replaced by bisections.
  std::size_t state = table.ladder_states() - 1;
  std::size_t level = table.level_count() - 1;
  double bw = machine_.dram.peak_bw.value();
  int proc_hint = hint != nullptr ? hint->state : -1;
  int mem_hint = hint != nullptr ? hint->level : -1;

  for (int iter = 0; iter < kMaxRelaxationIters; ++iter) {
    const int ml = table.mem_response(mem_thr, state, mem_hint);
    const std::size_t next_level = ml < 0 ? 0 : static_cast<std::size_t>(ml);
    mem_hint = static_cast<int>(next_level);
    const double next_bw = table.level_bw(next_level);

    const int ps = table.proc_response(proc_thr, next_level, proc_hint);
    // No ladder state fits: the reference fallback op is bit-identical to
    // ladder state 0 when the cap sits at/above the floor (min_duty is the
    // notch-0 duty), and to the forced-sleep row below the floor.
    const std::size_t next_state =
        ps >= 0 ? static_cast<std::size_t>(ps)
        : cpu_cap.value() < machine_.cpu.floor.value() ? table.sleep_state()
                                                       : 0;
    proc_hint = ps >= 0 ? ps : 0;

    const bool stable = next_bw == bw && next_state == state;
    state = next_state;
    level = next_level;
    bw = next_bw;
    if (stable) break;
  }

  AllocationSample s = table.sample(state, level);
  s.proc_cap = cpu_cap;
  s.mem_cap = mem_cap;
  s.proc_cap_respected =
      s.proc_power.value() <= cpu_cap.value() + kCapSlackW;
  s.mem_cap_respected = s.mem_power.value() <= mem_cap.value() + kCapSlackW;
  s.mem_region = mem_cap.value() < machine_.dram.floor.value()
                     ? MemRegion::kFloor
                 : bw < machine_.dram.peak_bw.value() - 1e-9
                     ? MemRegion::kThrottled
                     : MemRegion::kUnthrottled;
  assert(s == solve_reference(cpu_cap, mem_cap, active_cores));
  if (hint != nullptr) {
    hint->state =
        static_cast<int>(std::min(state, table.ladder_states() - 1));
    hint->level = static_cast<int>(level);
  }
  return s;
}

void CpuNodeSim::solve_fast_batch(const CpuOpTable& table,
                                  std::span<const CapPair> caps,
                                  std::span<AllocationSample> out,
                                  [[maybe_unused]] int active_cores,
                                  SolveArena& arena) const {
  assert(out.size() == caps.size());
  const std::size_t n = caps.size();
  if (n == 0) return;
  const std::size_t states = table.ladder_states();  // sleep row == states
  const std::size_t levels = table.level_count();
  const double cpu_floor = machine_.cpu.floor.value();
  const double mem_floor = machine_.dram.floor.value();
  const double peak_bw = machine_.dram.peak_bw.value();

  const auto scope = arena.scope();
  // Per-cell lanes (indexed by cell), live across iterations.
  const auto proc_thr = arena.get<double>(n);
  const auto mem_thr = arena.get<double>(n);
  const auto bw = arena.get<double>(n);
  const auto state = arena.get<std::int32_t>(n);
  const auto level = arena.get<std::int32_t>(n);
  const auto next_state = arena.get<std::int32_t>(n);
  const auto next_level = arena.get<std::int32_t>(n);
  const auto below_floor = arena.get<std::uint8_t>(n);
  // Work queues and per-bucket gather buffers, rewritten every iteration.
  const auto pending = arena.get<std::int32_t>(n);
  const auto grouped = arena.get<std::int32_t>(n);
  const auto gthr = arena.get<double>(n);
  const auto gans = arena.get<std::int32_t>(n);
  // Bucket boundaries: mem buckets key on state (states + 1 values incl.
  // sleep), proc buckets on next_level (levels values).
  const std::size_t buckets = std::max(states + 1, levels);
  const auto off = arena.get<std::int32_t>(buckets + 1);
  const auto cur = arena.get<std::int32_t>(buckets + 1);

  for (std::size_t i = 0; i < n; ++i) {
    // Same initial iterate and thresholds as solve_fast, per cell.
    proc_thr[i] = caps[i].cpu_cap.value() + kCapSlackW;
    mem_thr[i] = std::max(caps[i].mem_cap.value(), mem_floor) + kCapSlackW;
    bw[i] = peak_bw;
    state[i] = static_cast<std::int32_t>(states) - 1;
    level[i] = static_cast<std::int32_t>(levels) - 1;
    below_floor[i] = caps[i].cpu_cap.value() < cpu_floor ? 1 : 0;
    pending[i] = static_cast<std::int32_t>(i);
  }

  // Counting sort of `pending` into `grouped` by `key`, bucket b spanning
  // grouped[off[b], off[b + 1]). Stable, so lanes keep sweep order.
  const auto group_by = [&](std::size_t npend, std::size_t nbuckets,
                            std::span<const std::int32_t> key) {
    std::fill(off.begin(), off.begin() + static_cast<std::ptrdiff_t>(
                                             nbuckets + 1), 0);
    for (std::size_t k = 0; k < npend; ++k) {
      ++off[static_cast<std::size_t>(key[static_cast<std::size_t>(
                pending[k])]) + 1];
    }
    for (std::size_t b = 0; b < nbuckets; ++b) off[b + 1] += off[b];
    std::copy(off.begin(),
              off.begin() + static_cast<std::ptrdiff_t>(nbuckets),
              cur.begin());
    for (std::size_t k = 0; k < npend; ++k) {
      const std::int32_t idx = pending[k];
      grouped[static_cast<std::size_t>(
          cur[static_cast<std::size_t>(key[static_cast<std::size_t>(
              idx)])]++)] = idx;
    }
  };

  std::size_t npend = n;
  for (int iter = 0; iter < kMaxRelaxationIters && npend > 0; ++iter) {
    // Memory governor: one batched curve scan per distinct current state.
    group_by(npend, states + 1, state);
    for (std::size_t s = 0; s <= states; ++s) {
      const auto b0 = static_cast<std::size_t>(off[s]);
      const auto b1 = static_cast<std::size_t>(off[s + 1]);
      if (b0 == b1) continue;
      const std::size_t c = b1 - b0;
      for (std::size_t j = 0; j < c; ++j) {
        gthr[j] = mem_thr[static_cast<std::size_t>(grouped[b0 + j])];
      }
      table.mem_batch(s).max_index_within(gthr.first(c), gans.first(c));
      for (std::size_t j = 0; j < c; ++j) {
        const auto idx = static_cast<std::size_t>(grouped[b0 + j]);
        next_level[idx] = gans[j] < 0 ? 0 : gans[j];
      }
    }

    // Processor governor: one batched scan per distinct next level.
    group_by(npend, levels, next_level);
    for (std::size_t l = 0; l < levels; ++l) {
      const auto b0 = static_cast<std::size_t>(off[l]);
      const auto b1 = static_cast<std::size_t>(off[l + 1]);
      if (b0 == b1) continue;
      const std::size_t c = b1 - b0;
      for (std::size_t j = 0; j < c; ++j) {
        gthr[j] = proc_thr[static_cast<std::size_t>(grouped[b0 + j])];
      }
      table.proc_batch(l).max_index_within(gthr.first(c), gans.first(c));
      for (std::size_t j = 0; j < c; ++j) {
        const auto idx = static_cast<std::size_t>(grouped[b0 + j]);
        // solve_fast's no-state-fits fallback, verbatim.
        next_state[idx] =
            gans[j] >= 0 ? gans[j]
            : below_floor[idx] != 0
                ? static_cast<std::int32_t>(table.sleep_state())
                : 0;
      }
    }

    // Advance every pending cell and retire the stable ones. Matches the
    // scalar loop exactly: stability is judged on the pre-update iterate,
    // and the final assignment happens either way.
    std::size_t w = 0;
    for (std::size_t k = 0; k < npend; ++k) {
      const auto idx = static_cast<std::size_t>(pending[k]);
      const double next_bw =
          table.level_bw(static_cast<std::size_t>(next_level[idx]));
      const bool stable =
          next_bw == bw[idx] && next_state[idx] == state[idx];
      state[idx] = next_state[idx];
      level[idx] = next_level[idx];
      bw[idx] = next_bw;
      if (!stable) pending[w++] = pending[k];
    }
    npend = w;
  }

  for (std::size_t i = 0; i < n; ++i) {
    // The solve_fast epilogue, per cell.
    AllocationSample s = table.sample(static_cast<std::size_t>(state[i]),
                                      static_cast<std::size_t>(level[i]));
    s.proc_cap = caps[i].cpu_cap;
    s.mem_cap = caps[i].mem_cap;
    s.proc_cap_respected =
        s.proc_power.value() <= caps[i].cpu_cap.value() + kCapSlackW;
    s.mem_cap_respected =
        s.mem_power.value() <= caps[i].mem_cap.value() + kCapSlackW;
    s.mem_region = caps[i].mem_cap.value() < mem_floor ? MemRegion::kFloor
                   : bw[i] < peak_bw - 1e-9 ? MemRegion::kThrottled
                                            : MemRegion::kUnthrottled;
    out[i] = s;
    assert(out[i] == solve_fast(table, caps[i].cpu_cap, caps[i].mem_cap,
                                active_cores, nullptr));
  }
}

void CpuNodeSim::solve_fast_batch_best(const CpuOpTable& table,
                                       std::span<const CapPair> caps,
                                       std::span<const std::int32_t> bounds,
                                       std::span<AllocationSample> best,
                                       [[maybe_unused]] int active_cores,
                                       SolveArena& arena) const {
  assert(bounds.size() == best.size() + 1);
  assert(bounds.front() == 0 &&
         static_cast<std::size_t>(bounds.back()) == caps.size());
  const std::size_t n = caps.size();
  const std::size_t nseg = best.size();
  if (n == 0) {
    std::fill(best.begin(), best.end(), AllocationSample{});
    return;
  }
  const std::size_t states = table.ladder_states();  // sleep row == states
  const std::size_t levels = table.level_count();
  const double cpu_floor = machine_.cpu.floor.value();
  const double mem_floor = machine_.dram.floor.value();
  const double peak_bw = machine_.dram.peak_bw.value();
  const auto sleep_c = static_cast<std::int32_t>(table.sleep_state());
  const std::span<const double> mem_rows = table.mem_power_rows();
  const std::span<const double> proc_rows = table.proc_power_rows();
  const std::span<const double> perf = table.perf_rows();

  const auto scope = arena.scope();
  const auto proc_thr = arena.get<double>(n);
  const auto mem_thr = arena.get<double>(n);
  const auto state = arena.get<std::int32_t>(n);
  const auto level = arena.get<std::int32_t>(n);
  const auto next_state = arena.get<std::int32_t>(n);
  const auto next_level = arena.get<std::int32_t>(n);
  // Per-cell no-state-fits value (sleep below the package floor, else
  // notch 0) — precomputed so the fix-up after a proc scan is one move.
  const auto fallback = arena.get<std::int32_t>(n);
  const auto pending = arena.get<std::int32_t>(n);
  const auto grouped = arena.get<std::int32_t>(n);
  const auto unconf = arena.get<std::int32_t>(n);
  // Staging for buckets whose curve is non-monotone (prefix-max kernel
  // wants contiguous thresholds); untouched on fully monotone tables.
  const auto gthr = arena.get<double>(n);
  const auto gans = arena.get<std::int32_t>(n);
  const std::size_t buckets = std::max(states + 1, levels);
  const auto off = arena.get<std::int32_t>(buckets + 1);
  const auto cur = arena.get<std::int32_t>(buckets + 1);

  for (std::size_t i = 0; i < n; ++i) {
    proc_thr[i] = caps[i].cpu_cap.value() + kCapSlackW;
    mem_thr[i] = std::max(caps[i].mem_cap.value(), mem_floor) + kCapSlackW;
    fallback[i] = caps[i].cpu_cap.value() < cpu_floor ? sleep_c : 0;
    pending[i] = static_cast<std::int32_t>(i);
  }

  // Counting sort of `list[0, m)` into `grouped` by `key`, bucket b
  // spanning grouped[off[b], off[b + 1]). Stable, so lanes keep sweep
  // order within a bucket.
  const auto group_by = [&](std::size_t m, const std::int32_t* list,
                            std::size_t nbuckets,
                            std::span<const std::int32_t> key) {
    std::fill(off.begin(),
              off.begin() + static_cast<std::ptrdiff_t>(nbuckets + 1), 0);
    for (std::size_t k = 0; k < m; ++k) {
      ++off[static_cast<std::size_t>(
                key[static_cast<std::size_t>(list[k])]) + 1];
    }
    for (std::size_t b = 0; b < nbuckets; ++b) off[b + 1] += off[b];
    std::copy(off.begin(),
              off.begin() + static_cast<std::ptrdiff_t>(nbuckets),
              cur.begin());
    for (std::size_t k = 0; k < m; ++k) {
      const std::int32_t idx = list[k];
      grouped[static_cast<std::size_t>(
          cur[static_cast<std::size_t>(key[static_cast<std::size_t>(
              idx)])]++)] = idx;
    }
  };

  // One grouped governor pass over the cells in `list[0, m)`. Monotone
  // buckets run the fused gather/scan/scatter kernel straight over the
  // SoA row; non-monotone buckets stage thresholds and answer through
  // the (batched, equally exact) prefix-max view. Raw answers land in
  // next_level / next_state; callers apply the clamp / fallback.
  const auto mem_pass = [&](std::size_t m, const std::int32_t* list) {
    group_by(m, list, states + 1, state);
    for (std::size_t s = 0; s <= states; ++s) {
      const auto b0 = static_cast<std::size_t>(off[s]);
      const auto b1 = static_cast<std::size_t>(off[s + 1]);
      if (b0 == b1) continue;
      const std::span<const std::int32_t> idx{grouped.data() + b0, b1 - b0};
      if (table.mem_batch(s).monotone()) {
        simd::batch_max_index_indexed({mem_rows.data() + s * levels, levels},
                                      mem_thr.data(), idx,
                                      next_level.data());
      } else {
        for (std::size_t j = 0; j < idx.size(); ++j) {
          gthr[j] = mem_thr[static_cast<std::size_t>(idx[j])];
        }
        table.mem_batch(s).max_index_within(gthr.first(idx.size()),
                                            gans.first(idx.size()));
        for (std::size_t j = 0; j < idx.size(); ++j) {
          next_level[static_cast<std::size_t>(idx[j])] = gans[j];
        }
      }
    }
  };
  const auto proc_pass = [&](std::size_t m, const std::int32_t* list) {
    group_by(m, list, levels, next_level);
    for (std::size_t l = 0; l < levels; ++l) {
      const auto b0 = static_cast<std::size_t>(off[l]);
      const auto b1 = static_cast<std::size_t>(off[l + 1]);
      if (b0 == b1) continue;
      const std::span<const std::int32_t> idx{grouped.data() + b0, b1 - b0};
      if (table.proc_batch(l).monotone()) {
        simd::batch_max_index_indexed({proc_rows.data() + l * states, states},
                                      proc_thr.data(), idx,
                                      next_state.data());
      } else {
        for (std::size_t j = 0; j < idx.size(); ++j) {
          gthr[j] = proc_thr[static_cast<std::size_t>(idx[j])];
        }
        table.proc_batch(l).max_index_within(gthr.first(idx.size()),
                                             gans.first(idx.size()));
        for (std::size_t j = 0; j < idx.size(); ++j) {
          next_state[static_cast<std::size_t>(idx[j])] = gans[j];
        }
      }
    }
  };

  // Iteration 0, dense: every cell starts at the top ladder state, so
  // the memory governor is a single contiguous scan of the shared
  // top-state row — the block's whole point: one row load services all
  // budgets' probes. No stability check here: a cell whose iterate is
  // already a fixed point reproduces it in iteration 1 and retires
  // there, with identical final values (a stable iterate is a fixed
  // point of both governors, so extra iterations cannot move it) and
  // within the same kMaxRelaxationIters budget.
  table.mem_batch(states - 1).max_index_within(mem_thr.first(n),
                                               next_level.first(n));
  for (std::size_t i = 0; i < n; ++i) {
    if (next_level[i] < 0) next_level[i] = 0;
  }
  proc_pass(n, pending.data());
  for (std::size_t i = 0; i < n; ++i) {
    if (next_state[i] < 0) next_state[i] = fallback[i];
  }
  std::copy(next_state.begin(), next_state.end(), state.begin());
  std::copy(next_level.begin(), next_level.end(), level.begin());

  // Iteration 1: on frontier-shaped grids ~95% of iteration-0 answers
  // reproduce themselves, so confirm each governor with two gathered
  // compares per cell and rescan only the exceptions. Requires every
  // row monotone (the confirm predicate brackets the answer); tables
  // with a non-monotone curve rescan everything instead — same
  // fixed points, just without the shortcut.
  std::size_t npend = 0;
  const bool use_confirm = table.fully_monotone();
  if (use_confirm) {
    // Memory governor: does `level` reproduce against row `state`?
    std::size_t nu =
        simd::batch_confirm(mem_rows.data(), levels, state.data(),
                            level.data(), mem_thr.data(), n, nullptr,
                            sleep_c, unconf.data());
    std::copy(level.begin(), level.end(), next_level.begin());
    if (nu > 0) {
      mem_pass(nu, unconf.data());
      for (std::size_t k = 0; k < nu; ++k) {
        const auto idx = static_cast<std::size_t>(unconf[k]);
        if (next_level[idx] < 0) next_level[idx] = 0;
      }
    }
    // Processor governor: does `state` reproduce against row
    // `next_level`?
    nu = simd::batch_confirm(proc_rows.data(), states, next_level.data(),
                             state.data(), proc_thr.data(), n,
                             fallback.data(), sleep_c, unconf.data());
    std::copy(state.begin(), state.end(), next_state.begin());
    if (nu > 0) {
      proc_pass(nu, unconf.data());
      for (std::size_t k = 0; k < nu; ++k) {
        const auto idx = static_cast<std::size_t>(unconf[k]);
        if (next_state[idx] < 0) next_state[idx] = fallback[idx];
      }
    }
    // Dense advance. From iteration 1 on the previous bandwidth is
    // level_bw(level) by construction (iteration 0 assigned it), so the
    // reference's next_bw == bw stability test is exactly a level_bw
    // lookup equality — no per-cell bw lane needed.
    for (std::size_t i = 0; i < n; ++i) {
      const bool stable =
          table.level_bw(static_cast<std::size_t>(next_level[i])) ==
              table.level_bw(static_cast<std::size_t>(level[i])) &&
          next_state[i] == state[i];
      state[i] = next_state[i];
      level[i] = next_level[i];
      if (!stable) pending[npend++] = static_cast<std::int32_t>(i);
    }
  } else {
    npend = n;  // pending already holds the identity list
  }

  // Tail iterations over the (small) still-moving set.
  for (int iter = use_confirm ? 2 : 1;
       iter < kMaxRelaxationIters && npend > 0; ++iter) {
    mem_pass(npend, pending.data());
    for (std::size_t k = 0; k < npend; ++k) {
      const auto idx = static_cast<std::size_t>(pending[k]);
      if (next_level[idx] < 0) next_level[idx] = 0;
    }
    proc_pass(npend, pending.data());
    for (std::size_t k = 0; k < npend; ++k) {
      const auto idx = static_cast<std::size_t>(pending[k]);
      if (next_state[idx] < 0) next_state[idx] = fallback[idx];
    }
    std::size_t w = 0;
    for (std::size_t k = 0; k < npend; ++k) {
      const auto idx = static_cast<std::size_t>(pending[k]);
      const bool stable =
          table.level_bw(static_cast<std::size_t>(next_level[idx])) ==
              table.level_bw(static_cast<std::size_t>(level[idx])) &&
          next_state[idx] == state[idx];
      state[idx] = next_state[idx];
      level[idx] = next_level[idx];
      if (!stable) pending[w++] = pending[k];
    }
    npend = w;
  }

  // Per-segment best via the perf lane (strict > keeps the first of
  // equal perf — the max_element semantics of the per-budget path),
  // then materialize only the winners through the solve_fast epilogue.
  for (std::size_t b = 0; b < nseg; ++b) {
    const auto c0 = static_cast<std::size_t>(bounds[b]);
    const auto c1 = static_cast<std::size_t>(bounds[b + 1]);
    std::int32_t bi = -1;
    double bp = 0.0;
    for (std::size_t i = c0; i < c1; ++i) {
      const double p = perf[static_cast<std::size_t>(state[i]) * levels +
                            static_cast<std::size_t>(level[i])];
      if (bi < 0 || p > bp) {
        bp = p;
        bi = static_cast<std::int32_t>(i);
      }
    }
    if (bi < 0) {
      best[b] = AllocationSample{};
      continue;
    }
    const auto w = static_cast<std::size_t>(bi);
    AllocationSample s =
        table.sample(static_cast<std::size_t>(state[w]),
                     static_cast<std::size_t>(level[w]));
    s.proc_cap = caps[w].cpu_cap;
    s.mem_cap = caps[w].mem_cap;
    s.proc_cap_respected =
        s.proc_power.value() <= caps[w].cpu_cap.value() + kCapSlackW;
    s.mem_cap_respected =
        s.mem_power.value() <= caps[w].mem_cap.value() + kCapSlackW;
    // The final bandwidth is always level_bw(level): the loop assigns it
    // on every advance, including a cell's last.
    const double bwf = table.level_bw(static_cast<std::size_t>(level[w]));
    s.mem_region = caps[w].mem_cap.value() < mem_floor ? MemRegion::kFloor
                   : bwf < peak_bw - 1e-9 ? MemRegion::kThrottled
                                          : MemRegion::kUnthrottled;
    best[b] = s;
    assert(best[b] == solve_fast(table, caps[w].cpu_cap, caps[w].mem_cap,
                                 active_cores, nullptr));
  }
}

std::unique_ptr<const CpuOpTable> CpuNodeSim::build_table(
    int active_cores) const {
  const int cores = std::clamp(active_cores, 1, machine_.cpu.total_cores());
  const rapl::NotchLadder ladder(machine_.cpu);
  const std::size_t states = ladder.count();
  const std::size_t levels =
      static_cast<std::size_t>(machine_.dram.throttle_levels);
  std::vector<double> level_bw(levels);
  for (std::size_t l = 0; l < levels; ++l) {
    level_bw[l] = throttle_bw(static_cast<int>(l)).value();
  }
  const hw::CpuOperatingPoint sleep_op{0, machine_.cpu.min_duty(), true};
  const auto sampler = [&](std::size_t state, std::size_t level) {
    const hw::CpuOperatingPoint op =
        state < states ? ladder.op(state) : sleep_op;
    return evaluate_state(op, GBps{level_bw[level]}, cores);
  };
  // The ctor invokes `sampler`, which reads `level_bw`; hand it a separate
  // copy so argument evaluation cannot interleave with the move.
  std::vector<double> level_bw_arg = level_bw;
  return std::make_unique<const CpuOpTable>(states, std::move(level_bw_arg),
                                            sampler);
}

const CpuOpTable& CpuNodeSim::table_for(int active_cores) const {
  const int cores = std::clamp(active_cores, 1, machine_.cpu.total_cores());
  std::lock_guard<std::mutex> lock(solver_cache_->mu);
  std::unique_ptr<const CpuOpTable>& slot = solver_cache_->by_cores[cores];
  if (slot == nullptr) {
    const auto t0 = std::chrono::steady_clock::now();
    slot = build_table(cores);
    detail::record_table_build("cpu", t0);
  }
  return *slot;
}

const CpuOpTable& CpuNodeSim::prepare(int active_cores) const {
  return table_for(active_cores <= 0 ? machine_.cpu.total_cores()
                                     : active_cores);
}

AllocationSample CpuNodeSim::steady_state(Watts cpu_cap,
                                          Watts mem_cap) const noexcept {
  const int cores = machine_.cpu.total_cores();
  return solve_fast(table_for(cores), cpu_cap, mem_cap, cores, nullptr);
}

AllocationSample CpuNodeSim::steady_state_packed(int active_cores,
                                                 Watts cpu_cap,
                                                 Watts mem_cap)
    const noexcept {
  return solve_fast(table_for(active_cores), cpu_cap, mem_cap, active_cores,
                    nullptr);
}

AllocationSample CpuNodeSim::steady_state_hinted(Watts cpu_cap, Watts mem_cap,
                                                 SolveHint* hint)
    const noexcept {
  const int cores = machine_.cpu.total_cores();
  return solve_fast(table_for(cores), cpu_cap, mem_cap, cores, hint);
}

void CpuNodeSim::steady_state_batch(std::span<const CapPair> caps,
                                    std::span<AllocationSample> out,
                                    SolveArena& arena) const {
  steady_state_packed_batch(machine_.cpu.total_cores(), caps, out, arena);
}

void CpuNodeSim::steady_state_packed_batch(int active_cores,
                                           std::span<const CapPair> caps,
                                           std::span<AllocationSample> out,
                                           SolveArena& arena) const {
  solve_fast_batch(table_for(active_cores), caps, out, active_cores, arena);
}

void CpuNodeSim::steady_state_batch_best(std::span<const CapPair> caps,
                                         std::span<const std::int32_t> bounds,
                                         std::span<AllocationSample> best,
                                         SolveArena& arena) const {
  const int cores = machine_.cpu.total_cores();
  solve_fast_batch_best(table_for(cores), caps, bounds, best, cores, arena);
}

std::vector<AllocationSample> CpuNodeSim::steady_state_batch(
    std::span<const CapPair> caps) const {
  return steady_state_packed_batch(machine_.cpu.total_cores(), caps);
}

std::vector<AllocationSample> CpuNodeSim::steady_state_packed_batch(
    int active_cores, std::span<const CapPair> caps) const {
  std::vector<AllocationSample> out(caps.size());
  SolveArena& arena = thread_solve_arena();
  const auto scope = arena.scope();
  steady_state_packed_batch(active_cores, caps, out, arena);
  return out;
}

AllocationSample CpuNodeSim::reference_steady_state(
    Watts cpu_cap, Watts mem_cap) const noexcept {
  return solve_reference(cpu_cap, mem_cap, machine_.cpu.total_cores());
}

AllocationSample CpuNodeSim::reference_steady_state_packed(
    int active_cores, Watts cpu_cap, Watts mem_cap) const noexcept {
  return solve_reference(cpu_cap, mem_cap, active_cores);
}

AllocationSample CpuNodeSim::pinned(const hw::CpuOperatingPoint& op,
                                    GBps avail_bw) const noexcept {
  AllocationSample s = evaluate_state(op, avail_bw,
                                      machine_.cpu.total_cores());
  s.proc_cap = s.proc_power;
  s.mem_cap = s.mem_power;
  s.mem_region = avail_bw.value() < machine_.dram.peak_bw.value() - 1e-9
                     ? MemRegion::kThrottled
                     : MemRegion::kUnthrottled;
  return s;
}

AllocationSample CpuNodeSim::uncapped() const noexcept {
  return steady_state(Watts{1e6}, Watts{1e6});
}

PreparedCpuNode make_prepared_cpu_node(hw::CpuMachine machine,
                                       workload::Workload wl) {
  auto node =
      std::make_shared<const CpuNodeSim>(std::move(machine), std::move(wl));
  node->prepare();
  return node;
}

}  // namespace pbc::sim
