#include "sim/gpu_node.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <mutex>
#include <utility>

#include "sim/instrumentation.hpp"
#include "sim/solve_arena.hpp"

// Pin the state evaluator to one instantiation so both solver paths feed
// bit-identical operands to the workload model (see cpu_node.cpp).
#if defined(__GNUC__) || defined(__clang__)
#define PBC_NOINLINE __attribute__((noinline))
#else
#define PBC_NOINLINE
#endif

namespace pbc::sim {

namespace {
constexpr double kCapSlackW = 0.01;
}

namespace detail {
/// The lazily built operating-point table; shared across copies of the
/// node and guarded by `mu`.
struct GpuSolverCache {
  std::mutex mu;
  std::unique_ptr<const GpuOpTable> table;
};
}  // namespace detail

GpuNodeSim::GpuNodeSim(hw::GpuMachine machine, workload::Workload wl)
    : machine_(std::move(machine)),
      wl_(std::move(wl)),
      gpu_(machine_.gpu),
      solver_cache_(std::make_shared<detail::GpuSolverCache>()) {
  assert(wl_.validate().ok());
  assert(wl_.domain == workload::Domain::kGpu);
}

PBC_NOINLINE AllocationSample GpuNodeSim::evaluate_state(
    std::size_t sm_step, std::size_t mem_clock_index) const noexcept {
  workload::PhaseOperands operands;
  operands.compute_capacity = gpu_.compute_capacity(sm_step);
  operands.avail_bw = gpu_.mem_bandwidth(mem_clock_index);
  // The latency ceiling references the card's best bandwidth at nominal
  // memory clock; lowering the SM clock reduces issue capability.
  operands.peak_bw = gpu_.mem_bandwidth(gpu_.mem_clock_count() - 1);
  operands.rel_clock =
      gpu_.sm_clock_mhz(sm_step) / machine_.gpu.sm_max_mhz;

  const workload::WorkloadResult res = workload::evaluate(wl_, operands);

  AllocationSample s;
  s.perf = res.metric;
  s.rate_gunits = res.rate_gunits;
  // proc_* covers SMs plus board overhead so component powers sum to board
  // power; mem_* is the memory domain alone.
  s.proc_power = gpu_.sm_power(sm_step, res.activity_eff) +
                 machine_.gpu.other_power;
  s.mem_power = gpu_.mem_power(mem_clock_index, res.achieved_bw);
  s.sm_step = sm_step;
  s.mem_clock_index = mem_clock_index;
  s.compute_util = res.compute_util;
  s.mem_util = res.mem_util;
  s.avail_bw = operands.avail_bw;
  s.achieved_bw = res.achieved_bw;
  s.proc_region = ProcRegion::kPState;  // GPUs only DVFS; no T/C analogue
  s.mem_region = mem_clock_index + 1 == gpu_.mem_clock_count()
                     ? MemRegion::kUnthrottled
                     : MemRegion::kThrottled;
  return s;
}

const GpuOpTable& GpuNodeSim::table() const {
  std::lock_guard<std::mutex> lock(solver_cache_->mu);
  if (solver_cache_->table == nullptr) {
    const auto t0 = std::chrono::steady_clock::now();
    const std::size_t steps = gpu_.sm_step_count();
    const std::size_t clocks = gpu_.mem_clock_count();
    std::vector<Watts> est_mem(clocks);
    for (std::size_t c = 0; c < clocks; ++c) {
      est_mem[c] = gpu_.estimated_mem_power(c);
    }
    solver_cache_->table = std::make_unique<const GpuOpTable>(
        steps, clocks,
        [this](std::size_t step, std::size_t clock) {
          return evaluate_state(step, clock);
        },
        std::move(est_mem));
    detail::record_table_build("gpu", t0);
  }
  return *solver_cache_->table;
}

const GpuOpTable& GpuNodeSim::prepare() const { return table(); }

AllocationSample GpuNodeSim::solve_fast(const GpuOpTable& t,
                                        std::size_t mem_clock_index,
                                        Watts board_cap, bool reclaim,
                                        SolveHint* hint) const noexcept {
  const auto& spec = machine_.gpu;
  const Watts cap = clamp(board_cap, spec.board_min_cap, spec.board_max_cap);
  const std::size_t mem_idx =
      std::min(mem_clock_index, t.clock_count() - 1);
  const Watts est_mem = t.est_mem(mem_idx);
  const int seed = hint != nullptr ? hint->state : -1;

  double sm_budget = 0.0;
  int idx;
  if (reclaim) {
    idx = t.board_response(cap.value() + kCapSlackW, mem_idx, seed);
  } else {
    // The SM domain may only use the budget left after the *worst-case*
    // memory power — unused memory watts are simply stranded.
    sm_budget = cap.value() - est_mem.value();
    idx = t.sm_response(sm_budget + kCapSlackW, mem_idx, seed);
  }
  // No step fits: the reference walk falls through to the lowest step
  // (rare: min caps are set above this point by the driver).
  const std::size_t step = idx < 0 ? 0 : static_cast<std::size_t>(idx);

  AllocationSample s = t.sample(step, mem_idx);
  s.mem_cap = est_mem;
  if (reclaim) {
    s.proc_cap = Watts{std::max(cap.value() - est_mem.value(), 0.0)};
    s.proc_cap_respected = true;  // board capper always converges
  } else {
    s.proc_cap = Watts{std::max(sm_budget, 0.0)};
    s.proc_cap_respected =
        s.proc_power.value() <= std::max(sm_budget, 0.0) + kCapSlackW;
  }
  s.mem_cap_respected =
      s.mem_power.value() <= est_mem.value() + kCapSlackW;
  assert(s == (reclaim
                   ? reference_steady_state(mem_clock_index, board_cap)
                   : reference_steady_state_no_reclaim(mem_clock_index,
                                                       board_cap)));
  if (hint != nullptr) hint->state = static_cast<int>(step);
  return s;
}

AllocationSample GpuNodeSim::steady_state(std::size_t mem_clock_index,
                                          Watts board_cap) const noexcept {
  return solve_fast(table(), mem_clock_index, board_cap, /*reclaim=*/true,
                    nullptr);
}

AllocationSample GpuNodeSim::steady_state_no_reclaim(
    std::size_t mem_clock_index, Watts board_cap) const noexcept {
  return solve_fast(table(), mem_clock_index, board_cap, /*reclaim=*/false,
                    nullptr);
}

void GpuNodeSim::steady_state_batch(std::size_t mem_clock_index,
                                    std::span<const Watts> caps,
                                    std::span<AllocationSample> out,
                                    SolveArena& arena) const {
  assert(out.size() == caps.size());
  const GpuOpTable& t = table();
  const std::size_t n = caps.size();
  if (n == 0) return;
  const auto& spec = machine_.gpu;
  const std::size_t mem_idx = std::min(mem_clock_index, t.clock_count() - 1);
  const Watts est_mem = t.est_mem(mem_idx);

  const auto scope = arena.scope();
  const auto clamped = arena.get<double>(n);
  const auto thr = arena.get<double>(n);
  const auto idx = arena.get<std::int32_t>(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Same clamp and threshold as solve_fast (reclaim path), per cell.
    clamped[i] =
        clamp(caps[i], spec.board_min_cap, spec.board_max_cap).value();
    thr[i] = clamped[i] + kCapSlackW;
  }
  t.board_batch(mem_idx).max_index_within(thr, idx);

  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t step =
        idx[i] < 0 ? 0 : static_cast<std::size_t>(idx[i]);
    // The solve_fast (reclaim) epilogue, per cell.
    AllocationSample s = t.sample(step, mem_idx);
    s.mem_cap = est_mem;
    s.proc_cap = Watts{std::max(clamped[i] - est_mem.value(), 0.0)};
    s.proc_cap_respected = true;  // board capper always converges
    s.mem_cap_respected =
        s.mem_power.value() <= est_mem.value() + kCapSlackW;
    out[i] = s;
    assert(out[i] == steady_state(mem_clock_index, caps[i]));
  }
}

void GpuNodeSim::steady_state_batch_best(std::span<const Watts> caps,
                                         std::span<AllocationSample> best,
                                         SolveArena& arena) const {
  assert(best.size() == caps.size());
  const GpuOpTable& t = table();
  const std::size_t n = caps.size();
  if (n == 0) return;
  const auto& spec = machine_.gpu;
  const std::size_t clocks = t.clock_count();
  const std::size_t steps = t.step_count();
  const std::span<const double> perf = t.perf_rows();  // [clock][step]

  const auto scope = arena.scope();
  const auto clamped = arena.get<double>(n);
  const auto thr = arena.get<double>(n);
  const auto idx = arena.get<std::int32_t>(n);
  const auto best_perf = arena.get<double>(n);
  const auto best_clock = arena.get<std::int32_t>(n);
  const auto best_step = arena.get<std::int32_t>(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Same clamp and threshold as solve_fast (reclaim path), per cell —
    // the clamp is clock-independent, so one pass serves every clock.
    clamped[i] =
        clamp(caps[i], spec.board_min_cap, spec.board_max_cap).value();
    thr[i] = clamped[i] + kCapSlackW;
    best_clock[i] = -1;
  }

  // One vectorized curve scan per clock; the running reduction keeps the
  // first clock of maximal perf. Strict > with the first-clock seed
  // replicates BudgetSweep::best()'s max_element over ascending clocks,
  // and the SoA perf lane holds the exact doubles sample(...).perf holds.
  for (std::size_t c = 0; c < clocks; ++c) {
    t.board_batch(c).max_index_within(thr, idx);
    const double* lane = perf.data() + c * steps;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t step =
          idx[i] < 0 ? 0 : static_cast<std::size_t>(idx[i]);
      const double p = lane[step];
      if (best_clock[i] < 0 || p > best_perf[i]) {
        best_perf[i] = p;
        best_clock[i] = static_cast<std::int32_t>(c);
        best_step[i] = static_cast<std::int32_t>(step);
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    // The solve_fast (reclaim) epilogue for the winning clock only.
    const auto c = static_cast<std::size_t>(best_clock[i]);
    const Watts est_mem = t.est_mem(c);
    AllocationSample s = t.sample(static_cast<std::size_t>(best_step[i]), c);
    s.mem_cap = est_mem;
    s.proc_cap = Watts{std::max(clamped[i] - est_mem.value(), 0.0)};
    s.proc_cap_respected = true;  // board capper always converges
    s.mem_cap_respected =
        s.mem_power.value() <= est_mem.value() + kCapSlackW;
    best[i] = s;
#ifndef NDEBUG
    AllocationSample ref = steady_state(0, caps[i]);
    for (std::size_t k = 1; k < clocks; ++k) {
      const AllocationSample cand = steady_state(k, caps[i]);
      if (cand.perf > ref.perf) ref = cand;
    }
    assert(best[i] == ref);
#endif
  }
}

std::vector<AllocationSample> GpuNodeSim::steady_state_batch(
    std::size_t mem_clock_index, std::span<const Watts> caps) const {
  std::vector<AllocationSample> out(caps.size());
  SolveArena& arena = thread_solve_arena();
  const auto scope = arena.scope();
  steady_state_batch(mem_clock_index, caps, out, arena);
  return out;
}

AllocationSample GpuNodeSim::reference_steady_state(
    std::size_t mem_clock_index, Watts board_cap) const noexcept {
  const auto& spec = machine_.gpu;
  const Watts cap = clamp(board_cap, spec.board_min_cap, spec.board_max_cap);
  const std::size_t mem_idx =
      std::min(mem_clock_index, gpu_.mem_clock_count() - 1);

  // Board capper: highest SM step whose total board power fits the cap.
  AllocationSample chosen = evaluate_state(0, mem_idx);
  for (std::size_t step = gpu_.sm_step_count(); step-- > 0;) {
    AllocationSample s = evaluate_state(step, mem_idx);
    if (s.total_power().value() <= cap.value() + kCapSlackW) {
      chosen = s;
      break;
    }
    if (step == 0) chosen = s;  // lowest step even if over (rare: min caps
                                // are set above this point by the driver)
  }

  const Watts est_mem = gpu_.estimated_mem_power(mem_idx);
  chosen.mem_cap = est_mem;
  chosen.proc_cap = Watts{std::max(cap.value() - est_mem.value(), 0.0)};
  chosen.proc_cap_respected = true;  // board capper always converges
  chosen.mem_cap_respected =
      chosen.mem_power.value() <= est_mem.value() + kCapSlackW;
  return chosen;
}

AllocationSample GpuNodeSim::default_policy(Watts board_cap) const noexcept {
  return steady_state(gpu_.mem_clock_count() - 1, board_cap);
}

AllocationSample GpuNodeSim::reference_steady_state_no_reclaim(
    std::size_t mem_clock_index, Watts board_cap) const noexcept {
  const auto& spec = machine_.gpu;
  const Watts cap = clamp(board_cap, spec.board_min_cap, spec.board_max_cap);
  const std::size_t mem_idx =
      std::min(mem_clock_index, gpu_.mem_clock_count() - 1);
  const Watts est_mem = gpu_.estimated_mem_power(mem_idx);
  // The SM domain may only use the budget left after the *worst-case*
  // memory power — unused memory watts are simply stranded.
  const double sm_budget = cap.value() - est_mem.value();

  AllocationSample chosen = evaluate_state(0, mem_idx);
  for (std::size_t step = gpu_.sm_step_count(); step-- > 0;) {
    AllocationSample s = evaluate_state(step, mem_idx);
    if (s.proc_power.value() <= sm_budget + kCapSlackW) {
      chosen = s;
      break;
    }
    if (step == 0) chosen = s;
  }
  chosen.mem_cap = est_mem;
  chosen.proc_cap = Watts{std::max(sm_budget, 0.0)};
  chosen.proc_cap_respected =
      chosen.proc_power.value() <= std::max(sm_budget, 0.0) + kCapSlackW;
  chosen.mem_cap_respected =
      chosen.mem_power.value() <= est_mem.value() + kCapSlackW;
  return chosen;
}

AllocationSample GpuNodeSim::pinned(std::size_t sm_step,
                                    std::size_t mem_clock_index)
    const noexcept {
  AllocationSample s = evaluate_state(sm_step, mem_clock_index);
  s.proc_cap = s.proc_power;
  s.mem_cap = s.mem_power;
  return s;
}

Watts GpuNodeSim::uncapped_board_power() const noexcept {
  return evaluate_state(gpu_.sm_step_count() - 1, gpu_.mem_clock_count() - 1)
      .total_power();
}

PreparedGpuNode make_prepared_gpu_node(hw::GpuMachine machine,
                                       workload::Workload wl) {
  auto node =
      std::make_shared<const GpuNodeSim>(std::move(machine), std::move(wl));
  node->prepare();
  return node;
}

}  // namespace pbc::sim
