// Time-stepped simulation of the GPU board power capper.
//
// The board firmware samples power continuously and DVFSes the SMs to keep
// the running average at the limit (Nvidia's power capping acts on ~100 ms
// horizons). GpuBoardEngine plays that loop out tick by tick at a fixed
// memory clock, cross-validating sim::GpuNodeSim's fixed point the same
// way sim::RaplEngine validates sim::CpuNodeSim.
#pragma once

#include <vector>

#include "hw/machine.hpp"
#include "sim/measurement.hpp"
#include "workload/workload.hpp"

namespace pbc::sim {

struct GpuEngineConfig {
  Seconds tick{0.001};
  Seconds window{0.1};  ///< board capper averaging horizon
  Seconds duration{1.5};
  Seconds warmup{0.3};
};

struct GpuTimedRun {
  AllocationSample aggregate;
  /// Fraction of post-warmup ticks whose window-average board power
  /// exceeded the cap by more than 1 W.
  double overshoot_frac = 0.0;
  /// SM DVFS steps taken (residency changes) after warmup — a dithering
  /// indicator.
  std::size_t sm_transitions = 0;
};

class GpuBoardEngine {
 public:
  GpuBoardEngine(hw::GpuMachine machine, workload::Workload wl,
                 GpuEngineConfig config = {});

  /// Runs at a fixed memory clock under a board cap (clamped to the
  /// driver range, like the steady-state simulator).
  [[nodiscard]] GpuTimedRun run(std::size_t mem_clock_index,
                                Watts board_cap) const;

 private:
  hw::GpuMachine machine_;
  workload::Workload wl_;
  hw::GpuModel gpu_;
  GpuEngineConfig config_;
};

}  // namespace pbc::sim
