// Allocation-space sweeps — the experimental methodology of the paper.
//
// For a fixed total budget P_b, a CPU sweep walks the split
// (P_cpu, P_mem) = (P_b − m, m) over a grid of memory caps; a GPU sweep
// walks the supported memory clocks under a board cap. Budget sweeps repeat
// this over many totals. Grids are embarrassingly parallel and run on the
// shared thread pool.
//
// Sweeps run on the fast table-driven solver by default, with each split's
// solve warm-started from the previous grid point's fixed point; selecting
// SolverPath::kReference routes every solve through the retained reference
// implementation instead. Both paths yield bit-identical samples.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "sim/cpu_node.hpp"
#include "sim/gpu_node.hpp"
#include "util/thread_pool.hpp"

namespace pbc::sim {

struct CpuSweepOptions {
  /// Lowest memory cap probed (the paper sweeps from below the DRAM floor).
  Watts mem_lo{40.0};
  /// Lowest processor cap probed (mem_hi = budget − proc_lo).
  Watts proc_lo{32.0};
  /// Grid stepping between successive memory caps.
  Watts step{4.0};
  /// Which solver implementation runs the splits.
  SolverPath path = SolverPath::kFast;
  /// Budgets per blocked-relaxation tile in the budget-sweep drivers: the
  /// (budget x split) grid is cut into blocks of this many budgets, each
  /// block's split grids concatenated and relaxed in one batched pass so
  /// every SoA table row streamed by the solver services a whole block of
  /// budgets. Purely a scheduling knob — results are bit-identical for
  /// every value (the tile-invariance test pins this). Values < 1 tile
  /// one budget at a time.
  std::size_t budget_block = 32;
};

/// The (cpu_cap, mem_cap) split grid a CPU sweep probes for one budget, in
/// ascending mem_cap order. Exposed so batched drivers and the query
/// service can solve the exact sweep grid without materializing samples.
[[nodiscard]] std::vector<CapPair> cpu_split_grid(
    Watts budget, const CpuSweepOptions& opt = {});

/// All split samples for one total budget, in ascending mem_cap order.
[[nodiscard]] std::vector<AllocationSample> sweep_cpu_split(
    const CpuNodeSim& node, Watts budget, const CpuSweepOptions& opt = {});

/// The best-performing split for one budget (ties resolved to the lowest
/// mem_cap, matching BudgetSweep::best() on the full sweep), without
/// keeping the whole sweep alive. nullopt for an empty grid.
[[nodiscard]] std::optional<AllocationSample> sweep_cpu_split_best(
    const CpuNodeSim& node, Watts budget, const CpuSweepOptions& opt = {});

/// One memory-clock sample per supported clock under the board cap, in
/// ascending clock (== ascending estimated memory power) order.
[[nodiscard]] std::vector<AllocationSample> sweep_gpu_split(
    const GpuNodeSim& node, Watts board_cap,
    SolverPath path = SolverPath::kFast);

/// A full split sweep at one budget.
struct BudgetSweep {
  Watts budget{0.0};
  std::vector<AllocationSample> samples;

  /// The best-performing sample (the paper's "best found in the
  /// experimental dataset" oracle).
  [[nodiscard]] const AllocationSample* best() const noexcept;
};

/// Sweeps several budgets in parallel on `pool` (global pool if null).
/// The fast path tiles the (budget x split) grid by opt.budget_block —
/// one concatenated batch solve per tile — and is bit-identical to the
/// per-budget sweep for every block size.
[[nodiscard]] std::vector<BudgetSweep> sweep_cpu_budgets(
    const CpuNodeSim& node, std::span<const Watts> budgets,
    const CpuSweepOptions& opt = {}, ThreadPool* pool = nullptr);

[[nodiscard]] std::vector<BudgetSweep> sweep_gpu_budgets(
    const GpuNodeSim& node, std::span<const Watts> board_caps,
    SolverPath path = SolverPath::kFast, ThreadPool* pool = nullptr);

/// Best split per budget without materializing any sweep: the blocked
/// frontier driver. Budgets are tiled by opt.budget_block; each tile's
/// split grids are concatenated and handed to the blocked best-split
/// engine (CpuNodeSim::steady_state_batch_best), which relaxes the whole
/// tile in one batched pass and materializes only each budget's winner.
/// out[i] is bit-identical to sweep_cpu_split_best(node, budgets[i], opt)
/// for every block size (nullopt for empty grids).
[[nodiscard]] std::vector<std::optional<AllocationSample>>
sweep_cpu_budgets_best(const CpuNodeSim& node, std::span<const Watts> budgets,
                       const CpuSweepOptions& opt = {},
                       ThreadPool* pool = nullptr);

/// Best memory clock per board cap without materializing any sweep; the
/// batched GPU frontier driver (GpuNodeSim::steady_state_batch_best).
/// out[i] is bit-identical to sweep_gpu_budgets' BudgetSweep::best() for
/// board_caps[i]. GPU clock grids are never empty, so every entry is
/// engaged; the optional keeps the two frontier drivers' shapes aligned.
[[nodiscard]] std::vector<std::optional<AllocationSample>>
sweep_gpu_budgets_best(const GpuNodeSim& node,
                       std::span<const Watts> board_caps,
                       SolverPath path = SolverPath::kFast,
                       ThreadPool* pool = nullptr);

/// Evenly spaced budget grid over [lo, hi]. Both endpoints are always
/// included: when the step does not land on hi, hi is appended as a final
/// (shorter) interval. Degenerate requests (step <= 0, hi < lo) return an
/// empty grid.
[[nodiscard]] std::vector<Watts> budget_grid(Watts lo, Watts hi, Watts step);

/// Aggregate reporting statistics over a sweep's samples. The sums run
/// through simd::lane_sum — the one ULP-waived kernel (docs/solver.md
/// policy table) — so totals may differ from a sequential sum within the
/// documented bound. Reporting only: nothing here feeds solver state.
struct SweepStats {
  std::size_t count = 0;
  double total_perf = 0.0;
  double mean_perf = 0.0;
  double max_perf = 0.0;
  /// Sum over samples of proc_power + mem_power, in watts.
  double total_power_w = 0.0;
};

[[nodiscard]] SweepStats sweep_stats(
    std::span<const AllocationSample> samples);

}  // namespace pbc::sim
