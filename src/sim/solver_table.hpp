// Precomputed operating-point tables and monotone best-response curves —
// the fast evaluation layer behind CpuNodeSim / GpuNodeSim.
//
// The steady-state governors (§3.3) pick, per component, the shallowest
// power-saving state whose measured power fits the cap. The reference
// implementation re-evaluates the full workload model for every ladder
// notch / throttle level it walks past, on every relaxation iteration,
// at every grid point. But for a fixed (machine, workload, active_cores)
// the set of reachable hardware states is a small finite grid: every
// (notch, throttle-level) pair. This module precomputes the full
// AllocationSample at each grid cell once, and turns each governor's
// linear walk into a bisection over the cell powers:
//
//   * A top-down first-fit walk ("shallowest state with power <= cap")
//     returns exactly max{ i : power[i] <= threshold } — independent of
//     whether the curve is monotone. Power is monotone non-decreasing in
//     the escalation index for physical models (FastCap's observation),
//     so the max-index query is a plain bisection; the rare non-monotone
//     curve (checked at build time) falls back to a sorted-order +
//     prefix-max index with identical exact semantics.
//   * Warm starts ("the neighbouring grid point's fixed point") enter the
//     bisection as a gallop hint: they bracket the boundary faster but can
//     never change the answer, so fast results stay bit-identical to the
//     reference walk (docs/solver.md: the warm-start invariant).
//
// Tables are built lazily, once per node (per active-core count on the
// CPU side), and shared by all threads sweeping that node.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "sim/measurement.hpp"
#include "util/units.hpp"

namespace pbc::sim {

/// One power-vs-state curve with an exact max-index-under-threshold query:
/// answers max{ i : power[i] <= threshold } (or -1 when no index fits),
/// bit-identically to a top-down linear first-fit walk over the same
/// values. Monotone (non-decreasing) curves — the physical case — use
/// bisection; non-monotone curves use a sorted order + prefix-max index
/// that preserves the exact semantics.
class ResponseCurve {
 public:
  ResponseCurve() = default;
  explicit ResponseCurve(std::vector<double> power);

  /// max{ i : power[i] <= threshold }, or -1.
  [[nodiscard]] int max_index_within(double threshold) const noexcept;

  /// Same query, warm-started: `hint` (a previously returned index) seeds
  /// an exponential gallop that brackets the boundary before bisecting.
  /// Returns exactly what the unhinted query returns for every input.
  [[nodiscard]] int max_index_within(double threshold,
                                     int hint) const noexcept;

  [[nodiscard]] bool monotone() const noexcept { return monotone_; }
  [[nodiscard]] std::size_t size() const noexcept { return power_.size(); }
  [[nodiscard]] double power_at(std::size_t i) const noexcept {
    return power_[i];
  }
  /// The stored curve values, contiguous — what the SIMD batch kernels
  /// stream over. Same doubles the scalar queries compare against.
  [[nodiscard]] std::span<const double> powers() const noexcept {
    return power_;
  }
  /// Non-monotone fallback index (empty for monotone curves): the curve
  /// values sorted non-decreasing, and the running max of their original
  /// indices — the lanes simd::batch_max_index_prefix gathers over.
  [[nodiscard]] std::span<const double> sorted_powers() const noexcept {
    return sorted_power_;
  }
  [[nodiscard]] std::span<const std::int32_t> prefix_max() const noexcept {
    return prefix_max_;
  }

 private:
  /// The literal top-down first-fit walk; debug builds cross-check every
  /// bisection answer against it.
  [[nodiscard]] int linear_walk(double threshold) const noexcept;

  std::vector<double> power_;
  bool monotone_ = true;
  // Non-monotone fallback: indices sorted ascending by power, and the
  // running max of those indices; max_index_within(thr) is then
  // prefix_max_[upper_bound(sorted_power_, thr) - 1].
  std::vector<std::int32_t> order_;
  std::vector<std::int32_t> prefix_max_;
  std::vector<double> sorted_power_;
};

/// Batched view over one response curve: answers the exact
/// max-index-within query for a whole span of thresholds per call.
/// Monotone curves (the physical case) route through the runtime-
/// dispatched SIMD count kernel — bit-identical to the scalar bisection
/// because both compare the same stored doubles with the same <=
/// predicate (docs/solver.md: exactness policy). Non-monotone curves
/// route through the gather-based prefix-max kernel
/// (simd::batch_max_index_prefix), equally exact on every tier.
class ResponseCurveBatch {
 public:
  explicit ResponseCurveBatch(const ResponseCurve& curve) noexcept
      : power_(curve.powers()), curve_(&curve) {}

  /// View over an SoA row holding bit-identical copies of `exact`'s
  /// values (how the op tables hand out cache-contiguous lanes).
  ResponseCurveBatch(std::span<const double> power,
                     const ResponseCurve& exact) noexcept
      : power_(power), curve_(&exact) {}

  /// out[j] = max{ i : power[i] <= thresholds[j] }, or -1. Requires
  /// out.size() == thresholds.size().
  void max_index_within(std::span<const double> thresholds,
                        std::span<std::int32_t> out) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return power_.size(); }
  [[nodiscard]] bool monotone() const noexcept { return curve_->monotone(); }

 private:
  std::span<const double> power_;
  const ResponseCurve* curve_;
};

/// Warm-start carry between consecutive solves of a batch/sweep: the
/// previous fixed point's state and throttle level, used purely as gallop
/// hints (never as an alternate starting iterate).
struct SolveHint {
  int state = -1;
  int level = -1;
};

/// A (cpu_cap, mem_cap) pair for the batched steady-state entry points.
struct CapPair {
  Watts cpu_cap{0.0};
  Watts mem_cap{0.0};
};

/// Precomputed CPU operating-point table for one (machine, workload,
/// active_cores): the full AllocationSample at every (escalation-ladder
/// state, DRAM throttle level) cell, plus one forced-sleep row (ladder
/// fallback when the cap sits below the package floor), plus the
/// best-response curves both governors bisect.
///
/// Layout: row-major cells_[state * level_count + level] with
/// state in [0, ladder_states()] — state == sleep_state() is the sleep
/// row — and level in [0, level_count()).
class CpuOpTable {
 public:
  /// `sample(state, level)` must evaluate the node at ladder state
  /// `state` (or forced sleep when state == ladder_states) under the
  /// throttle bandwidth of `level`; `level_bw[level]` must be the exact
  /// bandwidth value the reference governor computes for that level.
  using Sampler =
      std::function<AllocationSample(std::size_t state, std::size_t level)>;

  CpuOpTable(std::size_t ladder_states, std::vector<double> level_bw,
             const Sampler& sample);

  [[nodiscard]] std::size_t ladder_states() const noexcept { return states_; }
  [[nodiscard]] std::size_t sleep_state() const noexcept { return states_; }
  [[nodiscard]] std::size_t level_count() const noexcept {
    return level_bw_.size();
  }
  [[nodiscard]] double level_bw(std::size_t level) const noexcept {
    return level_bw_[level];
  }
  [[nodiscard]] const AllocationSample& sample(
      std::size_t state, std::size_t level) const noexcept {
    return cells_[state * level_count() + level];
  }

  /// Processor governor: max ladder state (sleep row excluded) whose
  /// proc_power fits the threshold at this level, or -1.
  [[nodiscard]] int proc_response(double threshold, std::size_t level,
                                  int hint = -1) const noexcept;

  /// Memory governor: max throttle level whose mem_power fits the
  /// threshold in this state's row, or -1.
  [[nodiscard]] int mem_response(double threshold, std::size_t state,
                                 int hint = -1) const noexcept;

  /// Batched governors over the SoA power rows: one contiguous lane per
  /// curve, answering whole threshold spans per call. Bit-identical to
  /// the scalar proc_response / mem_response queries.
  [[nodiscard]] ResponseCurveBatch proc_batch(
      std::size_t level) const noexcept {
    return {{proc_power_soa_.data() + level * states_, states_},
            proc_curves_[level]};
  }
  [[nodiscard]] ResponseCurveBatch mem_batch(
      std::size_t state) const noexcept {
    return {{mem_power_soa_.data() + state * level_count(), level_count()},
            mem_curves_[state]};
  }

  /// True when every best-response curve was monotone at build time (the
  /// expected case; non-monotone curves still answer exactly).
  [[nodiscard]] bool fully_monotone() const noexcept {
    return fully_monotone_;
  }

  [[nodiscard]] std::size_t cell_count() const noexcept {
    return cells_.size();
  }

  /// Raw SoA lanes for the blocked relaxation (cpu_node.cpp): the same
  /// bit-identical power copies the batch views wrap, plus a perf lane
  /// (cells_[...].perf in [state][level] order, sleep row included) so
  /// the per-budget best reduction never touches the wide sample cells.
  [[nodiscard]] std::span<const double> proc_power_rows() const noexcept {
    return proc_power_soa_;  // [level][state]
  }
  [[nodiscard]] std::span<const double> mem_power_rows() const noexcept {
    return mem_power_soa_;  // [state][level], incl. sleep row
  }
  [[nodiscard]] std::span<const double> perf_rows() const noexcept {
    return perf_soa_;  // [state][level], incl. sleep row
  }

 private:
  std::size_t states_ = 0;
  std::vector<double> level_bw_;
  std::vector<AllocationSample> cells_;     // (states_ + 1) x levels
  std::vector<ResponseCurve> proc_curves_;  // one per level, over states
  std::vector<ResponseCurve> mem_curves_;   // one per state (incl. sleep)
  // SoA power lanes for the batch kernels: bit-identical copies of the
  // curve values, packed so each curve's lane is one contiguous row.
  std::vector<double> proc_power_soa_;  // [level][state], levels x states
  std::vector<double> mem_power_soa_;   // [state][level], (states+1) x levels
  std::vector<double> perf_soa_;        // [state][level], (states+1) x levels
  bool fully_monotone_ = true;
};

/// Precomputed GPU operating-point table: the full AllocationSample at
/// every (SM DVFS step, memory clock) cell, the board capper's
/// total-power curves, the no-reclaim SM-power curves, and the estimated
/// memory power per clock.
class GpuOpTable {
 public:
  using Sampler =
      std::function<AllocationSample(std::size_t step, std::size_t clock)>;

  GpuOpTable(std::size_t sm_steps, std::size_t mem_clocks,
             const Sampler& sample, std::vector<Watts> est_mem);

  [[nodiscard]] std::size_t step_count() const noexcept { return steps_; }
  [[nodiscard]] std::size_t clock_count() const noexcept {
    return est_mem_.size();
  }
  [[nodiscard]] const AllocationSample& sample(
      std::size_t step, std::size_t clock) const noexcept {
    return cells_[step * clock_count() + clock];
  }
  [[nodiscard]] Watts est_mem(std::size_t clock) const noexcept {
    return est_mem_[clock];
  }

  /// Board capper: max SM step whose total board power fits, or -1.
  [[nodiscard]] int board_response(double threshold, std::size_t clock,
                                   int hint = -1) const noexcept;

  /// No-reclaim ablation: max SM step whose SM-domain power fits, or -1.
  [[nodiscard]] int sm_response(double threshold, std::size_t clock,
                                int hint = -1) const noexcept;

  /// Batched cappers over the SoA power rows; bit-identical to the
  /// scalar board_response / sm_response queries.
  [[nodiscard]] ResponseCurveBatch board_batch(
      std::size_t clock) const noexcept {
    return {{total_power_soa_.data() + clock * steps_, steps_},
            total_curves_[clock]};
  }
  [[nodiscard]] ResponseCurveBatch sm_batch(std::size_t clock) const noexcept {
    return {{sm_power_soa_.data() + clock * steps_, steps_},
            sm_curves_[clock]};
  }

  [[nodiscard]] bool fully_monotone() const noexcept {
    return fully_monotone_;
  }

  /// Perf lane in [clock][step] order (cells_ are step-major, so this is
  /// the transposed copy the batched frontier best-reduction streams
  /// over without touching the wide sample cells).
  [[nodiscard]] std::span<const double> perf_rows() const noexcept {
    return perf_soa_;
  }

 private:
  std::size_t steps_ = 0;
  std::vector<AllocationSample> cells_;      // steps x clocks
  std::vector<ResponseCurve> total_curves_;  // one per clock, over steps
  std::vector<ResponseCurve> sm_curves_;     // one per clock, over steps
  // SoA power lanes, one contiguous row per clock (see CpuOpTable).
  std::vector<double> total_power_soa_;  // [clock][step], clocks x steps
  std::vector<double> sm_power_soa_;     // [clock][step], clocks x steps
  std::vector<double> perf_soa_;         // [clock][step], clocks x steps
  std::vector<Watts> est_mem_;
  bool fully_monotone_ = true;
};

}  // namespace pbc::sim
