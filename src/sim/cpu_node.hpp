// Steady-state simulator for a CPU node under per-component power caps.
//
// Reproduces what Intel RAPL converges to (§3.3): each power-limit domain
// (PKG, DRAM) independently picks the shallowest power-saving state that
// keeps its measured power under its cap — DVFS first, then clock
// throttling, then the floor for the package; bandwidth throttle states for
// DRAM. Because the domains interact through the workload (a throttled CPU
// issues fewer memory requests; throttled DRAM stalls the CPU), the steady
// state is the fixed point of the two governors' best responses, found by
// alternating relaxation.
#pragma once

#include "hw/machine.hpp"
#include "sim/measurement.hpp"
#include "workload/workload.hpp"

namespace pbc::sim {

/// Closed-form steady-state evaluation of (workload × machine × caps).
class CpuNodeSim {
 public:
  CpuNodeSim(hw::CpuMachine machine, workload::Workload wl);

  [[nodiscard]] const hw::CpuMachine& machine() const noexcept {
    return machine_;
  }
  [[nodiscard]] const workload::Workload& wl() const noexcept { return wl_; }

  /// Steady state reached under the given caps. Caps below the hardware
  /// floors are accepted but will be reported as not respected.
  [[nodiscard]] AllocationSample steady_state(Watts cpu_cap,
                                              Watts mem_cap) const noexcept;

  /// Steady state with the processor pinned to an operating point and DRAM
  /// granted the given bandwidth. Mirrors userspace DVFS pinning, which is
  /// how the lightweight profiler measures critical power values without a
  /// full sweep.
  [[nodiscard]] AllocationSample pinned(
      const hw::CpuOperatingPoint& op, GBps avail_bw) const noexcept;

  /// Steady state with the workload packed onto `active_cores` of the
  /// package (the remaining cores idle and contribute leakage only), under
  /// the usual caps. The thread-packing knob of Pack & Cap (Cochran et
  /// al., the paper's ref. [11]): fewer cores under a cap can afford a
  /// higher clock. active_cores is clamped to [1, total_cores].
  [[nodiscard]] AllocationSample steady_state_packed(
      int active_cores, Watts cpu_cap, Watts mem_cap) const noexcept;

  /// Convenience: run completely uncapped (both components at maximum).
  [[nodiscard]] AllocationSample uncapped() const noexcept;

  [[nodiscard]] const hw::CpuModel& cpu_model() const noexcept { return cpu_; }
  [[nodiscard]] const hw::DramModel& dram_model() const noexcept {
    return dram_;
  }

 private:
  /// Evaluates workload + power at a fully specified hardware state with
  /// `active_cores` of the package running the workload (the rest idle).
  [[nodiscard]] AllocationSample evaluate_state(
      const hw::CpuOperatingPoint& op, GBps avail_bw,
      int active_cores) const noexcept;

  /// Processor governor best response: shallowest state with power ≤ cap.
  [[nodiscard]] hw::CpuOperatingPoint proc_best_response(
      Watts cap, GBps avail_bw, int active_cores) const noexcept;

  /// Memory governor best response: highest throttle bandwidth with
  /// power ≤ cap, given the processor state.
  [[nodiscard]] GBps mem_best_response(
      Watts cap, const hw::CpuOperatingPoint& op,
      int active_cores) const noexcept;

  /// Shared fixed-point loop.
  [[nodiscard]] AllocationSample solve(Watts cpu_cap, Watts mem_cap,
                                       int active_cores) const noexcept;

  hw::CpuMachine machine_;
  workload::Workload wl_;
  hw::CpuModel cpu_;
  hw::DramModel dram_;
};

}  // namespace pbc::sim
