// Steady-state simulator for a CPU node under per-component power caps.
//
// Reproduces what Intel RAPL converges to (§3.3): each power-limit domain
// (PKG, DRAM) independently picks the shallowest power-saving state that
// keeps its measured power under its cap — DVFS first, then clock
// throttling, then the floor for the package; bandwidth throttle states for
// DRAM. Because the domains interact through the workload (a throttled CPU
// issues fewer memory requests; throttled DRAM stalls the CPU), the steady
// state is the fixed point of the two governors' best responses, found by
// alternating relaxation.
//
// Two solver paths produce bit-identical results (docs/solver.md):
//  * the fast path (default) precomputes an operating-point table per
//    (node, active_cores) — every (ladder notch, throttle level) cell
//    evaluated once — and replaces the governors' linear walks with
//    bisection over the monotone power-vs-state curves;
//  * the reference path (reference_steady_state*) re-evaluates the
//    workload model along every walk, exactly as the hardware would, and
//    is retained for differential coverage and as the bench baseline.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "hw/machine.hpp"
#include "sim/measurement.hpp"
#include "sim/solver_table.hpp"
#include "workload/workload.hpp"

namespace pbc::sim {

class SolveArena;

namespace detail {
struct CpuSolverCache;
}  // namespace detail

/// Closed-form steady-state evaluation of (workload × machine × caps).
class CpuNodeSim {
 public:
  CpuNodeSim(hw::CpuMachine machine, workload::Workload wl);

  [[nodiscard]] const hw::CpuMachine& machine() const noexcept {
    return machine_;
  }
  [[nodiscard]] const workload::Workload& wl() const noexcept { return wl_; }

  /// Steady state reached under the given caps. Caps below the hardware
  /// floors are accepted but will be reported as not respected.
  [[nodiscard]] AllocationSample steady_state(Watts cpu_cap,
                                              Watts mem_cap) const noexcept;

  /// Steady state with the processor pinned to an operating point and DRAM
  /// granted the given bandwidth. Mirrors userspace DVFS pinning, which is
  /// how the lightweight profiler measures critical power values without a
  /// full sweep.
  [[nodiscard]] AllocationSample pinned(
      const hw::CpuOperatingPoint& op, GBps avail_bw) const noexcept;

  /// Steady state with the workload packed onto `active_cores` of the
  /// package (the remaining cores idle and contribute leakage only), under
  /// the usual caps. The thread-packing knob of Pack & Cap (Cochran et
  /// al., the paper's ref. [11]): fewer cores under a cap can afford a
  /// higher clock. active_cores is clamped to [1, total_cores].
  [[nodiscard]] AllocationSample steady_state_packed(
      int active_cores, Watts cpu_cap, Watts mem_cap) const noexcept;

  /// steady_state with a caller-carried warm-start hint, for callers that
  /// interleave solves on several nodes (the trace-replay engine keeps one
  /// hint per phase node across segments). The hint only seeds the
  /// bisection gallops; the result is bit-identical to steady_state.
  [[nodiscard]] AllocationSample steady_state_hinted(
      Watts cpu_cap, Watts mem_cap, SolveHint* hint) const noexcept;

  /// Batched solves over many (cpu_cap, mem_cap) splits, written into
  /// `out` (out.size() == caps.size()) with scratch carved from `arena` —
  /// zero allocation once the arena is warm. Runs the SoA batch solver:
  /// cells advance in lockstep through the relaxation, grouped by current
  /// state so each governor query is one vectorized curve scan per
  /// distinct state. out[i] is bit-identical to steady_state(caps[i]...).
  void steady_state_batch(std::span<const CapPair> caps,
                          std::span<AllocationSample> out,
                          SolveArena& arena) const;

  /// The packed-execution batch variant.
  void steady_state_packed_batch(int active_cores,
                                 std::span<const CapPair> caps,
                                 std::span<AllocationSample> out,
                                 SolveArena& arena) const;

  /// Blocked best-split solves — the frontier engine. `caps` holds the
  /// split grids of several budgets concatenated (segment b spans
  /// caps[bounds[b], bounds[b + 1]); bounds.size() == best.size() + 1)
  /// and the whole block relaxes in one batched pass, so each SoA table
  /// row is streamed once per block instead of once per budget. Only the
  /// winner of each segment is materialized: best[b] is bit-identical to
  /// taking steady_state over that segment's caps in order and keeping
  /// the first sample of maximal perf (what sweep_cpu_split_best
  /// computes); empty segments leave a default-constructed sample.
  void steady_state_batch_best(std::span<const CapPair> caps,
                               std::span<const std::int32_t> bounds,
                               std::span<AllocationSample> best,
                               SolveArena& arena) const;

  /// Convenience wrappers over the span entry points, borrowing the
  /// calling thread's arena and returning a fresh vector.
  [[nodiscard]] std::vector<AllocationSample> steady_state_batch(
      std::span<const CapPair> caps) const;

  [[nodiscard]] std::vector<AllocationSample> steady_state_packed_batch(
      int active_cores, std::span<const CapPair> caps) const;

  /// Reference solver: the original O(ladder x levels) linear-walk
  /// relaxation with a fresh workload evaluation per probed state. The
  /// fast path must match it bit for bit; differential tests and the
  /// perf_sim_microbench speedup gate call it directly.
  [[nodiscard]] AllocationSample reference_steady_state(
      Watts cpu_cap, Watts mem_cap) const noexcept;

  [[nodiscard]] AllocationSample reference_steady_state_packed(
      int active_cores, Watts cpu_cap, Watts mem_cap) const noexcept;

  /// Forces construction of the operating-point table for `active_cores`
  /// (all cores when <= 0) and returns it. Sweep drivers call this once
  /// before fanning solves out across threads so workers never contend on
  /// the build lock.
  const CpuOpTable& prepare(int active_cores = 0) const;

  /// Convenience: run completely uncapped (both components at maximum).
  [[nodiscard]] AllocationSample uncapped() const noexcept;

  [[nodiscard]] const hw::CpuModel& cpu_model() const noexcept { return cpu_; }
  [[nodiscard]] const hw::DramModel& dram_model() const noexcept {
    return dram_;
  }

 private:
  /// Evaluates workload + power at a fully specified hardware state with
  /// `active_cores` of the package running the workload (the rest idle).
  [[nodiscard]] AllocationSample evaluate_state(
      const hw::CpuOperatingPoint& op, GBps avail_bw,
      int active_cores) const noexcept;

  /// Processor governor best response: shallowest state with power ≤ cap.
  [[nodiscard]] hw::CpuOperatingPoint proc_best_response(
      Watts cap, GBps avail_bw, int active_cores) const noexcept;

  /// Memory governor best response: highest throttle bandwidth with
  /// power ≤ cap, given the processor state.
  [[nodiscard]] GBps mem_best_response(
      Watts cap, const hw::CpuOperatingPoint& op,
      int active_cores) const noexcept;

  /// Bandwidth of one DRAM throttle level — the single definition both
  /// solver paths share, so table cells and reference walks see exactly
  /// the same operands.
  [[nodiscard]] GBps throttle_bw(int level) const noexcept;

  /// Reference fixed-point loop (linear walks, fresh evaluations).
  [[nodiscard]] AllocationSample solve_reference(
      Watts cpu_cap, Watts mem_cap, int active_cores) const noexcept;

  /// Fast fixed-point loop over the precomputed table. Replays the exact
  /// reference trajectory; `hint` only warm-starts the bisections.
  [[nodiscard]] AllocationSample solve_fast(const CpuOpTable& table,
                                            Watts cpu_cap, Watts mem_cap,
                                            int active_cores,
                                            SolveHint* hint) const noexcept;

  /// SoA batch fixed-point loop: all cells relax in lockstep; each
  /// iteration buckets the still-unstable cells by state / next level and
  /// issues one ResponseCurveBatch query per bucket. Every cell replays
  /// the exact solve_fast trajectory (same iterates, same iteration
  /// count, same epilogue), so results are bit-identical to it.
  void solve_fast_batch(const CpuOpTable& table,
                        std::span<const CapPair> caps,
                        std::span<AllocationSample> out, int active_cores,
                        SolveArena& arena) const;

  /// Blocked relaxation + per-segment best reduction behind
  /// steady_state_batch_best. Restructured for block-scale batches: the
  /// uniform iteration 0 runs dense (contiguous kernel over the shared
  /// top-state row), iteration 1 confirms the iteration-0 answers with
  /// two gathered compares per governor (simd::batch_confirm) and
  /// rescans only the exceptions, and the rare still-moving cells drain
  /// through the grouped pending loop. Fixed points are bit-identical to
  /// solve_fast per cell (docs/solver.md: the blocked-sweep argument).
  void solve_fast_batch_best(const CpuOpTable& table,
                             std::span<const CapPair> caps,
                             std::span<const std::int32_t> bounds,
                             std::span<AllocationSample> best,
                             int active_cores, SolveArena& arena) const;

  /// The lazily built, thread-shared table for an active-core count.
  [[nodiscard]] const CpuOpTable& table_for(int active_cores) const;

  [[nodiscard]] std::unique_ptr<const CpuOpTable> build_table(
      int active_cores) const;

  hw::CpuMachine machine_;
  workload::Workload wl_;
  hw::CpuModel cpu_;
  hw::DramModel dram_;
  /// Shared (not copied) across copies of the node: the cache is keyed
  /// only by immutable state set at construction.
  std::shared_ptr<detail::CpuSolverCache> solver_cache_;
};

/// Shared handle to an immutable, table-prepared node. The cluster engine
/// and the svc sim-node cache pass these around so one (machine, workload)
/// pair is constructed and table-built exactly once per scope, however many
/// job-start attempts or queries touch it.
using PreparedCpuNode = std::shared_ptr<const CpuNodeSim>;

/// Builds a node and forces its default operating-point table, returning
/// the shared handle. Solves through the handle are bit-identical to
/// solves on a freshly constructed node.
[[nodiscard]] PreparedCpuNode make_prepared_cpu_node(hw::CpuMachine machine,
                                                     workload::Workload wl);

}  // namespace pbc::sim
