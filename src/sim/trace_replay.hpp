// Trace-driven evaluation: replay a PhaseTrace against a capped node.
//
// Each trace segment runs one phase to its governor steady state under the
// caps (power management reacts to every phase change, as real RAPL does),
// and the replay aggregates time-weighted performance and power. For long
// traces the aggregate converges to the mixed-workload steady state; for
// short, irregular traces it exposes the per-phase variability behind the
// paper's "less regular curves" observation (§6.2).
#pragma once

#include <vector>

#include "sim/cpu_node.hpp"
#include "workload/trace.hpp"

namespace pbc::sim {

/// Per-segment outcome.
struct SegmentResult {
  std::size_t phase_index = 0;
  double work_units = 0.0;
  Seconds duration{0.0};
  Watts proc_power{0.0};
  Watts mem_power{0.0};
  double rate_gunits = 0.0;
};

struct TraceReplayResult {
  std::vector<SegmentResult> segments;
  /// Time-weighted aggregate over the whole trace.
  AllocationSample aggregate;
  Seconds total_time{0.0};
  Joules proc_energy{0.0};
  Joules mem_energy{0.0};

  [[nodiscard]] Joules total_energy() const noexcept {
    return proc_energy + mem_energy;
  }
};

/// Replays `trace` (built from node.wl()) under the given caps.
[[nodiscard]] TraceReplayResult replay_trace(
    const CpuNodeSim& node, const workload::PhaseTrace& trace, Watts cpu_cap,
    Watts mem_cap);

}  // namespace pbc::sim
