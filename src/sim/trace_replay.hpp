// Trace-driven evaluation: replay a PhaseTrace against a capped node.
//
// Each trace segment runs one phase to its governor steady state under the
// caps (power management reacts to every phase change, as real RAPL does),
// and the replay aggregates time-weighted performance and power. For long
// traces the aggregate converges to the mixed-workload steady state; for
// short, irregular traces it exposes the per-phase variability behind the
// paper's "less regular curves" observation (§6.2).
//
// Two engines produce bit-identical results (docs/dynamic.md):
//  * ReplayPath::kFast (default) evaluates through a shared PhaseNodeSet —
//    prepared single-phase simulators with precomputed operating-point
//    tables — and solves each distinct phase once per (caps, trace)
//    instead of once per segment;
//  * ReplayPath::kReference retains the original implementation: fresh
//    per-call phase nodes and one steady-state solve per segment. It is
//    the differential-test oracle and the bench baseline.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "sim/cpu_node.hpp"
#include "sim/phase_nodes.hpp"
#include "util/status.hpp"
#include "util/thread_pool.hpp"
#include "workload/trace.hpp"

namespace pbc::sim {

/// Engine selection for trace replay and dynamic shifting; both paths
/// are bit-identical (same contract as SolverPath / ClusterPath).
enum class ReplayPath {
  kFast,
  kReference,
};

/// Per-segment outcome.
struct SegmentResult {
  std::size_t phase_index = 0;
  double work_units = 0.0;
  Seconds duration{0.0};
  Watts proc_power{0.0};
  Watts mem_power{0.0};
  double rate_gunits = 0.0;
};

struct TraceReplayResult {
  std::vector<SegmentResult> segments;
  /// Time-weighted aggregate over the whole trace.
  AllocationSample aggregate;
  Seconds total_time{0.0};
  Joules proc_energy{0.0};
  Joules mem_energy{0.0};

  [[nodiscard]] Joules total_energy() const noexcept {
    return proc_energy + mem_energy;
  }
};

/// Validates a trace against a workload's phase count: every segment must
/// name an existing phase and carry positive work. Returns the first
/// violation, or ok for a well-formed trace. The unchecked replay entry
/// points silently skip violating segments instead (retained behaviour);
/// the *_checked variants reject the whole trace.
[[nodiscard]] Status check_trace(const workload::PhaseTrace& trace,
                                 std::size_t phase_count);

/// Deprecated spelling of check_trace from before the unified
/// Status/Result vocabulary; returns the error as an optional instead.
[[deprecated("use check_trace, which returns pbc::Status")]]
[[nodiscard]] std::optional<Error> validate_trace(
    const workload::PhaseTrace& trace, std::size_t phase_count);

/// Replays `trace` (built from node.wl()) under the given caps. The fast
/// path builds a transient PhaseNodeSet; callers replaying more than once
/// should build the set themselves (or query through svc::QueryEngine)
/// and use the overload below.
[[nodiscard]] TraceReplayResult replay_trace(const CpuNodeSim& node,
                                             const workload::PhaseTrace& trace,
                                             Watts cpu_cap, Watts mem_cap,
                                             ReplayPath path =
                                                 ReplayPath::kFast);

/// Replays against a prepared phase-node set (always the fast engine —
/// the set is the fast engine's working state). Bit-identical to the
/// node-based overload for nodes with the same (machine, workload).
[[nodiscard]] TraceReplayResult replay_trace(const PhaseNodeSet& nodes,
                                             const workload::PhaseTrace& trace,
                                             Watts cpu_cap, Watts mem_cap);

/// Checked variants: validate caps (> 0) and the trace up front and
/// return a descriptive Error instead of silently skipping malformed
/// segments. Mirrors simulate_cluster_checked.
[[nodiscard]] Result<TraceReplayResult> replay_trace_checked(
    const CpuNodeSim& node, const workload::PhaseTrace& trace, Watts cpu_cap,
    Watts mem_cap, ReplayPath path = ReplayPath::kFast);

[[nodiscard]] Result<TraceReplayResult> replay_trace_checked(
    const PhaseNodeSet& nodes, const workload::PhaseTrace& trace,
    Watts cpu_cap, Watts mem_cap);

/// Batched replay over a (trace × caps) grid, parallelized across `pool`
/// (global_pool() when null; serial when nested on a pool worker or when
/// the grid is trivial). out[t * caps.size() + c] is bit-identical to
/// replay_trace(nodes, traces[t], caps[c]...) for every cell.
[[nodiscard]] std::vector<TraceReplayResult> replay_trace_batch(
    const PhaseNodeSet& nodes, std::span<const workload::PhaseTrace> traces,
    std::span<const CapPair> caps, ThreadPool* pool = nullptr);

}  // namespace pbc::sim
