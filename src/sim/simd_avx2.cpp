// AVX2 kernel TU. This file (and simd_avx512.cpp) are the only TUs built
// with ISA flags above the project baseline (-mavx2 here, set in
// src/sim/CMakeLists.txt); nothing outside the two kernel functions may
// live here, so the rest of the build stays portable and the functions
// are only reachable through the runtime dispatch in simd.cpp.
#include "sim/simd.hpp"

#if defined(PBC_SIMD_X86) && defined(__AVX2__)

#include <immintrin.h>

namespace pbc::sim::simd::detail {

void batch_max_index_avx2(const double* power, std::size_t n,
                          const double* thr, std::size_t m,
                          std::int32_t* out) noexcept {
  // Branch-free count over the sorted curve, 4 thresholds per vector:
  // for a non-decreasing curve, max{ i : power[i] <= t } is exactly
  // (number of entries <= t) - 1. The compares use the same stored
  // doubles and the same <= predicate as the scalar bisection, so the
  // counts are bit-identical to it. Once every lane has seen its first
  // entry above its threshold the remaining entries can only compare
  // greater (monotonicity), so the scan early-exits on an all-zero mask.
  std::size_t j = 0;
  for (; j + 4 <= m; j += 4) {
    const __m256d t = _mm256_loadu_pd(thr + j);
    __m256i count = _mm256_setzero_si256();
    for (std::size_t i = 0; i < n; ++i) {
      const __m256d p = _mm256_set1_pd(power[i]);
      const __m256d le = _mm256_cmp_pd(p, t, _CMP_LE_OQ);
      if (_mm256_movemask_pd(le) == 0) break;
      // A true compare is all-ones (-1 as int64): subtracting it
      // increments the lane's count.
      count = _mm256_sub_epi64(count, _mm256_castpd_si256(le));
    }
    alignas(32) std::int64_t c[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(c), count);
    out[j] = static_cast<std::int32_t>(c[0]) - 1;
    out[j + 1] = static_cast<std::int32_t>(c[1]) - 1;
    out[j + 2] = static_cast<std::int32_t>(c[2]) - 1;
    out[j + 3] = static_cast<std::int32_t>(c[3]) - 1;
  }
  if (j < m) batch_max_index_generic(power, n, thr + j, m - j, out + j);
}

void batch_max_index_prefix_avx2(const double* sorted_power,
                                 const std::int32_t* prefix_max,
                                 std::size_t n, const double* thr,
                                 std::size_t m, std::int32_t* out) noexcept {
  // Count over the sorted curve exactly as batch_max_index_avx2, then
  // resolve each lane's upper-bound count through the int32 prefix-max
  // lane with one masked gather (count == 0 lanes keep -1 and never
  // touch memory). Same compares, same precomputed indices as the
  // scalar non-monotone walk, so the answers are bit-identical to it.
  std::size_t j = 0;
  const __m256i pack = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  for (; j + 4 <= m; j += 4) {
    const __m256d t = _mm256_loadu_pd(thr + j);
    __m256i count = _mm256_setzero_si256();
    for (std::size_t i = 0; i < n; ++i) {
      const __m256d p = _mm256_set1_pd(sorted_power[i]);
      const __m256d le = _mm256_cmp_pd(p, t, _CMP_LE_OQ);
      if (_mm256_movemask_pd(le) == 0) break;
      count = _mm256_sub_epi64(count, _mm256_castpd_si256(le));
    }
    const __m128i cnt32 =
        _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(count, pack));
    const __m128i vidx = _mm_sub_epi32(cnt32, _mm_set1_epi32(1));
    const __m128i mask = _mm_cmpgt_epi32(cnt32, _mm_setzero_si128());
    const __m128i res =
        _mm_mask_i32gather_epi32(_mm_set1_epi32(-1), prefix_max, vidx, mask, 4);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + j), res);
  }
  if (j < m) {
    batch_max_index_prefix_generic(sorted_power, prefix_max, n, thr + j,
                                   m - j, out + j);
  }
}

void batch_max_index_indexed_avx2(const double* power, std::size_t n,
                                  const double* thr_base,
                                  const std::int32_t* idx, std::size_t m,
                                  std::int32_t* out_base) noexcept {
  // Gathered-threshold form of batch_max_index_avx2: one vector gather
  // pulls the bucket's thresholds, the count scan is unchanged, and the
  // answers scatter back through the same indices (scalar stores — AVX2
  // has no scatter). Bit-identical to the contiguous kernel per lane.
  std::size_t j = 0;
  for (; j + 4 <= m; j += 4) {
    const __m128i vi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + j));
    const __m256d t = _mm256_i32gather_pd(thr_base, vi, 8);
    __m256i count = _mm256_setzero_si256();
    for (std::size_t i = 0; i < n; ++i) {
      const __m256d p = _mm256_set1_pd(power[i]);
      const __m256d le = _mm256_cmp_pd(p, t, _CMP_LE_OQ);
      if (_mm256_movemask_pd(le) == 0) break;
      count = _mm256_sub_epi64(count, _mm256_castpd_si256(le));
    }
    alignas(32) std::int64_t c[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(c), count);
    out_base[idx[j]] = static_cast<std::int32_t>(c[0]) - 1;
    out_base[idx[j + 1]] = static_cast<std::int32_t>(c[1]) - 1;
    out_base[idx[j + 2]] = static_cast<std::int32_t>(c[2]) - 1;
    out_base[idx[j + 3]] = static_cast<std::int32_t>(c[3]) - 1;
  }
  if (j < m) {
    batch_max_index_indexed_generic(power, n, thr_base, idx + j, m - j,
                                    out_base);
  }
}

double lane_sum_avx2(const double* x, std::size_t n) noexcept {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(x + i));
  }
  alignas(32) double s[4];
  _mm256_store_pd(s, acc);
  double tail = 0.0;
  for (; i < n; ++i) tail += x[i];
  return ((s[0] + s[1]) + (s[2] + s[3])) + tail;
}

}  // namespace pbc::sim::simd::detail

#endif  // PBC_SIMD_X86 && __AVX2__
