#include "sim/trace_replay.hpp"

#include <algorithm>

namespace pbc::sim {

TraceReplayResult replay_trace(const CpuNodeSim& node,
                               const workload::PhaseTrace& trace,
                               Watts cpu_cap, Watts mem_cap) {
  TraceReplayResult out;
  const auto& wl = node.wl();

  // Build one single-phase node simulator per phase; the governors settle
  // per segment (RAPL's window is milliseconds, segments are much longer).
  std::vector<CpuNodeSim> phase_nodes;
  phase_nodes.reserve(wl.phases.size());
  for (const auto& phase : wl.phases) {
    workload::Workload single = wl;
    single.name = wl.name + "/" + phase.name;
    single.phases = {phase};
    single.phases[0].weight = 1.0;
    phase_nodes.emplace_back(node.machine(), std::move(single));
  }

  double total_work = 0.0;
  double weighted_proc_util = 0.0;
  double weighted_mem_util = 0.0;
  for (const auto& seg : trace) {
    if (seg.phase_index >= phase_nodes.size() || seg.work_units <= 0.0) {
      continue;
    }
    const AllocationSample s =
        phase_nodes[seg.phase_index].steady_state(cpu_cap, mem_cap);
    SegmentResult r;
    r.phase_index = seg.phase_index;
    r.work_units = seg.work_units;
    r.rate_gunits = s.rate_gunits;
    r.duration = Seconds{s.rate_gunits > 0.0
                             ? seg.work_units / s.rate_gunits
                             : 0.0};
    r.proc_power = s.proc_power;
    r.mem_power = s.mem_power;
    out.segments.push_back(r);

    out.total_time += r.duration;
    out.proc_energy += r.proc_power * r.duration;
    out.mem_energy += r.mem_power * r.duration;
    total_work += seg.work_units;
    weighted_proc_util += s.compute_util * r.duration.value();
    weighted_mem_util += s.mem_util * r.duration.value();
  }

  AllocationSample& agg = out.aggregate;
  agg.proc_cap = cpu_cap;
  agg.mem_cap = mem_cap;
  if (out.total_time.value() > 0.0) {
    agg.rate_gunits = total_work / out.total_time.value();
    agg.perf = agg.rate_gunits * wl.metric_per_gunit;
    agg.proc_power = out.proc_energy / out.total_time;
    agg.mem_power = out.mem_energy / out.total_time;
    agg.compute_util = weighted_proc_util / out.total_time.value();
    agg.mem_util = weighted_mem_util / out.total_time.value();
  }
  agg.proc_cap_respected = agg.proc_power.value() <= cpu_cap.value() + 0.1;
  agg.mem_cap_respected = agg.mem_power.value() <= mem_cap.value() + 0.1;
  return out;
}

}  // namespace pbc::sim
