#include "sim/trace_replay.hpp"

#include <algorithm>
#include <string>

namespace pbc::sim {

namespace {

// The segment loop both engines share: `eval(phase_index)` supplies the
// steady state for a segment's phase under the fixed caps. Because the
// loop body — skip rule, accumulation order, aggregation — is this one
// function, identical samples imply bit-identical replays.
template <class Eval>
TraceReplayResult replay_loop(const workload::Workload& wl,
                              const workload::PhaseTrace& trace,
                              std::size_t phase_count, Watts cpu_cap,
                              Watts mem_cap, Eval&& eval) {
  TraceReplayResult out;
  double total_work = 0.0;
  double weighted_proc_util = 0.0;
  double weighted_mem_util = 0.0;
  for (const auto& seg : trace) {
    if (seg.phase_index >= phase_count || seg.work_units <= 0.0) {
      continue;
    }
    const AllocationSample s = eval(seg.phase_index);
    SegmentResult r;
    r.phase_index = seg.phase_index;
    r.work_units = seg.work_units;
    r.rate_gunits = s.rate_gunits;
    r.duration = Seconds{s.rate_gunits > 0.0
                             ? seg.work_units / s.rate_gunits
                             : 0.0};
    r.proc_power = s.proc_power;
    r.mem_power = s.mem_power;
    out.segments.push_back(r);

    out.total_time += r.duration;
    out.proc_energy += r.proc_power * r.duration;
    out.mem_energy += r.mem_power * r.duration;
    total_work += seg.work_units;
    weighted_proc_util += s.compute_util * r.duration.value();
    weighted_mem_util += s.mem_util * r.duration.value();
  }

  AllocationSample& agg = out.aggregate;
  agg.proc_cap = cpu_cap;
  agg.mem_cap = mem_cap;
  if (out.total_time.value() > 0.0) {
    agg.rate_gunits = total_work / out.total_time.value();
    agg.perf = agg.rate_gunits * wl.metric_per_gunit;
    agg.proc_power = out.proc_energy / out.total_time;
    agg.mem_power = out.mem_energy / out.total_time;
    agg.compute_util = weighted_proc_util / out.total_time.value();
    agg.mem_util = weighted_mem_util / out.total_time.value();
  }
  agg.proc_cap_respected = agg.proc_power.value() <= cpu_cap.value() + 0.1;
  agg.mem_cap_respected = agg.mem_power.value() <= mem_cap.value() + 0.1;
  return out;
}

// The retained original implementation: one fresh single-phase simulator
// per phase per call, one full steady-state solve per segment.
TraceReplayResult replay_reference(const CpuNodeSim& node,
                                   const workload::PhaseTrace& trace,
                                   Watts cpu_cap, Watts mem_cap) {
  const auto& wl = node.wl();

  // Build one single-phase node simulator per phase; the governors settle
  // per segment (RAPL's window is milliseconds, segments are much longer).
  std::vector<CpuNodeSim> phase_nodes;
  phase_nodes.reserve(wl.phases.size());
  for (std::size_t i = 0; i < wl.phases.size(); ++i) {
    phase_nodes.emplace_back(node.machine(), single_phase_workload(wl, i));
  }

  return replay_loop(wl, trace, phase_nodes.size(), cpu_cap, mem_cap,
                     [&](std::size_t p) {
                       return phase_nodes[p].steady_state(cpu_cap, mem_cap);
                     });
}

}  // namespace

Status check_trace(const workload::PhaseTrace& trace,
                   std::size_t phase_count) {
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& seg = trace[i];
    if (seg.phase_index >= phase_count) {
      return out_of_range(
          "trace segment " + std::to_string(i) + ": phase_index " +
          std::to_string(seg.phase_index) +
          " out of range (workload has " + std::to_string(phase_count) +
          " phases)");
    }
    if (!(seg.work_units > 0.0)) {
      return invalid_argument("trace segment " + std::to_string(i) +
                              ": work_units must be > 0, got " +
                              std::to_string(seg.work_units));
    }
  }
  return Status{};
}

std::optional<Error> validate_trace(const workload::PhaseTrace& trace,
                                    std::size_t phase_count) {
  if (Status s = check_trace(trace, phase_count); !s.ok()) {
    return s.error();
  }
  return std::nullopt;
}

TraceReplayResult replay_trace(const CpuNodeSim& node,
                               const workload::PhaseTrace& trace,
                               Watts cpu_cap, Watts mem_cap,
                               ReplayPath path) {
  if (path == ReplayPath::kReference) {
    return replay_reference(node, trace, cpu_cap, mem_cap);
  }
  return replay_trace(PhaseNodeSet(node.machine(), node.wl()), trace,
                      cpu_cap, mem_cap);
}

TraceReplayResult replay_trace(const PhaseNodeSet& nodes,
                               const workload::PhaseTrace& trace,
                               Watts cpu_cap, Watts mem_cap) {
  // Under fixed caps a phase's steady state is segment-independent, so
  // each distinct phase is solved exactly once; repeat segments are memo
  // hits. The memo lives in the thread's solve arena, so the batched
  // replay loops (many traces x many caps on pool workers) allocate
  // nothing per replay once their arenas are warm.
  SolveArena& arena = thread_solve_arena();
  const auto scope = arena.scope();
  PhaseSolveMemo memo(nodes, cpu_cap, mem_cap, arena);
  return replay_loop(nodes.wl(), trace, nodes.phase_count(), cpu_cap,
                     mem_cap,
                     [&](std::size_t p) { return memo.sample(p); });
}

Result<TraceReplayResult> replay_trace_checked(const CpuNodeSim& node,
                                               const workload::PhaseTrace&
                                                   trace,
                                               Watts cpu_cap, Watts mem_cap,
                                               ReplayPath path) {
  if (cpu_cap.value() <= 0.0 || mem_cap.value() <= 0.0) {
    return invalid_argument("replay caps must be > 0 W, got cpu_cap=" +
                            std::to_string(cpu_cap.value()) + " mem_cap=" +
                            std::to_string(mem_cap.value()));
  }
  if (Status s = check_trace(trace, node.wl().phases.size()); !s.ok()) {
    return s.error();
  }
  return replay_trace(node, trace, cpu_cap, mem_cap, path);
}

Result<TraceReplayResult> replay_trace_checked(const PhaseNodeSet& nodes,
                                               const workload::PhaseTrace&
                                                   trace,
                                               Watts cpu_cap, Watts mem_cap) {
  if (cpu_cap.value() <= 0.0 || mem_cap.value() <= 0.0) {
    return invalid_argument("replay caps must be > 0 W, got cpu_cap=" +
                            std::to_string(cpu_cap.value()) + " mem_cap=" +
                            std::to_string(mem_cap.value()));
  }
  if (Status s = check_trace(trace, nodes.phase_count()); !s.ok()) {
    return s.error();
  }
  return replay_trace(nodes, trace, cpu_cap, mem_cap);
}

std::vector<TraceReplayResult> replay_trace_batch(
    const PhaseNodeSet& nodes, std::span<const workload::PhaseTrace> traces,
    std::span<const CapPair> caps, ThreadPool* pool) {
  const std::size_t n = traces.size() * caps.size();
  std::vector<TraceReplayResult> out(n);
  if (n == 0) return out;
  const auto run = [&](std::size_t i) {
    const std::size_t t = i / caps.size();
    const std::size_t c = i % caps.size();
    out[i] = replay_trace(nodes, traces[t], caps[c].cpu_cap,
                          caps[c].mem_cap);
  };
  ThreadPool& p = pool != nullptr ? *pool : global_pool();
  if (n < 2 || p.is_worker_thread()) {
    for (std::size_t i = 0; i < n; ++i) run(i);
  } else {
    p.parallel_for_index(n, run);
  }
  return out;
}

}  // namespace pbc::sim
