#include "sim/sweep.hpp"

#include <algorithm>

#include "sim/simd.hpp"
#include "sim/solve_arena.hpp"

namespace pbc::sim {

namespace {

// The one split-grid loop. Counting and filling run the exact same FP
// recurrence (m += step from the same start), so the two passes the arena
// variant makes visit bit-identical grid points — this loop is
// golden-file critical and must not be reordered.
template <class Emit>
void for_each_split(Watts budget, const CpuSweepOptions& opt, Emit&& emit) {
  const double hi = budget.value() - opt.proc_lo.value();
  for (double m = opt.mem_lo.value(); m <= hi + 1e-9; m += opt.step.value()) {
    emit(CapPair{Watts{budget.value() - m}, Watts{m}});
  }
}

std::span<const CapPair> cpu_split_grid_into(Watts budget,
                                             const CpuSweepOptions& opt,
                                             SolveArena& arena) {
  std::size_t count = 0;
  for_each_split(budget, opt, [&](const CapPair&) { ++count; });
  const std::span<CapPair> caps = arena.get<CapPair>(count);
  std::size_t k = 0;
  for_each_split(budget, opt, [&](const CapPair& c) { caps[k++] = c; });
  return caps;
}

}  // namespace

std::vector<CapPair> cpu_split_grid(Watts budget,
                                    const CpuSweepOptions& opt) {
  std::vector<CapPair> caps;
  for_each_split(budget, opt,
                 [&](const CapPair& c) { caps.push_back(c); });
  return caps;
}

std::vector<AllocationSample> sweep_cpu_split(const CpuNodeSim& node,
                                              Watts budget,
                                              const CpuSweepOptions& opt) {
  SolveArena& arena = thread_solve_arena();
  const auto scope = arena.scope();
  const std::span<const CapPair> caps =
      cpu_split_grid_into(budget, opt, arena);
  std::vector<AllocationSample> samples(caps.size());
  if (opt.path == SolverPath::kFast) {
    node.steady_state_batch(caps, samples, arena);
  } else {
    for (std::size_t i = 0; i < caps.size(); ++i) {
      samples[i] =
          node.reference_steady_state(caps[i].cpu_cap, caps[i].mem_cap);
    }
  }
  return samples;
}

std::optional<AllocationSample> sweep_cpu_split_best(
    const CpuNodeSim& node, Watts budget, const CpuSweepOptions& opt) {
  // Fully arena-backed: grid, samples, and solver scratch all come from
  // the thread's arena, so a warm frontier/bench loop allocates nothing.
  SolveArena& arena = thread_solve_arena();
  const auto scope = arena.scope();
  const std::span<const CapPair> caps =
      cpu_split_grid_into(budget, opt, arena);
  const std::span<AllocationSample> samples =
      arena.get<AllocationSample>(caps.size());
  if (opt.path == SolverPath::kFast) {
    node.steady_state_batch(caps, samples, arena);
  } else {
    for (std::size_t i = 0; i < caps.size(); ++i) {
      samples[i] =
          node.reference_steady_state(caps[i].cpu_cap, caps[i].mem_cap);
    }
  }
  std::optional<AllocationSample> best;
  for (const AllocationSample& s : samples) {
    // Strict > keeps the first of equal-perf splits, matching
    // BudgetSweep::best()'s max_element semantics.
    if (!best || s.perf > best->perf) best = s;
  }
  return best;
}

std::vector<AllocationSample> sweep_gpu_split(const GpuNodeSim& node,
                                              Watts board_cap,
                                              SolverPath path) {
  std::vector<AllocationSample> samples;
  const std::size_t clocks = node.gpu_model().mem_clock_count();
  samples.reserve(clocks);
  for (std::size_t i = 0; i < clocks; ++i) {
    samples.push_back(path == SolverPath::kFast
                          ? node.steady_state(i, board_cap)
                          : node.reference_steady_state(i, board_cap));
  }
  return samples;
}

const AllocationSample* BudgetSweep::best() const noexcept {
  if (samples.empty()) return nullptr;
  return &*std::max_element(samples.begin(), samples.end(),
                            [](const AllocationSample& a,
                               const AllocationSample& b) {
                              return a.perf < b.perf;
                            });
}

std::vector<BudgetSweep> sweep_cpu_budgets(const CpuNodeSim& node,
                                           std::span<const Watts> budgets,
                                           const CpuSweepOptions& opt,
                                           ThreadPool* pool) {
  // Build the operating-point table before fanning out, so workers start
  // solving immediately instead of serializing on the build lock.
  if (opt.path == SolverPath::kFast) node.prepare();
  std::vector<BudgetSweep> out(budgets.size());
  ThreadPool& tp = pool ? *pool : global_pool();
  tp.parallel_for_index(budgets.size(), [&](std::size_t i) {
    out[i].budget = budgets[i];
    out[i].samples = sweep_cpu_split(node, budgets[i], opt);
  });
  return out;
}

std::vector<BudgetSweep> sweep_gpu_budgets(const GpuNodeSim& node,
                                           std::span<const Watts> board_caps,
                                           SolverPath path,
                                           ThreadPool* pool) {
  std::vector<BudgetSweep> out(board_caps.size());
  ThreadPool& tp = pool ? *pool : global_pool();
  if (path == SolverPath::kFast) {
    // Grid-level batching: the (cap x clock) grid is solved one clock at
    // a time, each clock resolving every board cap with a single
    // vectorized scan of that clock's board-power curve, then scattered
    // back into the per-budget ascending-clock sample rows.
    node.prepare();
    const std::size_t clocks = node.gpu_model().mem_clock_count();
    for (std::size_t i = 0; i < board_caps.size(); ++i) {
      out[i].budget = board_caps[i];
      out[i].samples.resize(clocks);
    }
    tp.parallel_for_index(clocks, [&](std::size_t c) {
      SolveArena& arena = thread_solve_arena();
      const auto scope = arena.scope();
      const std::span<AllocationSample> lane =
          arena.get<AllocationSample>(board_caps.size());
      node.steady_state_batch(c, board_caps, lane, arena);
      for (std::size_t i = 0; i < board_caps.size(); ++i) {
        out[i].samples[c] = lane[i];
      }
    });
    return out;
  }
  tp.parallel_for_index(board_caps.size(), [&](std::size_t i) {
    out[i].budget = board_caps[i];
    out[i].samples = sweep_gpu_split(node, board_caps[i], path);
  });
  return out;
}

std::vector<Watts> budget_grid(Watts lo, Watts hi, Watts step) {
  std::vector<Watts> grid;
  // Degenerate inputs yield an empty grid rather than an infinite loop
  // (step <= 0) or a silently reversed range (hi < lo).
  if (step.value() <= 0.0 || hi.value() < lo.value()) return grid;
  for (double b = lo.value(); b <= hi.value() + 1e-9; b += step.value()) {
    grid.push_back(Watts{b});
  }
  // hi is always part of the grid: callers sweep [lo, hi] and expect the
  // upper endpoint to be sampled even when the step does not land on it.
  if (grid.back().value() < hi.value() - 1e-9) grid.push_back(hi);
  return grid;
}

SweepStats sweep_stats(std::span<const AllocationSample> samples) {
  SweepStats st;
  st.count = samples.size();
  if (samples.empty()) return st;
  SolveArena& arena = thread_solve_arena();
  const auto scope = arena.scope();
  const std::span<double> perf = arena.get<double>(samples.size());
  const std::span<double> power = arena.get<double>(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    perf[i] = samples[i].perf;
    power[i] = samples[i].proc_power.value() + samples[i].mem_power.value();
    st.max_perf = std::max(st.max_perf, samples[i].perf);
  }
  st.total_perf = simd::lane_sum(perf);
  st.total_power_w = simd::lane_sum(power);
  st.mean_perf = st.total_perf / static_cast<double>(st.count);
  return st;
}

}  // namespace pbc::sim
