#include "sim/sweep.hpp"

#include <algorithm>

namespace pbc::sim {

std::vector<CapPair> cpu_split_grid(Watts budget,
                                    const CpuSweepOptions& opt) {
  std::vector<CapPair> caps;
  const double hi = budget.value() - opt.proc_lo.value();
  for (double m = opt.mem_lo.value(); m <= hi + 1e-9; m += opt.step.value()) {
    caps.push_back(CapPair{Watts{budget.value() - m}, Watts{m}});
  }
  return caps;
}

std::vector<AllocationSample> sweep_cpu_split(const CpuNodeSim& node,
                                              Watts budget,
                                              const CpuSweepOptions& opt) {
  const std::vector<CapPair> caps = cpu_split_grid(budget, opt);
  if (opt.path == SolverPath::kFast) {
    return node.steady_state_batch(caps);
  }
  std::vector<AllocationSample> samples;
  samples.reserve(caps.size());
  for (const CapPair& c : caps) {
    samples.push_back(node.reference_steady_state(c.cpu_cap, c.mem_cap));
  }
  return samples;
}

std::optional<AllocationSample> sweep_cpu_split_best(
    const CpuNodeSim& node, Watts budget, const CpuSweepOptions& opt) {
  const std::vector<AllocationSample> samples =
      sweep_cpu_split(node, budget, opt);
  std::optional<AllocationSample> best;
  for (const AllocationSample& s : samples) {
    // Strict > keeps the first of equal-perf splits, matching
    // BudgetSweep::best()'s max_element semantics.
    if (!best || s.perf > best->perf) best = s;
  }
  return best;
}

std::vector<AllocationSample> sweep_gpu_split(const GpuNodeSim& node,
                                              Watts board_cap,
                                              SolverPath path) {
  std::vector<AllocationSample> samples;
  const std::size_t clocks = node.gpu_model().mem_clock_count();
  samples.reserve(clocks);
  for (std::size_t i = 0; i < clocks; ++i) {
    samples.push_back(path == SolverPath::kFast
                          ? node.steady_state(i, board_cap)
                          : node.reference_steady_state(i, board_cap));
  }
  return samples;
}

const AllocationSample* BudgetSweep::best() const noexcept {
  if (samples.empty()) return nullptr;
  return &*std::max_element(samples.begin(), samples.end(),
                            [](const AllocationSample& a,
                               const AllocationSample& b) {
                              return a.perf < b.perf;
                            });
}

std::vector<BudgetSweep> sweep_cpu_budgets(const CpuNodeSim& node,
                                           std::span<const Watts> budgets,
                                           const CpuSweepOptions& opt,
                                           ThreadPool* pool) {
  // Build the operating-point table before fanning out, so workers start
  // solving immediately instead of serializing on the build lock.
  if (opt.path == SolverPath::kFast) node.prepare();
  std::vector<BudgetSweep> out(budgets.size());
  ThreadPool& tp = pool ? *pool : global_pool();
  tp.parallel_for_index(budgets.size(), [&](std::size_t i) {
    out[i].budget = budgets[i];
    out[i].samples = sweep_cpu_split(node, budgets[i], opt);
  });
  return out;
}

std::vector<BudgetSweep> sweep_gpu_budgets(const GpuNodeSim& node,
                                           std::span<const Watts> board_caps,
                                           SolverPath path,
                                           ThreadPool* pool) {
  if (path == SolverPath::kFast) node.prepare();
  std::vector<BudgetSweep> out(board_caps.size());
  ThreadPool& tp = pool ? *pool : global_pool();
  tp.parallel_for_index(board_caps.size(), [&](std::size_t i) {
    out[i].budget = board_caps[i];
    out[i].samples = sweep_gpu_split(node, board_caps[i], path);
  });
  return out;
}

std::vector<Watts> budget_grid(Watts lo, Watts hi, Watts step) {
  std::vector<Watts> grid;
  // Degenerate inputs yield an empty grid rather than an infinite loop
  // (step <= 0) or a silently reversed range (hi < lo).
  if (step.value() <= 0.0 || hi.value() < lo.value()) return grid;
  for (double b = lo.value(); b <= hi.value() + 1e-9; b += step.value()) {
    grid.push_back(Watts{b});
  }
  // hi is always part of the grid: callers sweep [lo, hi] and expect the
  // upper endpoint to be sampled even when the step does not land on it.
  if (grid.back().value() < hi.value() - 1e-9) grid.push_back(hi);
  return grid;
}

}  // namespace pbc::sim
