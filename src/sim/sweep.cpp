#include "sim/sweep.hpp"

#include <algorithm>

#include "sim/instrumentation.hpp"
#include "sim/simd.hpp"
#include "sim/solve_arena.hpp"

namespace pbc::sim {

namespace {

// The one split-grid loop. Counting and filling run the exact same FP
// recurrence (m += step from the same start), so the two passes the arena
// variant makes visit bit-identical grid points — this loop is
// golden-file critical and must not be reordered.
template <class Emit>
void for_each_split(Watts budget, const CpuSweepOptions& opt, Emit&& emit) {
  const double hi = budget.value() - opt.proc_lo.value();
  for (double m = opt.mem_lo.value(); m <= hi + 1e-9; m += opt.step.value()) {
    emit(CapPair{Watts{budget.value() - m}, Watts{m}});
  }
}

std::span<const CapPair> cpu_split_grid_into(Watts budget,
                                             const CpuSweepOptions& opt,
                                             SolveArena& arena) {
  std::size_t count = 0;
  for_each_split(budget, opt, [&](const CapPair&) { ++count; });
  const std::span<CapPair> caps = arena.get<CapPair>(count);
  std::size_t k = 0;
  for_each_split(budget, opt, [&](const CapPair& c) { caps[k++] = c; });
  return caps;
}

/// One blocked-sweep tile: the split grids of budgets[b0, b1) laid back to
/// back in arena storage, with bounds[k] marking segment starts (the
/// shape CpuNodeSim::steady_state_batch_best consumes). Each grid is
/// emitted by the same for_each_split recurrence the per-budget drivers
/// run, in the same budget order, so tiling never changes a grid point.
struct BlockGrid {
  std::span<const CapPair> caps;
  std::span<const std::int32_t> bounds;  // (b1 - b0) + 1 entries
};

BlockGrid block_split_grid_into(std::span<const Watts> budgets,
                                std::size_t b0, std::size_t b1,
                                const CpuSweepOptions& opt,
                                SolveArena& arena) {
  const std::size_t nb = b1 - b0;
  const std::span<std::int32_t> bounds = arena.get<std::int32_t>(nb + 1);
  std::size_t total = 0;
  bounds[0] = 0;
  for (std::size_t b = 0; b < nb; ++b) {
    for_each_split(budgets[b0 + b], opt, [&](const CapPair&) { ++total; });
    bounds[b + 1] = static_cast<std::int32_t>(total);
  }
  const std::span<CapPair> caps = arena.get<CapPair>(total);
  std::size_t k = 0;
  for (std::size_t b = 0; b < nb; ++b) {
    for_each_split(budgets[b0 + b], opt,
                   [&](const CapPair& c) { caps[k++] = c; });
  }
  return {caps, bounds};
}

/// Budget-block tiling shared by the blocked drivers; budget_block < 1
/// degrades to one budget per tile.
std::size_t block_size(const CpuSweepOptions& opt) noexcept {
  return std::max<std::size_t>(opt.budget_block, 1);
}

}  // namespace

std::vector<CapPair> cpu_split_grid(Watts budget,
                                    const CpuSweepOptions& opt) {
  std::vector<CapPair> caps;
  for_each_split(budget, opt,
                 [&](const CapPair& c) { caps.push_back(c); });
  return caps;
}

std::vector<AllocationSample> sweep_cpu_split(const CpuNodeSim& node,
                                              Watts budget,
                                              const CpuSweepOptions& opt) {
  SolveArena& arena = thread_solve_arena();
  const auto scope = arena.scope();
  const std::span<const CapPair> caps =
      cpu_split_grid_into(budget, opt, arena);
  std::vector<AllocationSample> samples(caps.size());
  if (opt.path == SolverPath::kFast) {
    node.steady_state_batch(caps, samples, arena);
  } else {
    for (std::size_t i = 0; i < caps.size(); ++i) {
      samples[i] =
          node.reference_steady_state(caps[i].cpu_cap, caps[i].mem_cap);
    }
  }
  return samples;
}

std::optional<AllocationSample> sweep_cpu_split_best(
    const CpuNodeSim& node, Watts budget, const CpuSweepOptions& opt) {
  // Fully arena-backed: grid, samples, and solver scratch all come from
  // the thread's arena, so a warm frontier/bench loop allocates nothing.
  SolveArena& arena = thread_solve_arena();
  const auto scope = arena.scope();
  const std::span<const CapPair> caps =
      cpu_split_grid_into(budget, opt, arena);
  const std::span<AllocationSample> samples =
      arena.get<AllocationSample>(caps.size());
  if (opt.path == SolverPath::kFast) {
    node.steady_state_batch(caps, samples, arena);
  } else {
    for (std::size_t i = 0; i < caps.size(); ++i) {
      samples[i] =
          node.reference_steady_state(caps[i].cpu_cap, caps[i].mem_cap);
    }
  }
  std::optional<AllocationSample> best;
  for (const AllocationSample& s : samples) {
    // Strict > keeps the first of equal-perf splits, matching
    // BudgetSweep::best()'s max_element semantics.
    if (!best || s.perf > best->perf) best = s;
  }
  return best;
}

std::vector<AllocationSample> sweep_gpu_split(const GpuNodeSim& node,
                                              Watts board_cap,
                                              SolverPath path) {
  std::vector<AllocationSample> samples;
  const std::size_t clocks = node.gpu_model().mem_clock_count();
  samples.reserve(clocks);
  for (std::size_t i = 0; i < clocks; ++i) {
    samples.push_back(path == SolverPath::kFast
                          ? node.steady_state(i, board_cap)
                          : node.reference_steady_state(i, board_cap));
  }
  return samples;
}

const AllocationSample* BudgetSweep::best() const noexcept {
  if (samples.empty()) return nullptr;
  return &*std::max_element(samples.begin(), samples.end(),
                            [](const AllocationSample& a,
                               const AllocationSample& b) {
                              return a.perf < b.perf;
                            });
}

std::vector<BudgetSweep> sweep_cpu_budgets(const CpuNodeSim& node,
                                           std::span<const Watts> budgets,
                                           const CpuSweepOptions& opt,
                                           ThreadPool* pool) {
  std::vector<BudgetSweep> out(budgets.size());
  ThreadPool& tp = pool ? *pool : global_pool();
  if (opt.path == SolverPath::kFast) {
    // Build the operating-point table before fanning out, so workers
    // start solving immediately instead of serializing on the build lock.
    node.prepare();
    // Cache-blocked tiling: each tile concatenates a block of budgets'
    // split grids and relaxes them in one batched pass, so every SoA
    // table row the solver streams services the whole block instead of
    // one budget. Per-cell results are bit-identical to the per-budget
    // sweep — batching never changes a cell's trajectory.
    const std::size_t block = block_size(opt);
    const std::size_t nblocks = (budgets.size() + block - 1) / block;
    tp.parallel_for_index(nblocks, [&](std::size_t blk) {
      const std::size_t b0 = blk * block;
      const std::size_t b1 = std::min(b0 + block, budgets.size());
      SolveArena& arena = thread_solve_arena();
      const auto scope = arena.scope();
      const BlockGrid grid =
          block_split_grid_into(budgets, b0, b1, opt, arena);
      const std::span<AllocationSample> samples =
          arena.get<AllocationSample>(grid.caps.size());
      node.steady_state_batch(grid.caps, samples, arena);
      detail::add_blocked_sweep_tiles(1);
      for (std::size_t b = b0; b < b1; ++b) {
        const auto s0 = static_cast<std::size_t>(grid.bounds[b - b0]);
        const auto s1 = static_cast<std::size_t>(grid.bounds[b - b0 + 1]);
        out[b].budget = budgets[b];
        out[b].samples.assign(samples.begin() + s0, samples.begin() + s1);
      }
    });
    return out;
  }
  tp.parallel_for_index(budgets.size(), [&](std::size_t i) {
    out[i].budget = budgets[i];
    out[i].samples = sweep_cpu_split(node, budgets[i], opt);
  });
  return out;
}

std::vector<std::optional<AllocationSample>> sweep_cpu_budgets_best(
    const CpuNodeSim& node, std::span<const Watts> budgets,
    const CpuSweepOptions& opt, ThreadPool* pool) {
  std::vector<std::optional<AllocationSample>> out(budgets.size());
  ThreadPool& tp = pool ? *pool : global_pool();
  if (opt.path != SolverPath::kFast) {
    tp.parallel_for_index(budgets.size(), [&](std::size_t i) {
      out[i] = sweep_cpu_split_best(node, budgets[i], opt);
    });
    return out;
  }
  node.prepare();
  const std::size_t block = block_size(opt);
  const std::size_t nblocks = (budgets.size() + block - 1) / block;
  tp.parallel_for_index(nblocks, [&](std::size_t blk) {
    const std::size_t b0 = blk * block;
    const std::size_t b1 = std::min(b0 + block, budgets.size());
    SolveArena& arena = thread_solve_arena();
    const auto scope = arena.scope();
    const BlockGrid grid = block_split_grid_into(budgets, b0, b1, opt, arena);
    const std::span<AllocationSample> best =
        arena.get<AllocationSample>(b1 - b0);
    node.steady_state_batch_best(grid.caps, grid.bounds, best, arena);
    detail::add_blocked_sweep_tiles(1);
    for (std::size_t b = b0; b < b1; ++b) {
      // Empty segments stay nullopt, matching sweep_cpu_split_best on an
      // empty grid.
      if (grid.bounds[b - b0] == grid.bounds[b - b0 + 1]) continue;
      out[b] = best[b - b0];
    }
  });
  return out;
}

std::vector<BudgetSweep> sweep_gpu_budgets(const GpuNodeSim& node,
                                           std::span<const Watts> board_caps,
                                           SolverPath path,
                                           ThreadPool* pool) {
  std::vector<BudgetSweep> out(board_caps.size());
  ThreadPool& tp = pool ? *pool : global_pool();
  if (path == SolverPath::kFast) {
    // Grid-level batching: the (cap x clock) grid is solved one clock at
    // a time, each clock resolving every board cap with a single
    // vectorized scan of that clock's board-power curve, then scattered
    // back into the per-budget ascending-clock sample rows.
    node.prepare();
    const std::size_t clocks = node.gpu_model().mem_clock_count();
    for (std::size_t i = 0; i < board_caps.size(); ++i) {
      out[i].budget = board_caps[i];
      out[i].samples.resize(clocks);
    }
    tp.parallel_for_index(clocks, [&](std::size_t c) {
      SolveArena& arena = thread_solve_arena();
      const auto scope = arena.scope();
      const std::span<AllocationSample> lane =
          arena.get<AllocationSample>(board_caps.size());
      node.steady_state_batch(c, board_caps, lane, arena);
      for (std::size_t i = 0; i < board_caps.size(); ++i) {
        out[i].samples[c] = lane[i];
      }
    });
    return out;
  }
  tp.parallel_for_index(board_caps.size(), [&](std::size_t i) {
    out[i].budget = board_caps[i];
    out[i].samples = sweep_gpu_split(node, board_caps[i], path);
  });
  return out;
}

std::vector<std::optional<AllocationSample>> sweep_gpu_budgets_best(
    const GpuNodeSim& node, std::span<const Watts> board_caps,
    SolverPath path, ThreadPool* pool) {
  std::vector<std::optional<AllocationSample>> out(board_caps.size());
  ThreadPool& tp = pool ? *pool : global_pool();
  if (path != SolverPath::kFast) {
    tp.parallel_for_index(board_caps.size(), [&](std::size_t i) {
      std::optional<AllocationSample> best;
      for (const AllocationSample& s :
           sweep_gpu_split(node, board_caps[i], path)) {
        // Strict > keeps the first (lowest) clock of equal-perf samples,
        // matching BudgetSweep::best()'s max_element semantics.
        if (!best || s.perf > best->perf) best = s;
      }
      out[i] = best;
    });
    return out;
  }
  node.prepare();
  // The batched best-clock engine resolves a whole cap span with one
  // vectorized scan per clock; caps are chunked across the pool so large
  // grids still fan out.
  constexpr std::size_t kCapChunk = 256;
  const std::size_t nchunks =
      (board_caps.size() + kCapChunk - 1) / kCapChunk;
  tp.parallel_for_index(nchunks, [&](std::size_t ch) {
    const std::size_t i0 = ch * kCapChunk;
    const std::size_t i1 = std::min(i0 + kCapChunk, board_caps.size());
    SolveArena& arena = thread_solve_arena();
    const auto scope = arena.scope();
    const std::span<AllocationSample> best =
        arena.get<AllocationSample>(i1 - i0);
    node.steady_state_batch_best(board_caps.subspan(i0, i1 - i0), best,
                                 arena);
    for (std::size_t i = i0; i < i1; ++i) out[i] = best[i - i0];
  });
  return out;
}

std::vector<Watts> budget_grid(Watts lo, Watts hi, Watts step) {
  std::vector<Watts> grid;
  // Degenerate inputs yield an empty grid rather than an infinite loop
  // (step <= 0) or a silently reversed range (hi < lo).
  if (step.value() <= 0.0 || hi.value() < lo.value()) return grid;
  for (double b = lo.value(); b <= hi.value() + 1e-9; b += step.value()) {
    grid.push_back(Watts{b});
  }
  // hi is always part of the grid: callers sweep [lo, hi] and expect the
  // upper endpoint to be sampled even when the step does not land on it.
  if (grid.back().value() < hi.value() - 1e-9) grid.push_back(hi);
  return grid;
}

SweepStats sweep_stats(std::span<const AllocationSample> samples) {
  SweepStats st;
  st.count = samples.size();
  if (samples.empty()) return st;
  SolveArena& arena = thread_solve_arena();
  const auto scope = arena.scope();
  const std::span<double> perf = arena.get<double>(samples.size());
  const std::span<double> power = arena.get<double>(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    perf[i] = samples[i].perf;
    power[i] = samples[i].proc_power.value() + samples[i].mem_power.value();
    st.max_perf = std::max(st.max_perf, samples[i].perf);
  }
  st.total_perf = simd::lane_sum(perf);
  st.total_power_w = simd::lane_sum(power);
  st.mean_perf = st.total_perf / static_cast<double>(st.count);
  return st;
}

}  // namespace pbc::sim
