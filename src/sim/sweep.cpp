#include "sim/sweep.hpp"

#include <algorithm>

namespace pbc::sim {

std::vector<AllocationSample> sweep_cpu_split(const CpuNodeSim& node,
                                              Watts budget,
                                              const CpuSweepOptions& opt) {
  std::vector<AllocationSample> samples;
  const double hi = budget.value() - opt.proc_lo.value();
  for (double m = opt.mem_lo.value(); m <= hi + 1e-9; m += opt.step.value()) {
    samples.push_back(
        node.steady_state(Watts{budget.value() - m}, Watts{m}));
  }
  return samples;
}

std::vector<AllocationSample> sweep_gpu_split(const GpuNodeSim& node,
                                              Watts board_cap) {
  std::vector<AllocationSample> samples;
  const std::size_t clocks = node.gpu_model().mem_clock_count();
  samples.reserve(clocks);
  for (std::size_t i = 0; i < clocks; ++i) {
    samples.push_back(node.steady_state(i, board_cap));
  }
  return samples;
}

const AllocationSample* BudgetSweep::best() const noexcept {
  if (samples.empty()) return nullptr;
  return &*std::max_element(samples.begin(), samples.end(),
                            [](const AllocationSample& a,
                               const AllocationSample& b) {
                              return a.perf < b.perf;
                            });
}

std::vector<BudgetSweep> sweep_cpu_budgets(const CpuNodeSim& node,
                                           std::span<const Watts> budgets,
                                           const CpuSweepOptions& opt,
                                           ThreadPool* pool) {
  std::vector<BudgetSweep> out(budgets.size());
  ThreadPool& tp = pool ? *pool : global_pool();
  tp.parallel_for_index(budgets.size(), [&](std::size_t i) {
    out[i].budget = budgets[i];
    out[i].samples = sweep_cpu_split(node, budgets[i], opt);
  });
  return out;
}

std::vector<BudgetSweep> sweep_gpu_budgets(const GpuNodeSim& node,
                                           std::span<const Watts> board_caps,
                                           ThreadPool* pool) {
  std::vector<BudgetSweep> out(board_caps.size());
  ThreadPool& tp = pool ? *pool : global_pool();
  tp.parallel_for_index(board_caps.size(), [&](std::size_t i) {
    out[i].budget = board_caps[i];
    out[i].samples = sweep_gpu_split(node, board_caps[i]);
  });
  return out;
}

std::vector<Watts> budget_grid(Watts lo, Watts hi, Watts step) {
  std::vector<Watts> grid;
  // Degenerate inputs yield an empty grid rather than an infinite loop
  // (step <= 0) or a silently reversed range (hi < lo).
  if (step.value() <= 0.0 || hi.value() < lo.value()) return grid;
  for (double b = lo.value(); b <= hi.value() + 1e-9; b += step.value()) {
    grid.push_back(Watts{b});
  }
  // hi is always part of the grid: callers sweep [lo, hi] and expect the
  // upper endpoint to be sampled even when the step does not land on it.
  if (grid.back().value() < hi.value() - 1e-9) grid.push_back(hi);
  return grid;
}

}  // namespace pbc::sim
