// Runtime-dispatched SIMD kernels for the batch solver layer.
//
// The solver's hot loops reduce to a handful of primitive shapes:
//
//  * max-index-within over a sorted monotone power curve, evaluated for a
//    whole batch of thresholds at once — the vector form of
//    ResponseCurve::max_index_within. Comparisons and index arithmetic
//    only, so every tier returns bit-identical indices to the scalar
//    bisection (docs/solver.md: the bit-identity-vs-ULP policy table).
//  * the same query through one level of indirection: gather the
//    thresholds of a grouped bucket (batch_max_index_indexed) or answer a
//    non-monotone curve through its sorted-order + prefix-max index
//    (batch_max_index_prefix). Both stay pure compare/index kernels and
//    inherit the bit-identity argument.
//  * a fixed-point confirm pass (batch_confirm): two gathered compares
//    per cell decide whether a governor answer reproduces itself, so the
//    blocked relaxation rescans only the cells that actually move.
//  * lane-split horizontal reduction (lane_sum) — vector accumulation
//    reassociates the adds, so this kernel is *not* bit-identical to a
//    left-to-right scalar sum; it carries a documented ULP bound instead
//    and is only used for reporting statistics, never for solver state.
//
// Dispatch is resolved once per process: the best tier the CPU supports,
// clamped by what was compiled in (CMake option PBC_SIMD, x86-64 only)
// and by the PBC_SIMD environment variable ("generic", "avx2",
// "avx512"). Tests pin the tier with force_simd_tier to run the same
// inputs through every tier and compare.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace pbc::sim::simd {

enum class SimdTier : int {
  kGeneric = 0,  ///< portable scalar fallback (always available)
  kAvx2 = 1,     ///< 4 x double lanes
  kAvx512 = 2,   ///< 8 x double lanes
};

[[nodiscard]] const char* to_string(SimdTier tier) noexcept;

/// The tier batch kernels currently dispatch to. Resolved on first call:
/// min(best tier the CPU reports, best tier compiled in, PBC_SIMD env
/// override when set).
[[nodiscard]] SimdTier active_tier() noexcept;

/// Highest tier this binary could run on this machine (ignores the env
/// override and any forced tier).
[[nodiscard]] SimdTier max_supported_tier() noexcept;

/// Pins dispatch to `tier` (clamped to max_supported_tier) until the next
/// call. Test/bench hook; not intended for concurrent use with in-flight
/// kernels — callers pin once up front.
void force_simd_tier(SimdTier tier) noexcept;

/// Removes a force_simd_tier pin, returning dispatch to the process
/// default (detected tier clamped by the PBC_SIMD env override).
void reset_simd_tier() noexcept;

/// For each thresholds[j], the answer of the top-down first-fit walk over
/// a *sorted non-decreasing* curve: max{ i : power[i] <= thresholds[j] },
/// or -1 when no index fits. Exact on every tier — the kernels only
/// compare the same stored doubles against the same thresholds with <=,
/// so out[j] is bit-identical to ResponseCurve::max_index_within on the
/// same curve. Preconditions: power sorted non-decreasing (the monotone
/// case checked at table build), out.size() == thresholds.size().
void batch_max_index_within(std::span<const double> power,
                            std::span<const double> thresholds,
                            std::span<std::int32_t> out) noexcept;

/// Non-monotone fallback, batched: for each thresholds[j],
/// out[j] = prefix_max[u - 1] where u is the number of entries of the
/// *sorted non-decreasing* `sorted_power` that are <= thresholds[j]
/// (i.e. the upper-bound index), or -1 when u == 0. With `sorted_power`
/// / `prefix_max` taken from a ResponseCurve's sorted-order index this
/// answers the exact top-down first-fit walk over the original
/// (non-monotone) curve — bit-identical on every tier, because every
/// tier compares the same stored doubles with the same <= predicate and
/// then reads the same precomputed int32 prefix-max lane (vector tiers
/// via a gather). NaN thresholds yield -1. Preconditions: sorted_power
/// non-decreasing, prefix_max.size() == sorted_power.size(),
/// out.size() == thresholds.size().
void batch_max_index_prefix(std::span<const double> sorted_power,
                            std::span<const std::int32_t> prefix_max,
                            std::span<const double> thresholds,
                            std::span<std::int32_t> out) noexcept;

/// Indexed (grouped) form of batch_max_index_within: for each j in
/// [0, idx.size()), out_base[idx[j]] = max{ i : power[i] <=
/// thr_base[idx[j]] } or -1. Vector tiers fuse the threshold gather, the
/// monotone count scan, and the answer scatter into one pass; the result
/// is bit-identical to looping batch_max_index_within over gathered
/// thresholds (same doubles, same <=). The index list must not contain
/// duplicates (each out slot is written once).
void batch_max_index_indexed(std::span<const double> power,
                             const double* thr_base,
                             std::span<const std::int32_t> idx,
                             std::int32_t* out_base) noexcept;

/// Fixed-point confirm pass for the blocked relaxation. For each cell
/// i in [0, n): row = soa + key[i] * stride is a *monotone* power lane
/// of length `stride`; tests whether the previous governor answer
/// val[i] reproduces itself against that row at threshold thr[i], i.e.
/// whether re-running the max-index query (with the caller's fallback
/// mapping applied: negative answers clamp to 0 when fallback ==
/// nullptr, else map to fallback[i], where fallback values are 0 or
/// `sleep_state`) would return val[i] again. Indices of cells that do
/// NOT reproduce are appended to `unconf`; returns how many. Exact on
/// every tier: the predicate is two <=/> compares of the same stored
/// doubles per cell (one at val[i], one at val[i] + 1), so confirm(i)
/// holds iff a full rescan would return val[i]. Callers must guarantee
/// every referenced row is monotone (CpuOpTable::fully_monotone).
std::size_t batch_confirm(const double* soa, std::size_t stride,
                          const std::int32_t* key, const std::int32_t* val,
                          const double* thr, std::size_t n,
                          const std::int32_t* fallback,
                          std::int32_t sleep_state,
                          std::int32_t* unconf) noexcept;

/// Horizontal sum with lane-split accumulation. NOT bit-identical to a
/// sequential left-to-right sum: vector tiers keep W independent partial
/// sums (W = lane width) and fold them at the end, which reassociates the
/// additions. The result is ULP-bounded against the scalar sum by
/// |lane_sum(x) - scalar_sum(x)| <= n * eps * sum(|x_i|) with
/// eps = 2^-52 (property-tested in tests/sim/simd_kernels_test.cpp).
/// Reporting/statistics use only — solver state never flows through it.
[[nodiscard]] double lane_sum(std::span<const double> x) noexcept;

namespace detail {
// Per-tier kernel entry points, exposed so the differential tests can run
// every compiled tier on one machine regardless of the active dispatch.
void batch_max_index_generic(const double* power, std::size_t n,
                             const double* thr, std::size_t m,
                             std::int32_t* out) noexcept;
void batch_max_index_prefix_generic(const double* sorted_power,
                                    const std::int32_t* prefix_max,
                                    std::size_t n, const double* thr,
                                    std::size_t m, std::int32_t* out) noexcept;
void batch_max_index_indexed_generic(const double* power, std::size_t n,
                                     const double* thr_base,
                                     const std::int32_t* idx, std::size_t m,
                                     std::int32_t* out_base) noexcept;
std::size_t batch_confirm_generic(const double* soa, std::size_t stride,
                                  const std::int32_t* key,
                                  const std::int32_t* val, const double* thr,
                                  std::size_t n, const std::int32_t* fallback,
                                  std::int32_t sleep_state,
                                  std::int32_t* unconf) noexcept;
double lane_sum_generic(const double* x, std::size_t n) noexcept;
#if defined(PBC_SIMD_X86)
void batch_max_index_avx2(const double* power, std::size_t n,
                          const double* thr, std::size_t m,
                          std::int32_t* out) noexcept;
void batch_max_index_prefix_avx2(const double* sorted_power,
                                 const std::int32_t* prefix_max,
                                 std::size_t n, const double* thr,
                                 std::size_t m, std::int32_t* out) noexcept;
void batch_max_index_indexed_avx2(const double* power, std::size_t n,
                                  const double* thr_base,
                                  const std::int32_t* idx, std::size_t m,
                                  std::int32_t* out_base) noexcept;
double lane_sum_avx2(const double* x, std::size_t n) noexcept;
void batch_max_index_avx512(const double* power, std::size_t n,
                            const double* thr, std::size_t m,
                            std::int32_t* out) noexcept;
void batch_max_index_prefix_avx512(const double* sorted_power,
                                   const std::int32_t* prefix_max,
                                   std::size_t n, const double* thr,
                                   std::size_t m, std::int32_t* out) noexcept;
void batch_max_index_indexed_avx512(const double* power, std::size_t n,
                                    const double* thr_base,
                                    const std::int32_t* idx, std::size_t m,
                                    std::int32_t* out_base) noexcept;
std::size_t batch_confirm_avx512(const double* soa, std::size_t stride,
                                 const std::int32_t* key,
                                 const std::int32_t* val, const double* thr,
                                 std::size_t n, const std::int32_t* fallback,
                                 std::int32_t sleep_state,
                                 std::int32_t* unconf) noexcept;
double lane_sum_avx512(const double* x, std::size_t n) noexcept;
#endif
}  // namespace detail

}  // namespace pbc::sim::simd
