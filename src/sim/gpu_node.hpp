// Steady-state simulator for a discrete GPU under a board power cap and a
// memory clock setting.
//
// Power is allocated to the memory domain *implicitly* by choosing its
// clock (nvidia-settings offsets); the board-level capper then DVFSes the
// SMs into whatever budget remains. Unused memory budget therefore flows to
// the SMs automatically — the "reclaim" behaviour the paper contrasts with
// the host's independent RAPL domains (§4). The driver also clamps caps to
// [board_min_cap, board_max_cap], which is why the catastrophic scenario
// categories IV-VI never appear on GPUs.
//
// Like CpuNodeSim, two solver paths produce bit-identical samples: the
// fast path bisects precomputed power-vs-SM-step curves (one per memory
// clock), the reference path (reference_*) re-walks the DVFS ladder with a
// fresh workload evaluation per probed step.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "hw/machine.hpp"
#include "sim/measurement.hpp"
#include "sim/solver_table.hpp"
#include "workload/workload.hpp"

namespace pbc::sim {

class SolveArena;

namespace detail {
struct GpuSolverCache;
}  // namespace detail

class GpuNodeSim {
 public:
  GpuNodeSim(hw::GpuMachine machine, workload::Workload wl);

  [[nodiscard]] const hw::GpuMachine& machine() const noexcept {
    return machine_;
  }
  [[nodiscard]] const workload::Workload& wl() const noexcept { return wl_; }
  [[nodiscard]] const hw::GpuModel& gpu_model() const noexcept { return gpu_; }

  /// Steady state at a memory clock and board cap. The cap is clamped to
  /// the driver-supported range. proc_cap/mem_cap in the sample report the
  /// implied allocation: estimated memory power at the clock, and the
  /// remainder of the board cap.
  [[nodiscard]] AllocationSample steady_state(std::size_t mem_clock_index,
                                              Watts board_cap) const noexcept;

  /// The default Nvidia policy: memory at the nominal (highest) clock
  /// regardless of cap or application (§6.3).
  [[nodiscard]] AllocationSample default_policy(Watts board_cap) const noexcept;

  /// Ablation variant: per-component budgeting *without* automatic reclaim,
  /// like the host's independent RAPL domains — the SM domain is limited to
  /// (cap − estimated memory power) even when memory actually draws less.
  /// Used by bench/ablation_mechanisms to quantify how much of the GPU's
  /// benign behaviour (§4) comes from reclaim.
  [[nodiscard]] AllocationSample steady_state_no_reclaim(
      std::size_t mem_clock_index, Watts board_cap) const noexcept;

  /// Batched solves at one memory clock over many board caps, written into
  /// `out` (out.size() == caps.size()) with scratch carved from `arena` —
  /// zero allocation once the arena is warm. The whole cap span resolves
  /// with a single vectorized scan of the clock's board-power curve.
  /// out[i] is bit-identical to steady_state(mem_clock_index, caps[i]).
  void steady_state_batch(std::size_t mem_clock_index,
                          std::span<const Watts> caps,
                          std::span<AllocationSample> out,
                          SolveArena& arena) const;

  /// Convenience wrapper over the span entry point, borrowing the calling
  /// thread's arena and returning a fresh vector.
  [[nodiscard]] std::vector<AllocationSample> steady_state_batch(
      std::size_t mem_clock_index, std::span<const Watts> caps) const;

  /// Batched best-clock solves — the GPU frontier engine. For every board
  /// cap, resolves all memory clocks through the per-clock batched capper
  /// and keeps the first clock (ascending) of maximal perf, comparing
  /// through the table's SoA perf lane. best[i] is bit-identical to
  /// sweeping steady_state over the clocks and taking BudgetSweep::best.
  void steady_state_batch_best(std::span<const Watts> caps,
                               std::span<AllocationSample> best,
                               SolveArena& arena) const;

  /// Reference solvers: the original top-down linear walks with a fresh
  /// workload evaluation per probed SM step. The fast path must match them
  /// bit for bit.
  [[nodiscard]] AllocationSample reference_steady_state(
      std::size_t mem_clock_index, Watts board_cap) const noexcept;

  [[nodiscard]] AllocationSample reference_steady_state_no_reclaim(
      std::size_t mem_clock_index, Watts board_cap) const noexcept;

  /// Forces construction of the operating-point table and returns it.
  const GpuOpTable& prepare() const;

  /// Steady state with both domains pinned (profiling aid).
  [[nodiscard]] AllocationSample pinned(std::size_t sm_step,
                                        std::size_t mem_clock_index)
      const noexcept;

  /// Board power with no cap imposed (max clocks) — the P_totmax profile
  /// parameter of Algorithm 2.
  [[nodiscard]] Watts uncapped_board_power() const noexcept;

 private:
  [[nodiscard]] AllocationSample evaluate_state(std::size_t sm_step,
                                                std::size_t mem_clock_index)
      const noexcept;

  /// Fast board-capper solve over the table; `hint` only warm-starts the
  /// bisection. `reclaim` selects total-power vs SM-power curves.
  [[nodiscard]] AllocationSample solve_fast(const GpuOpTable& table,
                                            std::size_t mem_clock_index,
                                            Watts board_cap, bool reclaim,
                                            SolveHint* hint) const noexcept;

  [[nodiscard]] const GpuOpTable& table() const;

  hw::GpuMachine machine_;
  workload::Workload wl_;
  hw::GpuModel gpu_;
  /// Shared (not copied) across copies of the node: immutable once built.
  std::shared_ptr<detail::GpuSolverCache> solver_cache_;
};

/// Shared handle to an immutable, table-prepared node (see PreparedCpuNode).
using PreparedGpuNode = std::shared_ptr<const GpuNodeSim>;

/// Builds a node and forces its operating-point table, returning the
/// shared handle.
[[nodiscard]] PreparedGpuNode make_prepared_gpu_node(hw::GpuMachine machine,
                                                     workload::Workload wl);

}  // namespace pbc::sim
