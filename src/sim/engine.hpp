// Discrete-time co-simulation of workload × power-capping firmware.
//
// Where CpuNodeSim jumps straight to the governors' fixed point, RaplEngine
// plays the control loop out in time: every tick it measures instantaneous
// component power, updates a running average over a RAPL-style window, and
// steps the package notch (P-states, then T-states) and the DRAM throttle
// level up or down to keep the averages under the caps. Phases alternate in
// work space, so multi-phase workloads (BT, FT, …) exercise the controller
// with the load changes that make their paper profiles less regular (§6.2).
//
// The steady-state and time-stepped paths are validated against each other
// in tests/sim/engine_test.cpp: long-run averages must converge to the
// fixed point.
#pragma once

#include <vector>

#include "hw/machine.hpp"
#include "sim/measurement.hpp"
#include "workload/workload.hpp"

namespace pbc::sim {

struct EngineConfig {
  Seconds tick{0.001};
  Seconds window{0.046};   ///< running-average horizon (RAPL PL1-like)
  Seconds duration{1.5};
  Seconds warmup{0.3};     ///< excluded from the aggregate
  bool record_timeline = false;
  std::size_t timeline_stride = 16;  ///< keep every Nth tick when recording
};

/// One recorded tick (decimated when timeline_stride > 1).
struct TickSample {
  Seconds t{0.0};
  Watts cpu_power{0.0};
  Watts mem_power{0.0};
  double rate_gunits = 0.0;
  std::size_t pstate_index = 0;
  double duty = 1.0;
  GBps avail_bw{0.0};
};

/// Outcome of a timed run.
struct TimedRun {
  AllocationSample aggregate;  ///< time-averaged powers, total-work perf
  std::vector<TickSample> timeline;
  /// Fraction of post-warmup ticks whose window-average power exceeded the
  /// cap by more than 1 W (transient overshoot of the feedback loop).
  double cpu_overshoot_frac = 0.0;
  double mem_overshoot_frac = 0.0;
  /// Post-warmup energy as metered through the RAPL ENERGY_STATUS counters
  /// (i.e. after register quantization and wrap handling).
  Joules cpu_energy{0.0};
  Joules mem_energy{0.0};
};

class RaplEngine {
 public:
  RaplEngine(hw::CpuMachine machine, workload::Workload wl,
             EngineConfig config = {});

  [[nodiscard]] TimedRun run(Watts cpu_cap, Watts mem_cap) const;

  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }

 private:
  hw::CpuMachine machine_;
  workload::Workload wl_;
  hw::CpuModel cpu_;
  hw::DramModel dram_;
  EngineConfig config_;
};

}  // namespace pbc::sim
