// AVX-512 kernel TU — same contract and confinement rules as
// simd_avx2.cpp, built with -mavx512f/dq/vl and reachable only through
// the runtime dispatch in simd.cpp.
#include "sim/simd.hpp"

#if defined(PBC_SIMD_X86) && defined(__AVX512F__)

#include <immintrin.h>

namespace pbc::sim::simd::detail {

void batch_max_index_avx512(const double* power, std::size_t n,
                            const double* thr, std::size_t m,
                            std::int32_t* out) noexcept {
  // 8 thresholds per vector; see the AVX2 kernel for the
  // count-is-the-answer argument and the monotone early exit.
  std::size_t j = 0;
  const __m512i one = _mm512_set1_epi64(1);
  for (; j + 8 <= m; j += 8) {
    const __m512d t = _mm512_loadu_pd(thr + j);
    __m512i count = _mm512_setzero_si512();
    for (std::size_t i = 0; i < n; ++i) {
      const __m512d p = _mm512_set1_pd(power[i]);
      const __mmask8 le = _mm512_cmp_pd_mask(p, t, _CMP_LE_OQ);
      if (le == 0) break;
      count = _mm512_mask_add_epi64(count, le, count, one);
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + j),
                        _mm256_sub_epi32(_mm512_cvtepi64_epi32(count),
                                         _mm256_set1_epi32(1)));
  }
  if (j < m) batch_max_index_generic(power, n, thr + j, m - j, out + j);
}

double lane_sum_avx512(const double* x, std::size_t n) noexcept {
  __m512d acc = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_add_pd(acc, _mm512_loadu_pd(x + i));
  }
  double tail = 0.0;
  for (; i < n; ++i) tail += x[i];
  return _mm512_reduce_add_pd(acc) + tail;
}

}  // namespace pbc::sim::simd::detail

#endif  // PBC_SIMD_X86 && __AVX512F__
