// AVX-512 kernel TU — same contract and confinement rules as
// simd_avx2.cpp, built with -mavx512f/dq/vl and reachable only through
// the runtime dispatch in simd.cpp.
#include "sim/simd.hpp"

#if defined(PBC_SIMD_X86) && defined(__AVX512F__)

#include <immintrin.h>

namespace pbc::sim::simd::detail {

namespace {

// 8-lane adaptive count scan over a sorted non-decreasing curve: returns
// per lane max{ i : power[i] <= t } or -1. A single midpoint probe picks
// the scan direction — when most lanes' answers sit in the upper half,
// counting the (usually short) suffix of entries > t from the top beats
// counting the prefix of entries <= t from the bottom. Both directions
// compute the same upper-bound count u (answer = u - 1) from the same
// <= / > compares of the same doubles, so the choice never changes a
// result. Unordered (NaN) thresholds satisfy neither compare: the
// bottom-up count yields -1 naturally; the top-down path forces it.
inline __m256i scan8(const double* power, std::size_t n, __m512d t) noexcept {
  if (n == 0) return _mm256_set1_epi32(-1);
  const __m512i one = _mm512_set1_epi64(1);
  const __mmask8 upper =
      _mm512_cmp_pd_mask(_mm512_set1_pd(power[n / 2]), t, _CMP_LE_OQ);
  __m512i count = _mm512_setzero_si512();
  if (__builtin_popcount(upper) >= 4) {
    for (std::size_t i = n; i-- > 0;) {
      const __mmask8 gt =
          _mm512_cmp_pd_mask(_mm512_set1_pd(power[i]), t, _CMP_GT_OQ);
      if (gt == 0) break;
      count = _mm512_mask_add_epi64(count, gt, count, one);
    }
    const __m256i ans =
        _mm256_sub_epi32(_mm256_set1_epi32(static_cast<int>(n) - 1),
                         _mm512_cvtepi64_epi32(count));
    const __mmask8 nan = _mm512_cmp_pd_mask(t, t, _CMP_UNORD_Q);
    return _mm256_mask_mov_epi32(ans, nan, _mm256_set1_epi32(-1));
  }
  for (std::size_t i = 0; i < n; ++i) {
    const __mmask8 le =
        _mm512_cmp_pd_mask(_mm512_set1_pd(power[i]), t, _CMP_LE_OQ);
    if (le == 0) break;
    count = _mm512_mask_add_epi64(count, le, count, one);
  }
  return _mm256_sub_epi32(_mm512_cvtepi64_epi32(count),
                          _mm256_set1_epi32(1));
}

}  // namespace

void batch_max_index_avx512(const double* power, std::size_t n,
                            const double* thr, std::size_t m,
                            std::int32_t* out) noexcept {
  // 8 thresholds per vector; see the AVX2 kernel for the
  // count-is-the-answer argument and scan8 for the adaptive direction.
  std::size_t j = 0;
  for (; j + 8 <= m; j += 8) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + j),
                        scan8(power, n, _mm512_loadu_pd(thr + j)));
  }
  if (j < m) batch_max_index_generic(power, n, thr + j, m - j, out + j);
}

void batch_max_index_prefix_avx512(const double* sorted_power,
                                   const std::int32_t* prefix_max,
                                   std::size_t n, const double* thr,
                                   std::size_t m, std::int32_t* out) noexcept {
  // scan8 over the sorted curve gives u - 1 per lane (u = upper-bound
  // count); one masked gather resolves it through the int32 prefix-max
  // lane, with u == 0 lanes pinned to -1. Bit-identical to the scalar
  // non-monotone walk: same compares, same precomputed indices.
  std::size_t j = 0;
  for (; j + 8 <= m; j += 8) {
    const __m256i r = scan8(sorted_power, n, _mm512_loadu_pd(thr + j));
    const __mmask8 valid =
        _mm256_cmp_epi32_mask(r, _mm256_setzero_si256(), _MM_CMPINT_NLT);
    const __m256i res = _mm256_mmask_i32gather_epi32(
        _mm256_set1_epi32(-1), valid, r, prefix_max, 4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + j), res);
  }
  if (j < m) {
    batch_max_index_prefix_generic(sorted_power, prefix_max, n, thr + j,
                                   m - j, out + j);
  }
}

void batch_max_index_indexed_avx512(const double* power, std::size_t n,
                                    const double* thr_base,
                                    const std::int32_t* idx, std::size_t m,
                                    std::int32_t* out_base) noexcept {
  // Fused gather/scan/scatter: lane j answers thr_base[idx[j]] and
  // writes out_base[idx[j]].
  std::size_t j = 0;
  for (; j + 8 <= m; j += 8) {
    const __m256i vi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + j));
    const __m512d t = _mm512_i32gather_pd(vi, thr_base, 8);
    _mm256_i32scatter_epi32(out_base, vi, scan8(power, n, t), 4);
  }
  if (j < m) {
    batch_max_index_indexed_generic(power, n, thr_base, idx + j, m - j,
                                    out_base);
  }
}

std::size_t batch_confirm_avx512(const double* soa, std::size_t stride,
                                 const std::int32_t* key,
                                 const std::int32_t* val, const double* thr,
                                 std::size_t n, const std::int32_t* fallback,
                                 std::int32_t sleep_state,
                                 std::int32_t* unconf) noexcept {
  // Vector form of batch_confirm_generic's case analysis: two gathered
  // row reads per 8 cells (row[v] and row[min(v + 1, stride - 1)], with
  // sleep lanes remapped to probe row[0]) decide every case with the
  // exact compares the scalar evaluation makes. Masks compose in
  // priority order sleep > zero-fallback > top > interior.
  if (stride <= 1) {
    return batch_confirm_generic(soa, stride, key, val, thr, n, fallback,
                                 sleep_state, unconf);
  }
  std::size_t u = 0;
  const __m256i vstride = _mm256_set1_epi32(static_cast<int>(stride));
  const __m256i vtop = _mm256_set1_epi32(static_cast<int>(stride) - 1);
  const __m256i vzero = _mm256_setzero_si256();
  const __m256i vone = _mm256_set1_epi32(1);
  const __m256i vsleep = _mm256_set1_epi32(sleep_state);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(val + i));
    const __m256i k =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(key + i));
    const __mmask8 m_sleep =
        fallback != nullptr ? _mm256_cmp_epi32_mask(v, vsleep, _MM_CMPINT_EQ)
                            : static_cast<__mmask8>(0);
    const __m256i lo = _mm256_mask_mov_epi32(v, m_sleep, vzero);
    const __m256i hi = _mm256_min_epi32(_mm256_add_epi32(lo, vone), vtop);
    const __m256i base = _mm256_mullo_epi32(k, vstride);
    const __m512d t = _mm512_loadu_pd(thr + i);
    const __m512d a = _mm512_i32gather_pd(_mm256_add_epi32(base, lo), soa, 8);
    const __m512d b = _mm512_i32gather_pd(_mm256_add_epi32(base, hi), soa, 8);
    const __mmask8 c_le = _mm512_cmp_pd_mask(a, t, _CMP_LE_OQ);
    const __mmask8 c_gt = _mm512_cmp_pd_mask(b, t, _CMP_GT_OQ);
    __mmask8 m_zero = _mm256_cmp_epi32_mask(v, vzero, _MM_CMPINT_EQ);
    if (fallback != nullptr) {
      const __m256i fb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(fallback + i));
      m_zero &= _mm256_cmp_epi32_mask(fb, vzero, _MM_CMPINT_EQ);
    }
    const __mmask8 at_top = _mm256_cmp_epi32_mask(lo, vtop, _MM_CMPINT_NLT);
    __mmask8 confirm = c_le & c_gt;                               // interior
    confirm = (confirm & ~at_top) | (at_top & c_le);              // top
    confirm = (confirm & ~m_zero) | (m_zero & c_gt);              // zero
    confirm = static_cast<__mmask8>((confirm & ~m_sleep) |
                                    (m_sleep & static_cast<__mmask8>(~c_le)));
    __mmask8 miss = static_cast<__mmask8>(~confirm);
    while (miss) {
      const int lane = __builtin_ctz(miss);
      unconf[u++] = static_cast<std::int32_t>(i + static_cast<std::size_t>(lane));
      miss = static_cast<__mmask8>(miss & (miss - 1));
    }
  }
  for (; i < n; ++i) {
    const std::int32_t v = val[i];
    const double* row = soa + static_cast<std::size_t>(key[i]) * stride;
    bool ok;
    if (fallback != nullptr && v == sleep_state) {
      ok = !(row[0] <= thr[i]);
    } else if (v == 0 && (fallback == nullptr || fallback[i] == 0)) {
      ok = row[1] > thr[i];
    } else if (static_cast<std::size_t>(v) >= stride - 1) {
      ok = row[static_cast<std::size_t>(v)] <= thr[i];
    } else {
      ok = row[static_cast<std::size_t>(v)] <= thr[i] &&
           row[static_cast<std::size_t>(v) + 1] > thr[i];
    }
    if (!ok) unconf[u++] = static_cast<std::int32_t>(i);
  }
  return u;
}

double lane_sum_avx512(const double* x, std::size_t n) noexcept {
  __m512d acc = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_add_pd(acc, _mm512_loadu_pd(x + i));
  }
  double tail = 0.0;
  for (; i < n; ++i) tail += x[i];
  return _mm512_reduce_add_pd(acc) + tail;
}

}  // namespace pbc::sim::simd::detail

#endif  // PBC_SIMD_X86 && __AVX512F__
