#include "sim/shared_node.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "rapl/ladder.hpp"

namespace pbc::sim {

namespace {
constexpr double kCapSlackW = 0.01;
constexpr int kMaxRelaxationIters = 24;
}  // namespace

std::vector<double> max_min_fair_share(const std::vector<double>& demands,
                                       double capacity) {
  std::vector<double> share(demands.size(), 0.0);
  std::vector<bool> satisfied(demands.size(), false);
  double remaining = std::max(capacity, 0.0);
  std::size_t open = demands.size();

  // Repeatedly grant the equal share; demands below it are satisfied
  // exactly and release the difference back to the pool.
  while (open > 0 && remaining > 1e-12) {
    const double fair = remaining / static_cast<double>(open);
    bool anyone_satisfied = false;
    for (std::size_t i = 0; i < demands.size(); ++i) {
      if (satisfied[i]) continue;
      if (demands[i] <= fair + 1e-12) {
        share[i] = demands[i];
        remaining -= demands[i];
        satisfied[i] = true;
        --open;
        anyone_satisfied = true;
      }
    }
    if (!anyone_satisfied) {
      for (std::size_t i = 0; i < demands.size(); ++i) {
        if (!satisfied[i]) share[i] = fair;
      }
      remaining = 0.0;
      break;
    }
  }
  return share;
}

SharedCpuNodeSim::SharedCpuNodeSim(hw::CpuMachine machine,
                                   std::vector<TenantConfig> tenants)
    : machine_(std::move(machine)),
      tenants_(std::move(tenants)),
      cpu_(machine_.cpu),
      dram_(machine_.dram) {
  int total = 0;
  for (const auto& t : tenants_) {
    assert(t.wl.validate().ok());
    assert(t.cores > 0);
    total += t.cores;
  }
  assert(total <= machine_.cpu.total_cores());
  (void)total;
}

SharedSample SharedCpuNodeSim::evaluate_state_per_core(
    const std::vector<std::size_t>& pstates, double duty,
    GBps total_bw) const noexcept {
  const auto& spec = machine_.cpu;
  duty = std::clamp(duty, spec.min_duty(), 1.0);

  auto evaluate_tenant = [&](std::size_t i, GBps avail) {
    const auto& t = tenants_[i];
    const auto& ps = spec.pstates[std::min(pstates[i],
                                           spec.pstates.size() - 1)];
    workload::PhaseOperands operands;
    operands.compute_capacity =
        Gflops{t.cores * spec.flops_per_cycle * ps.frequency.value() * duty};
    operands.avail_bw = avail;
    operands.peak_bw = machine_.dram.peak_bw;
    operands.rel_clock = ps.frequency.value() / spec.f_max().value();
    operands.duty = duty;
    operands.core_fraction = static_cast<double>(t.cores) /
                             static_cast<double>(spec.total_cores());
    return workload::evaluate(t.wl, operands);
  };

  // Pass 1: demands at the full level; pass 2: max-min fair shares.
  std::vector<double> demands;
  demands.reserve(tenants_.size());
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    demands.push_back(evaluate_tenant(i, total_bw).achieved_bw.value());
  }
  const std::vector<double> shares =
      max_min_fair_share(demands, total_bw.value());

  SharedSample s;
  s.duty = duty;
  s.total_bw = total_bw;
  s.tenant_pstates = pstates;
  s.pstate_index = *std::max_element(pstates.begin(), pstates.end());
  double dynamic_w = 0.0;
  double leakage = 0.0;
  double effective_bw = 0.0;
  int assigned = 0;
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    const auto& t = tenants_[i];
    const auto& ps = spec.pstates[std::min(pstates[i],
                                           spec.pstates.size() - 1)];
    const auto r = evaluate_tenant(i, GBps{std::max(shares[i], 1e-9)});
    TenantResult tr;
    tr.perf = r.metric;
    tr.rate_gunits = r.rate_gunits;
    tr.granted_bw = GBps{shares[i]};
    tr.achieved_bw = r.achieved_bw;
    tr.compute_util = r.compute_util;
    s.tenants.push_back(tr);

    dynamic_w += t.cores * spec.dyn_coeff_w_per_ghz_v2 * ps.voltage *
                 ps.voltage * ps.frequency.value() * r.activity_eff * duty;
    leakage += t.cores * spec.static_w_per_core_per_volt * ps.voltage;
    effective_bw += r.effective_bw.value();
    assigned += t.cores;
  }
  // Unassigned cores idle at the lowest voltage.
  leakage += (spec.total_cores() - assigned) *
             spec.static_w_per_core_per_volt * spec.pstates.front().voltage;
  const double pkg = spec.uncore_power.value() + leakage + dynamic_w;
  s.proc_power = Watts{std::max(pkg, spec.floor.value())};
  s.mem_power = dram_.power(GBps{effective_bw});
  return s;
}

SharedSample SharedCpuNodeSim::evaluate_state(
    const hw::CpuOperatingPoint& op, GBps total_bw) const noexcept {
  const auto& spec = machine_.cpu;
  const auto& ps = spec.pstates[std::min(op.pstate_index,
                                         spec.pstates.size() - 1)];
  const double duty =
      op.sleeping ? 0.02 : std::clamp(op.duty, spec.min_duty(), 1.0);
  const double rel_clock = ps.frequency.value() / spec.f_max().value();

  auto evaluate_tenant = [&](const TenantConfig& t, GBps avail) {
    workload::PhaseOperands operands;
    operands.compute_capacity =
        Gflops{t.cores * spec.flops_per_cycle * ps.frequency.value() * duty};
    operands.avail_bw = avail;
    operands.peak_bw = machine_.dram.peak_bw;
    operands.rel_clock = rel_clock;
    operands.duty = duty;
    operands.core_fraction = static_cast<double>(t.cores) /
                             static_cast<double>(spec.total_cores());
    return workload::evaluate(t.wl, operands);
  };

  // Pass 1: each tenant's bandwidth demand if it had the whole level.
  std::vector<double> demands;
  demands.reserve(tenants_.size());
  for (const auto& t : tenants_) {
    demands.push_back(evaluate_tenant(t, total_bw).achieved_bw.value());
  }
  const std::vector<double> shares =
      max_min_fair_share(demands, total_bw.value());

  // Pass 2: run each tenant within its fair share.
  SharedSample s;
  s.pstate_index = op.pstate_index;
  s.duty = op.duty;
  s.tenant_pstates.assign(tenants_.size(), op.pstate_index);
  s.total_bw = total_bw;
  double dynamic_w = 0.0;
  double effective_bw = 0.0;
  int busy_cores = 0;
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    const auto& t = tenants_[i];
    const auto r = evaluate_tenant(t, GBps{std::max(shares[i], 1e-9)});
    TenantResult tr;
    tr.perf = r.metric;
    tr.rate_gunits = r.rate_gunits;
    tr.granted_bw = GBps{shares[i]};
    tr.achieved_bw = r.achieved_bw;
    tr.compute_util = r.compute_util;
    s.tenants.push_back(tr);

    dynamic_w += t.cores * spec.dyn_coeff_w_per_ghz_v2 * ps.voltage *
                 ps.voltage * ps.frequency.value() * r.activity_eff *
                 (op.sleeping ? 0.02 : duty);
    effective_bw += r.effective_bw.value();
    busy_cores += t.cores;
  }
  // All cores leak; idle (unassigned) cores contribute leakage only.
  const double leakage =
      spec.total_cores() * spec.static_w_per_core_per_volt * ps.voltage;
  (void)busy_cores;
  const double pkg =
      spec.uncore_power.value() + leakage + (op.sleeping ? 0.0 : dynamic_w);
  s.proc_power = Watts{std::max(pkg, spec.floor.value())};
  s.mem_power = dram_.power(GBps{effective_bw});
  return s;
}

SharedSample SharedCpuNodeSim::steady_state_per_core(
    Watts cpu_cap, Watts mem_cap) const noexcept {
  const auto& spec = machine_.cpu;
  const auto& dspec = machine_.dram;
  const double bw_lo = dspec.min_bw.value();
  const double bw_step = (dspec.peak_bw.value() - bw_lo) /
                         static_cast<double>(dspec.throttle_levels - 1);
  const double mem_effective_cap =
      std::max(mem_cap.value(), dspec.floor.value());
  const std::size_t top = spec.pstates.size() - 1;

  // Normalization for the greedy trade-off: each tenant's rate at top
  // states with the full bandwidth level.
  const SharedSample reference = evaluate_state_per_core(
      std::vector<std::size_t>(tenants_.size(), top), 1.0, dspec.peak_bw);

  // Greedy package best response for a bandwidth level: from all-top,
  // repeatedly downgrade the tenant whose normalized throughput loss per
  // watt saved is smallest, falling back to duty cycling.
  auto pkg_best_response = [&](GBps bw, std::vector<std::size_t>* pstates,
                               double* duty) {
    pstates->assign(tenants_.size(), top);
    *duty = 1.0;
    SharedSample current = evaluate_state_per_core(*pstates, *duty, bw);
    while (current.proc_power.value() > cpu_cap.value() + kCapSlackW) {
      double best_score = -1.0;
      std::size_t best_tenant = tenants_.size();
      SharedSample best_sample;
      for (std::size_t i = 0; i < tenants_.size(); ++i) {
        if ((*pstates)[i] == 0) continue;
        auto candidate = *pstates;
        --candidate[i];
        SharedSample s = evaluate_state_per_core(candidate, *duty, bw);
        const double saved =
            current.proc_power.value() - s.proc_power.value();
        double loss = 0.0;
        for (std::size_t j = 0; j < tenants_.size(); ++j) {
          const double base = reference.tenants[j].rate_gunits;
          if (base > 0.0) {
            loss += (current.tenants[j].rate_gunits -
                     s.tenants[j].rate_gunits) /
                    base;
          }
        }
        const double score = saved / (std::max(loss, 0.0) + 1e-6);
        if (score > best_score) {
          best_score = score;
          best_tenant = i;
          best_sample = std::move(s);
        }
      }
      if (best_tenant < tenants_.size()) {
        --(*pstates)[best_tenant];
        current = std::move(best_sample);
        continue;
      }
      // All tenants at the lowest P-state: duty-cycle the package.
      const double next_duty =
          *duty - 1.0 / static_cast<double>(spec.tstate_levels);
      if (next_duty < spec.min_duty() - 1e-9) break;  // floor reached
      *duty = next_duty;
      current = evaluate_state_per_core(*pstates, *duty, bw);
    }
    return current;
  };

  std::vector<std::size_t> pstates(tenants_.size(), top);
  double duty = 1.0;
  GBps bw = dspec.peak_bw;
  SharedSample s = pkg_best_response(bw, &pstates, &duty);
  for (int iter = 0; iter < 8; ++iter) {
    // DRAM best response given the package configuration.
    GBps next_bw = dspec.min_bw;
    for (int level = dspec.throttle_levels - 1; level >= 0; --level) {
      const GBps candidate{bw_lo + static_cast<double>(level) * bw_step};
      if (evaluate_state_per_core(pstates, duty, candidate)
              .mem_power.value() <= mem_effective_cap + kCapSlackW) {
        next_bw = candidate;
        break;
      }
    }
    const bool stable = next_bw == bw;
    bw = next_bw;
    s = pkg_best_response(bw, &pstates, &duty);
    if (stable) break;
  }

  s.proc_cap = cpu_cap;
  s.mem_cap = mem_cap;
  s.proc_cap_respected = s.proc_power.value() <= cpu_cap.value() + kCapSlackW;
  s.mem_cap_respected = s.mem_power.value() <= mem_cap.value() + kCapSlackW;
  return s;
}

SharedSample SharedCpuNodeSim::steady_state(Watts cpu_cap,
                                            Watts mem_cap) const noexcept {
  if (machine_.cpu.per_core_dvfs) {
    return steady_state_per_core(cpu_cap, mem_cap);
  }
  const rapl::NotchLadder ladder(machine_.cpu);
  const auto& dspec = machine_.dram;
  const double bw_lo = dspec.min_bw.value();
  const double bw_step = (dspec.peak_bw.value() - bw_lo) /
                         static_cast<double>(dspec.throttle_levels - 1);
  const double mem_effective_cap =
      std::max(mem_cap.value(), dspec.floor.value());

  hw::CpuOperatingPoint op = ladder.op(ladder.count() - 1);
  GBps bw = dspec.peak_bw;

  for (int iter = 0; iter < kMaxRelaxationIters; ++iter) {
    // DRAM best response.
    GBps next_bw = dspec.min_bw;
    for (int level = dspec.throttle_levels - 1; level >= 0; --level) {
      const GBps candidate{bw_lo + static_cast<double>(level) * bw_step};
      if (evaluate_state(op, candidate).mem_power.value() <=
          mem_effective_cap + kCapSlackW) {
        next_bw = candidate;
        break;
      }
    }
    // Package best response.
    hw::CpuOperatingPoint next_op{
        0, machine_.cpu.min_duty(),
        cpu_cap.value() < machine_.cpu.floor.value()};
    for (std::size_t notch = ladder.count(); notch-- > 0;) {
      const hw::CpuOperatingPoint candidate = ladder.op(notch);
      if (evaluate_state(candidate, next_bw).proc_power.value() <=
          cpu_cap.value() + kCapSlackW) {
        next_op = candidate;
        break;
      }
    }
    const bool stable = next_bw == bw &&
                        next_op.pstate_index == op.pstate_index &&
                        next_op.duty == op.duty &&
                        next_op.sleeping == op.sleeping;
    op = next_op;
    bw = next_bw;
    if (stable) break;
  }

  SharedSample s = evaluate_state(op, bw);
  s.proc_cap = cpu_cap;
  s.mem_cap = mem_cap;
  s.proc_cap_respected = s.proc_power.value() <= cpu_cap.value() + kCapSlackW;
  s.mem_cap_respected = s.mem_power.value() <= mem_cap.value() + kCapSlackW;
  return s;
}

}  // namespace pbc::sim
