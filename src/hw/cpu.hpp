// CPU package model: P-states (DVFS), T-states (duty-cycle clock
// throttling), C-state floor, and an activity-dependent package power model.
//
// This is the component model underneath the simulated RAPL PKG domain. The
// paper (§3.3) attributes the CPU-side scenario categories to exactly these
// mechanisms: DVFS in the lightly-constrained region (scenario II), clock
// throttling below the lowest P-state (scenario IV), and a hardware floor
// below which caps are not respected (scenario VI).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/status.hpp"
#include "util/units.hpp"

namespace pbc::hw {

/// One DVFS operating point.
struct PState {
  Gigahertz frequency;
  double voltage = 1.0;  ///< core voltage at this operating point (V)
};

/// Static description of a CPU package (all sockets aggregated, matching the
/// paper's assumption (b): processor cores form one aggregated component).
struct CpuSpec {
  std::string name;
  int sockets = 2;
  int cores_per_socket = 10;

  /// Ascending by frequency. The governor selects among these.
  std::vector<PState> pstates;

  /// Effective peak FLOPs per core per cycle (vector width × issue).
  double flops_per_cycle = 8.0;

  /// Dynamic power coefficient: watts per (GHz · V²) per core at activity 1.
  double dyn_coeff_w_per_ghz_v2 = 2.2;

  /// Leakage/static power per core per volt (W/V).
  double static_w_per_core_per_volt = 0.8;

  /// Package-constant power: uncore, memory controllers, IO (all sockets).
  Watts uncore_power{30.0};

  /// Hardware floor P_cpu,L4: the package consumes at least this much while
  /// the OS runs, regardless of the cap (paper: 48 W on IvyBridge).
  Watts floor{48.0};

  /// Number of T-state duty levels (8 ⇒ duty ∈ {1/8, 2/8, …, 1}).
  int tstate_levels = 8;

  /// True when each core can run its own P-state (Haswell and later),
  /// false when DVFS is per-processor (IvyBridge). Single-job execution is
  /// unaffected (paper assumption (b): balanced threads share one state);
  /// multi-tenant nodes exploit it to give each tenant its own clock.
  bool per_core_dvfs = false;

  [[nodiscard]] int total_cores() const noexcept {
    return sockets * cores_per_socket;
  }
  [[nodiscard]] double min_duty() const noexcept {
    return 1.0 / static_cast<double>(tstate_levels);
  }
  [[nodiscard]] Gigahertz f_min() const noexcept {
    return pstates.front().frequency;
  }
  [[nodiscard]] Gigahertz f_max() const noexcept {
    return pstates.back().frequency;
  }

  /// Validates invariants (non-empty ascending P-states, positive counts).
  [[nodiscard]] Result<bool> validate() const;
};

/// Operating state chosen by a governor.
struct CpuOperatingPoint {
  std::size_t pstate_index = 0;  ///< index into CpuSpec::pstates
  double duty = 1.0;             ///< T-state duty cycle in (0, 1]
  bool sleeping = false;         ///< forced C-state (cap below floor)
};

/// Power/performance model over a CpuSpec. Stateless; all queries are pure.
class CpuModel {
 public:
  explicit CpuModel(CpuSpec spec);

  [[nodiscard]] const CpuSpec& spec() const noexcept { return spec_; }

  /// Package power at an operating point for a workload activity factor
  /// (fraction of peak switching activity, in [0, 1]). Never below the
  /// hardware floor.
  [[nodiscard]] Watts package_power(const CpuOperatingPoint& op,
                                    double activity) const noexcept;

  /// Aggregate compute capacity (GFLOP/s) at an operating point, before any
  /// memory-boundedness is applied.
  [[nodiscard]] Gflops compute_capacity(
      const CpuOperatingPoint& op) const noexcept;

  /// Maximum package power (highest P-state, full duty) at the activity.
  [[nodiscard]] Watts max_power(double activity) const noexcept;

  /// Package power at the lowest P-state, full duty — the P_cpu,L2 critical
  /// value for a workload with the given activity.
  [[nodiscard]] Watts lowest_pstate_power(double activity) const noexcept;

  /// Package power at the deepest T-state (lowest P-state, min duty) — the
  /// P_cpu,L3 critical value.
  [[nodiscard]] Watts deepest_tstate_power(double activity) const noexcept;

  /// The number of P-states.
  [[nodiscard]] std::size_t pstate_count() const noexcept {
    return spec_.pstates.size();
  }

 private:
  CpuSpec spec_;
};

/// Builds a linear voltage-frequency ladder: `steps` P-states from f_lo to
/// f_hi with voltage from v_lo to v_hi. Convenience for platform presets.
[[nodiscard]] std::vector<PState> linear_vf_ladder(Gigahertz f_lo,
                                                   Gigahertz f_hi,
                                                   double v_lo, double v_hi,
                                                   std::size_t steps);

}  // namespace pbc::hw
