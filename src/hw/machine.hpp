// Node-level machine descriptors: a CPU host (package + DRAM) or a discrete
// GPU card (SMs + global memory). These are the machines `M` in the paper's
// problem statement (§2.2), each with exactly two power-boundable
// components.
#pragma once

#include <string>

#include "hw/cpu.hpp"
#include "hw/dram.hpp"
#include "hw/gpu.hpp"

namespace pbc::hw {

/// Which component a power value refers to. "Processor" covers both CPU
/// packages and GPU SMs; "Memory" covers host DRAM and GPU global memory.
enum class Component { kProcessor, kMemory };

[[nodiscard]] constexpr const char* to_string(Component c) noexcept {
  return c == Component::kProcessor ? "processor" : "memory";
}

/// A CPU-based compute node: one aggregated processor component and one
/// aggregated DRAM component (paper assumptions (a)-(c)).
struct CpuMachine {
  std::string name;
  CpuSpec cpu;
  DramSpec dram;

  /// Sum of component maximum demands at full activity — above this total
  /// budget scenario I always exists.
  [[nodiscard]] Watts peak_power() const {
    const CpuModel cm{cpu};
    const DramModel dm{dram};
    return cm.max_power(1.0) + dm.max_power();
  }

  /// Sum of component hardware floors — the least the node can draw while
  /// running (caps below per-component floors are not respected).
  [[nodiscard]] Watts floor_power() const { return cpu.floor + dram.floor; }
};

/// A GPU accelerator treated as a node: SM component and global-memory
/// component under one board cap.
struct GpuMachine {
  std::string name;
  GpuSpec gpu;
};

}  // namespace pbc::hw
