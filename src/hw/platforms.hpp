// The four experimental platforms of the paper (Table 2), as calibrated
// presets:
//
//   CPU Platform I  — 2× Xeon 10-core IvyBridge, 256 GB DDR3-1600
//   CPU Platform II — 2× Xeon 12-core Haswell,   256 GB DDR4-2133
//   GPU Platform I  — Nvidia Titan XP, 12 GB GDDR5X
//   GPU Platform II — Nvidia Titan V,  12 GB HBM2
//
// Calibration constants are chosen to match power figures quoted in the
// paper text (CPU hardware floor 48 W, DRAM floor ≈ 68 W, SRA actual
// power 112 W CPU / 116 W DRAM, DDR4 lower background power, Titan V's
// compressed memory-power range); see DESIGN.md §2.
#pragma once

#include "hw/machine.hpp"

namespace pbc::hw {

/// 2× Intel Xeon IvyBridge 10-core, per-processor DVFS 1.2–2.5 GHz,
/// 256 GB DDR3-1600.
[[nodiscard]] CpuMachine ivybridge_node();

/// 2× Intel Xeon Haswell 12-core, per-core DVFS 1.2–2.3 GHz,
/// 256 GB DDR4-2133 (lower background power, higher bandwidth).
[[nodiscard]] CpuMachine haswell_node();

/// Nvidia Titan XP: GDDR5X with a wide memory clock/power range,
/// 250 W default cap, 300 W max.
[[nodiscard]] GpuMachine titan_xp();

/// Nvidia Titan V: HBM2 with a narrow memory power range and more
/// efficient SMs.
[[nodiscard]] GpuMachine titan_v();

}  // namespace pbc::hw
