// DRAM subsystem model: background (refresh/standby) power plus a dynamic
// term proportional to effective transferred bandwidth, with discrete
// bandwidth-throttle states.
//
// This is the component model underneath the simulated RAPL DRAM domain.
// Two properties matter for reproducing the paper:
//  * Big-memory nodes (256 GB) have a large constant background term, so
//    actual DRAM power "stays near the maximum" even when achieved
//    bandwidth falls (scenario II) and the DRAM floor P_mem,L3 is high.
//  * Bandwidth throttling reduces power roughly proportionally to access
//    rate, so memory-bound application performance tracks the DRAM cap
//    linearly (scenario III).
#pragma once

#include <string>

#include "util/status.hpp"
#include "util/units.hpp"

namespace pbc::hw {

/// Static description of an aggregated DRAM subsystem (all DIMMs; paper
/// assumption (c)).
struct DramSpec {
  std::string name;
  double capacity_gb = 256.0;

  /// Refresh + standby power per GB of installed memory.
  double background_w_per_gb = 0.266;

  /// Dynamic power per GB/s of *effective* transferred bandwidth. Workloads
  /// with poor row locality (random access) pay an energy multiplier on top
  /// of this (see workload::Phase::mem_energy_scale).
  double dyn_w_per_gbps = 0.6;

  /// Peak sustainable bandwidth with no throttling.
  GBps peak_bw{80.0};

  /// Bandwidth at the deepest throttle state the hardware supports.
  GBps min_bw{2.5};

  /// Number of discrete throttle states between min_bw and peak_bw
  /// (inclusive); RAPL picks the deepest state meeting the cap.
  int throttle_levels = 32;

  /// Hardware floor P_mem,L3: DRAM consumes at least this much on a running
  /// system; lower caps are disregarded (paper §3.3 / scenario V footnote).
  Watts floor{68.0};

  [[nodiscard]] Watts background_power() const noexcept {
    return Watts{background_w_per_gb * capacity_gb};
  }

  [[nodiscard]] Result<bool> validate() const;
};

/// Power/bandwidth model over a DramSpec. Stateless.
class DramModel {
 public:
  explicit DramModel(DramSpec spec);

  [[nodiscard]] const DramSpec& spec() const noexcept { return spec_; }

  /// Power drawn when the workload moves `effective_bw` of energy-weighted
  /// bandwidth. Never below the hardware floor.
  [[nodiscard]] Watts power(GBps effective_bw) const noexcept;

  /// The maximum effective bandwidth the subsystem may move under a power
  /// cap, before quantization to throttle states. Caps below the floor are
  /// treated as the floor (hardware disregards them).
  [[nodiscard]] GBps bw_budget_for_cap(Watts cap) const noexcept;

  /// Quantizes a bandwidth budget down to the nearest supported throttle
  /// state (throttle states are evenly spaced in bandwidth between min_bw
  /// and peak_bw).
  [[nodiscard]] GBps quantize_throttle(GBps bw) const noexcept;

  /// Power at peak bandwidth — the subsystem's maximum demand ceiling.
  [[nodiscard]] Watts max_power() const noexcept;

 private:
  DramSpec spec_;
};

}  // namespace pbc::hw
