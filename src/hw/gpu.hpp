// Discrete GPU model: an SM clock domain and a global-memory clock domain
// under a single board power cap.
//
// Unlike the host, a GPU exposes no per-component power limit registers;
// power is steered by setting the memory clock (nvidia-settings offsets)
// and letting the board-level capper DVFS the SMs into the remaining
// budget. That mechanism is what the paper (§4) credits for the GPU's
// "automatic reclaim" of unused memory budget and for the absence of the
// catastrophic scenario categories IV–VI.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/status.hpp"
#include "util/units.hpp"

namespace pbc::hw {

/// Static description of a discrete GPU card.
struct GpuSpec {
  std::string name;

  // --- SM clock domain ---
  double sm_min_mhz = 1400.0;
  double sm_max_mhz = 1900.0;
  std::size_t sm_steps = 11;  ///< discrete DVFS points, min..max inclusive
  /// Lowest SM clock reachable through user-facing frequency offsets (the
  /// paper's management knob); the board capper itself can throttle further
  /// down to sm_min_mhz. Used as the "min pairing frequency" when profiling
  /// P_totref for Algorithm 2.
  double sm_pairing_min_mhz = 1400.0;
  Watts sm_idle{25.0};        ///< SM domain power at min clock, idle
  Watts sm_max_dyn{220.0};    ///< additional dynamic power at max clock, util 1
  /// Peak SM compute throughput at sm_max_mhz (GFLOP/s; metric-generic).
  double peak_gflops = 12000.0;

  // --- memory clock domain ---
  /// Supported memory clock settings in MHz, ascending; the last entry is
  /// the nominal (highest stable) clock the default driver policy uses.
  std::vector<double> mem_clocks_mhz;
  double bw_per_mhz = 0.0842;     ///< GB/s of peak bandwidth per MHz
  Watts mem_idle{8.0};            ///< memory domain floor
  double mem_w_per_mhz = 0.004;   ///< clock-proportional (IO/PHY) power
  double mem_dyn_w_per_gbps = 0.065;  ///< access-proportional power

  // --- board ---
  Watts other_power{15.0};  ///< fans, VRM losses, host interface
  Watts board_min_cap{125.0};     ///< driver rejects caps below this
  Watts board_default_cap{250.0};
  Watts board_max_cap{300.0};

  [[nodiscard]] double nominal_mem_clock() const noexcept {
    return mem_clocks_mhz.empty() ? 0.0 : mem_clocks_mhz.back();
  }
  [[nodiscard]] double min_mem_clock() const noexcept {
    return mem_clocks_mhz.empty() ? 0.0 : mem_clocks_mhz.front();
  }

  [[nodiscard]] Result<bool> validate() const;
};

/// Operating state of the card: one SM DVFS step and one memory clock.
struct GpuOperatingPoint {
  std::size_t sm_step = 0;         ///< 0 = sm_min_mhz … sm_steps-1 = sm_max_mhz
  std::size_t mem_clock_index = 0; ///< index into GpuSpec::mem_clocks_mhz
};

/// Power/performance model over a GpuSpec. Stateless.
class GpuModel {
 public:
  explicit GpuModel(GpuSpec spec);

  [[nodiscard]] const GpuSpec& spec() const noexcept { return spec_; }

  [[nodiscard]] double sm_clock_mhz(std::size_t sm_step) const noexcept;

  /// Lowest DVFS step whose clock is at least `mhz` (last step if none).
  [[nodiscard]] std::size_t step_for_clock(double mhz) const noexcept;

  /// SM-domain power at the step for the given utilization (in [0,1]).
  /// Cubic in relative clock — DVFS scales voltage with frequency.
  [[nodiscard]] Watts sm_power(std::size_t sm_step,
                               double utilization) const noexcept;

  /// Memory-domain power at the clock index when the workload achieves
  /// `achieved_bw` of effective bandwidth.
  [[nodiscard]] Watts mem_power(std::size_t mem_clock_index,
                                GBps achieved_bw) const noexcept;

  /// The paper's Fig. 7 x-axis: memory power *estimated* from the clock
  /// setting via an empirical model (full-utilization power at that clock).
  [[nodiscard]] Watts estimated_mem_power(
      std::size_t mem_clock_index) const noexcept;

  /// Peak bandwidth available at a memory clock index.
  [[nodiscard]] GBps mem_bandwidth(std::size_t mem_clock_index) const noexcept;

  /// SM compute capacity (GFLOP/s) at a step.
  [[nodiscard]] Gflops compute_capacity(std::size_t sm_step) const noexcept;

  /// Total board power for an operating point, utilization, and bandwidth.
  [[nodiscard]] Watts board_power(const GpuOperatingPoint& op,
                                  double sm_utilization,
                                  GBps achieved_bw) const noexcept;

  [[nodiscard]] std::size_t sm_step_count() const noexcept {
    return spec_.sm_steps;
  }
  [[nodiscard]] std::size_t mem_clock_count() const noexcept {
    return spec_.mem_clocks_mhz.size();
  }

 private:
  GpuSpec spec_;
};

}  // namespace pbc::hw
