#include "hw/dram.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pbc::hw {

Result<bool> DramSpec::validate() const {
  if (capacity_gb <= 0.0) {
    return invalid_argument(name + ": non-positive DRAM capacity");
  }
  if (background_w_per_gb < 0.0 || dyn_w_per_gbps < 0.0) {
    return invalid_argument(name + ": negative power coefficients");
  }
  if (!(GBps{0.0} < min_bw) || !(min_bw < peak_bw)) {
    return invalid_argument(name + ": need 0 < min_bw < peak_bw");
  }
  if (throttle_levels < 2) {
    return invalid_argument(name + ": need at least two throttle levels");
  }
  if (floor.value() < 0.0) {
    return invalid_argument(name + ": negative floor");
  }
  return true;
}

DramModel::DramModel(DramSpec spec) : spec_(std::move(spec)) {
  assert(spec_.validate().ok());
}

Watts DramModel::power(GBps effective_bw) const noexcept {
  const double bw = std::clamp(effective_bw.value(), 0.0,
                               spec_.peak_bw.value());
  const double p =
      spec_.background_power().value() + spec_.dyn_w_per_gbps * bw;
  return Watts{std::max(p, spec_.floor.value())};
}

GBps DramModel::bw_budget_for_cap(Watts cap) const noexcept {
  const double effective_cap = std::max(cap.value(), spec_.floor.value());
  const double headroom = effective_cap - spec_.background_power().value();
  if (headroom <= 0.0) return spec_.min_bw;
  const double bw = headroom / spec_.dyn_w_per_gbps;
  return clamp(GBps{bw}, spec_.min_bw, spec_.peak_bw);
}

GBps DramModel::quantize_throttle(GBps bw) const noexcept {
  const double lo = spec_.min_bw.value();
  const double hi = spec_.peak_bw.value();
  const double step =
      (hi - lo) / static_cast<double>(spec_.throttle_levels - 1);
  const double clamped = std::clamp(bw.value(), lo, hi);
  // Round *down* to the nearest state: the governor must not exceed the cap.
  const double level = std::floor((clamped - lo) / step);
  return GBps{lo + level * step};
}

Watts DramModel::max_power() const noexcept { return power(spec_.peak_bw); }

}  // namespace pbc::hw
