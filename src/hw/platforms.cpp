#include "hw/platforms.hpp"

namespace pbc::hw {

CpuMachine ivybridge_node() {
  CpuSpec cpu;
  cpu.name = "2x Xeon IvyBridge 10-core";
  cpu.sockets = 2;
  cpu.cores_per_socket = 10;
  // Per-processor DVFS, 1.2-2.5 GHz in 100 MHz steps (14 P-states). The
  // voltage floor keeps the lowest P-state near 65-68 W for typical loads,
  // matching the paper's scenario II lower boundary (P_cpu ≈ 68 W).
  cpu.pstates = linear_vf_ladder(Gigahertz{1.2}, Gigahertz{2.5}, 0.78, 1.0, 14);
  cpu.flops_per_cycle = 8.0;  // AVX double precision
  cpu.dyn_coeff_w_per_ghz_v2 = 2.2;
  cpu.static_w_per_core_per_volt = 0.8;
  cpu.uncore_power = Watts{30.0};
  cpu.floor = Watts{48.0};  // paper: 48 W hardware-determined minimum
  cpu.tstate_levels = 8;

  DramSpec dram;
  dram.name = "256 GB DDR3-1600";
  dram.capacity_gb = 256.0;
  dram.background_w_per_gb = 0.266;  // => 68.1 W background on 256 GB
  dram.dyn_w_per_gbps = 0.60;
  dram.peak_bw = GBps{80.0};
  dram.min_bw = GBps{2.5};
  dram.throttle_levels = 32;
  dram.floor = Watts{68.0};  // paper: DRAM floor around 68 W

  return CpuMachine{"CPU Platform I (IvyBridge + DDR3)", std::move(cpu),
                    std::move(dram)};
}

CpuMachine haswell_node() {
  CpuSpec cpu;
  cpu.name = "2x Xeon Haswell 12-core";
  cpu.sockets = 2;
  cpu.cores_per_socket = 12;
  // Per-core DVFS, 1.2-2.3 GHz (12 P-states).
  cpu.pstates = linear_vf_ladder(Gigahertz{1.2}, Gigahertz{2.3}, 0.76, 0.95, 12);
  cpu.flops_per_cycle = 16.0;  // AVX2 FMA double precision
  cpu.dyn_coeff_w_per_ghz_v2 = 2.0;
  cpu.static_w_per_core_per_volt = 0.65;
  cpu.uncore_power = Watts{32.0};
  cpu.floor = Watts{50.0};
  cpu.tstate_levels = 8;
  cpu.per_core_dvfs = true;  // paper Table 2: per-core DVFS on Haswell

  DramSpec dram;
  dram.name = "256 GB DDR4-2133";
  dram.capacity_gb = 256.0;
  // DDR4 refreshes less often and runs at lower voltage: the background
  // term drops by ~40% versus DDR3, which is what gives Haswell its edge
  // at small total budgets in Fig. 2.
  dram.background_w_per_gb = 0.17;  // => 43.5 W background
  dram.dyn_w_per_gbps = 0.33;
  dram.peak_bw = GBps{120.0};
  dram.min_bw = GBps{3.5};
  dram.throttle_levels = 32;
  dram.floor = Watts{44.0};

  return CpuMachine{"CPU Platform II (Haswell + DDR4)", std::move(cpu),
                    std::move(dram)};
}

GpuMachine titan_xp() {
  GpuSpec gpu;
  gpu.name = "Nvidia Titan XP (GDDR5X)";
  // Under a power cap the board DVFSes well below the gaming clock range.
  gpu.sm_min_mhz = 607.0;
  gpu.sm_max_mhz = 1911.0;
  gpu.sm_steps = 20;
  gpu.sm_pairing_min_mhz = 1404.0;  // lowest offset-reachable gaming clock
  gpu.sm_idle = Watts{15.0};
  gpu.sm_max_dyn = Watts{235.0};
  gpu.peak_gflops = 12150.0;  // FP32
  // nvidia-settings memory transfer-rate offsets map to these points.
  gpu.mem_clocks_mhz = {4006.0, 4513.0, 5005.0, 5508.0, 5705.0};
  gpu.bw_per_mhz = 0.0842;  // 480 GB/s at the nominal 5705 MHz
  // GDDR5X has a wide clock-dependent power range (the paper's Fig. 7 left
  // column spans tens of watts of estimated memory power).
  gpu.mem_idle = Watts{8.0};
  gpu.mem_w_per_mhz = 0.012;
  gpu.mem_dyn_w_per_gbps = 0.040;
  gpu.other_power = Watts{10.0};
  gpu.board_min_cap = Watts{125.0};
  gpu.board_default_cap = Watts{250.0};
  gpu.board_max_cap = Watts{300.0};
  return GpuMachine{"GPU Platform I (Titan XP)", std::move(gpu)};
}

GpuMachine titan_v() {
  GpuSpec gpu;
  gpu.name = "Nvidia Titan V (HBM2)";
  gpu.sm_min_mhz = 607.0;
  gpu.sm_max_mhz = 1455.0;
  gpu.sm_steps = 16;
  gpu.sm_pairing_min_mhz = 912.0;
  // 12 nm SMs: noticeably more efficient than the Titan XP's — compute
  // demand saturates near 180 W (paper Fig. 6 right).
  gpu.sm_idle = Watts{15.0};
  gpu.sm_max_dyn = Watts{130.0};
  gpu.peak_gflops = 13800.0;  // FP32
  // HBM2 stacks: narrow clock range and a compressed power range.
  gpu.mem_clocks_mhz = {500.0, 600.0, 700.0, 800.0, 850.0};
  gpu.bw_per_mhz = 0.767;  // 652 GB/s at the nominal 850 MHz
  gpu.mem_idle = Watts{6.0};
  gpu.mem_w_per_mhz = 0.012;
  gpu.mem_dyn_w_per_gbps = 0.025;
  gpu.other_power = Watts{10.0};
  gpu.board_min_cap = Watts{100.0};
  gpu.board_default_cap = Watts{250.0};
  gpu.board_max_cap = Watts{300.0};
  return GpuMachine{"GPU Platform II (Titan V)", std::move(gpu)};
}

}  // namespace pbc::hw
