#include "hw/cpu.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pbc::hw {

Result<bool> CpuSpec::validate() const {
  if (sockets <= 0 || cores_per_socket <= 0) {
    return invalid_argument(name + ": non-positive core counts");
  }
  if (pstates.empty()) {
    return invalid_argument(name + ": empty P-state table");
  }
  for (std::size_t i = 1; i < pstates.size(); ++i) {
    if (!(pstates[i - 1].frequency < pstates[i].frequency)) {
      return invalid_argument(name + ": P-states not ascending by frequency");
    }
  }
  for (const auto& p : pstates) {
    if (p.frequency.value() <= 0.0 || p.voltage <= 0.0) {
      return invalid_argument(name + ": non-positive P-state parameters");
    }
  }
  if (tstate_levels < 1) {
    return invalid_argument(name + ": need at least one T-state level");
  }
  if (flops_per_cycle <= 0.0 || dyn_coeff_w_per_ghz_v2 < 0.0 ||
      static_w_per_core_per_volt < 0.0) {
    return invalid_argument(name + ": non-physical power coefficients");
  }
  return true;
}

CpuModel::CpuModel(CpuSpec spec) : spec_(std::move(spec)) {
  assert(spec_.validate().ok());
}

Watts CpuModel::package_power(const CpuOperatingPoint& op,
                              double activity) const noexcept {
  if (op.sleeping) return spec_.floor;
  const auto& ps = spec_.pstates[std::min(op.pstate_index,
                                          spec_.pstates.size() - 1)];
  const double cores = spec_.total_cores();
  const double v = ps.voltage;
  const double f = ps.frequency.value();
  const double duty = std::clamp(op.duty, spec_.min_duty(), 1.0);
  const double act = std::clamp(activity, 0.0, 1.0);

  // Clock gating during the duty-off fraction removes dynamic power only;
  // leakage and uncore persist (this is what makes deep throttling so much
  // less power-proportional than DVFS, producing the paper's scenario IV
  // performance cliff).
  const double dynamic =
      cores * spec_.dyn_coeff_w_per_ghz_v2 * v * v * f * act * duty;
  const double leakage = cores * spec_.static_w_per_core_per_volt * v;
  const double total = spec_.uncore_power.value() + leakage + dynamic;
  return Watts{std::max(total, spec_.floor.value())};
}

Gflops CpuModel::compute_capacity(const CpuOperatingPoint& op) const noexcept {
  if (op.sleeping) {
    // A sleeping package makes negligible forward progress; model the OS
    // waking it for a sliver of time.
    const auto& ps = spec_.pstates.front();
    return Gflops{spec_.total_cores() * spec_.flops_per_cycle *
                  ps.frequency.value() * 0.02};
  }
  const auto& ps = spec_.pstates[std::min(op.pstate_index,
                                          spec_.pstates.size() - 1)];
  const double duty = std::clamp(op.duty, spec_.min_duty(), 1.0);
  return Gflops{spec_.total_cores() * spec_.flops_per_cycle *
                ps.frequency.value() * duty};
}

Watts CpuModel::max_power(double activity) const noexcept {
  return package_power({spec_.pstates.size() - 1, 1.0, false}, activity);
}

Watts CpuModel::lowest_pstate_power(double activity) const noexcept {
  return package_power({0, 1.0, false}, activity);
}

Watts CpuModel::deepest_tstate_power(double activity) const noexcept {
  return package_power({0, spec_.min_duty(), false}, activity);
}

std::vector<PState> linear_vf_ladder(Gigahertz f_lo, Gigahertz f_hi,
                                     double v_lo, double v_hi,
                                     std::size_t steps) {
  assert(steps >= 2);
  std::vector<PState> ladder;
  ladder.reserve(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(steps - 1);
    ladder.push_back(PState{
        Gigahertz{f_lo.value() + t * (f_hi.value() - f_lo.value())},
        v_lo + t * (v_hi - v_lo)});
  }
  return ladder;
}

}  // namespace pbc::hw
