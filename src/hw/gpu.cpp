#include "hw/gpu.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pbc::hw {

Result<bool> GpuSpec::validate() const {
  if (sm_min_mhz <= 0.0 || sm_max_mhz <= sm_min_mhz) {
    return invalid_argument(name + ": need 0 < sm_min < sm_max");
  }
  if (sm_steps < 2) {
    return invalid_argument(name + ": need at least two SM DVFS steps");
  }
  if (mem_clocks_mhz.size() < 2) {
    return invalid_argument(name + ": need at least two memory clocks");
  }
  for (std::size_t i = 1; i < mem_clocks_mhz.size(); ++i) {
    if (mem_clocks_mhz[i] <= mem_clocks_mhz[i - 1]) {
      return invalid_argument(name + ": memory clocks not ascending");
    }
  }
  if (bw_per_mhz <= 0.0 || peak_gflops <= 0.0) {
    return invalid_argument(name + ": non-positive throughput parameters");
  }
  if (!(board_min_cap < board_max_cap) ||
      board_default_cap > board_max_cap || board_default_cap < board_min_cap) {
    return invalid_argument(name + ": inconsistent board cap range");
  }
  return true;
}

GpuModel::GpuModel(GpuSpec spec) : spec_(std::move(spec)) {
  assert(spec_.validate().ok());
}

double GpuModel::sm_clock_mhz(std::size_t sm_step) const noexcept {
  const std::size_t step = std::min(sm_step, spec_.sm_steps - 1);
  const double t = static_cast<double>(step) /
                   static_cast<double>(spec_.sm_steps - 1);
  return spec_.sm_min_mhz + t * (spec_.sm_max_mhz - spec_.sm_min_mhz);
}

std::size_t GpuModel::step_for_clock(double mhz) const noexcept {
  for (std::size_t step = 0; step < spec_.sm_steps; ++step) {
    if (sm_clock_mhz(step) >= mhz) return step;
  }
  return spec_.sm_steps - 1;
}

Watts GpuModel::sm_power(std::size_t sm_step,
                         double utilization) const noexcept {
  const double rel = sm_clock_mhz(sm_step) / spec_.sm_max_mhz;
  const double util = std::clamp(utilization, 0.0, 1.0);
  // V scales roughly linearly with f on the DVFS ladder, so dynamic power
  // ~ f·V² ~ f³ relative to the top step.
  return Watts{spec_.sm_idle.value() +
               spec_.sm_max_dyn.value() * util * rel * rel * rel};
}

Watts GpuModel::mem_power(std::size_t mem_clock_index,
                          GBps achieved_bw) const noexcept {
  const std::size_t idx =
      std::min(mem_clock_index, spec_.mem_clocks_mhz.size() - 1);
  const double clock = spec_.mem_clocks_mhz[idx];
  const double bw = std::clamp(achieved_bw.value(), 0.0,
                               mem_bandwidth(idx).value());
  return Watts{spec_.mem_idle.value() + spec_.mem_w_per_mhz * clock +
               spec_.mem_dyn_w_per_gbps * bw};
}

Watts GpuModel::estimated_mem_power(
    std::size_t mem_clock_index) const noexcept {
  const std::size_t idx =
      std::min(mem_clock_index, spec_.mem_clocks_mhz.size() - 1);
  return mem_power(idx, mem_bandwidth(idx));
}

GBps GpuModel::mem_bandwidth(std::size_t mem_clock_index) const noexcept {
  const std::size_t idx =
      std::min(mem_clock_index, spec_.mem_clocks_mhz.size() - 1);
  return GBps{spec_.bw_per_mhz * spec_.mem_clocks_mhz[idx]};
}

Gflops GpuModel::compute_capacity(std::size_t sm_step) const noexcept {
  return Gflops{spec_.peak_gflops * sm_clock_mhz(sm_step) / spec_.sm_max_mhz};
}

Watts GpuModel::board_power(const GpuOperatingPoint& op, double sm_utilization,
                            GBps achieved_bw) const noexcept {
  return sm_power(op.sm_step, sm_utilization) +
         mem_power(op.mem_clock_index, achieved_bw) + spec_.other_power;
}

}  // namespace pbc::hw
