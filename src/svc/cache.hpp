// Sharded LRU cache for computed profiles and frontiers.
//
// Lookups under load come from many threads at once (the engine serves
// one node-manager query per request), so the cache is split into shards
// each guarded by its own mutex: a lookup locks only the shard its key
// maps to, and shard selection reuses the key's already-mixed high word.
// Within a shard, recency is a doubly linked list (front = most recent)
// with an index map; eviction pops the tail once the shard exceeds its
// slice of the total capacity. Values are shared_ptr<const V>, so an
// entry evicted mid-use stays alive for the readers that hold it.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "svc/key.hpp"

namespace pbc::svc {

template <class Value>
class ShardedLruCache {
 public:
  /// `capacity` is the total entry budget across all shards; each shard
  /// gets an equal slice (at least one entry). The shard count is clamped
  /// so no shard would have zero capacity. When `eviction_counter` is
  /// set, every evicted entry also increments it (the per-shard count
  /// behind evictions() is kept either way).
  explicit ShardedLruCache(std::size_t capacity, std::size_t shard_count = 8,
                           obs::Counter* eviction_counter = nullptr)
      : eviction_counter_(eviction_counter) {
    if (capacity == 0) capacity = 1;
    if (shard_count == 0) shard_count = 1;
    shard_count = std::min(shard_count, capacity);
    const std::size_t per_shard = (capacity + shard_count - 1) / shard_count;
    capacity_ = per_shard * shard_count;
    shards_.reserve(shard_count);
    for (std::size_t i = 0; i < shard_count; ++i) {
      shards_.push_back(std::make_unique<Shard>());
      shards_.back()->capacity = per_shard;
    }
  }

  /// Returns the cached value and refreshes its recency, or nullptr.
  [[nodiscard]] std::shared_ptr<const Value> get(const CacheKey& key) {
    Shard& s = shard_for(key);
    std::lock_guard lock(s.mu);
    const auto it = s.index.find(key);
    if (it == s.index.end()) return nullptr;
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return it->second->second;
  }

  /// Inserts or refreshes an entry, evicting the shard's least recently
  /// used entries as needed.
  void put(const CacheKey& key, std::shared_ptr<const Value> value) {
    Shard& s = shard_for(key);
    std::lock_guard lock(s.mu);
    const auto it = s.index.find(key);
    if (it != s.index.end()) {
      it->second->second = std::move(value);
      s.lru.splice(s.lru.begin(), s.lru, it->second);
      return;
    }
    s.lru.emplace_front(key, std::move(value));
    s.index.emplace(key, s.lru.begin());
    while (s.lru.size() > s.capacity) {
      s.index.erase(s.lru.back().first);
      s.lru.pop_back();
      ++s.evictions;
      if (eviction_counter_ != nullptr) eviction_counter_->add(1);
    }
  }

  /// Total entries across shards (O(shards); approximate under load).
  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const auto& s : shards_) {
      std::lock_guard lock(s->mu);
      n += s->lru.size();
    }
    return n;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  [[nodiscard]] std::uint64_t evictions() const {
    std::uint64_t n = 0;
    for (const auto& s : shards_) {
      std::lock_guard lock(s->mu);
      n += s->evictions;
    }
    return n;
  }

  void clear() {
    for (const auto& s : shards_) {
      std::lock_guard lock(s->mu);
      s->lru.clear();
      s->index.clear();
    }
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::list<std::pair<CacheKey, std::shared_ptr<const Value>>> lru;
    std::unordered_map<
        CacheKey,
        typename std::list<
            std::pair<CacheKey, std::shared_ptr<const Value>>>::iterator,
        CacheKeyHash>
        index;
    std::size_t capacity = 1;
    std::uint64_t evictions = 0;
  };

  [[nodiscard]] Shard& shard_for(const CacheKey& key) noexcept {
    return *shards_[key.hi % shards_.size()];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t capacity_ = 0;
  obs::Counter* eviction_counter_ = nullptr;
};

}  // namespace pbc::svc
