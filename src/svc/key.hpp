// Cache keys for the coordination query engine.
//
// A key is a 128-bit digest (two independently seeded FNV-1a 64 streams)
// of the canonical byte encoding of the full request descriptor: machine
// spec + workload + (for frontiers) the budget grid and sweep options.
// 128 bits make accidental collisions negligible at any realistic cache
// population, so the engine treats key equality as descriptor equality
// and never stores the descriptors themselves.
//
// Every hashed record starts with a schema-version tag: bumping
// kKeySchemaVersion invalidates all previously computed keys whenever the
// encoding (or the meaning of a hashed field) changes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "core/dynamic.hpp"
#include "ctrl/controller.hpp"
#include "hw/machine.hpp"
#include "sim/sweep.hpp"
#include "util/hash.hpp"
#include "workload/trace.hpp"
#include "workload/workload.hpp"

namespace pbc::svc {

/// Version of the canonical encoding below.
inline constexpr std::uint8_t kKeySchemaVersion = 1;

/// 128-bit cache key. Value-comparable; shard/bucket selection uses `hi`
/// and `lo` as independent well-mixed words.
struct CacheKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend constexpr bool operator==(const CacheKey&,
                                   const CacheKey&) noexcept = default;
};

struct CacheKeyHash {
  [[nodiscard]] std::size_t operator()(const CacheKey& k) const noexcept {
    // hi and lo are already uniformly mixed; fold them.
    return static_cast<std::size_t>(k.hi ^ (k.lo * 0x9e3779b97f4a7c15ULL));
  }
};

/// Key for the CPU critical-power profile of (machine, workload).
[[nodiscard]] CacheKey cpu_profile_key(const hw::CpuMachine& machine,
                                       const workload::Workload& wl);

/// Key for the GPU profile parameters of (card, workload).
[[nodiscard]] CacheKey gpu_profile_key(const hw::GpuMachine& machine,
                                       const workload::Workload& wl);

/// Key for a CPU perf_max frontier of (machine, workload, budget grid,
/// sweep options).
[[nodiscard]] CacheKey cpu_frontier_key(const hw::CpuMachine& machine,
                                        const workload::Workload& wl,
                                        std::span<const Watts> budgets,
                                        const sim::CpuSweepOptions& opt);

/// Key for a trace replay of (machine, workload, trace, caps).
[[nodiscard]] CacheKey replay_key(const hw::CpuMachine& machine,
                                  const workload::Workload& wl,
                                  const workload::PhaseTrace& trace,
                                  Watts cpu_cap, Watts mem_cap);

/// Key for a dynamic-shifting run of (machine, workload, trace, budget,
/// shifting config). The config's ReplayPath is deliberately excluded
/// from the encoding: both engines are bit-identical, so path selection
/// must not split the cache.
[[nodiscard]] CacheKey shift_key(const hw::CpuMachine& machine,
                                 const workload::Workload& wl,
                                 const workload::PhaseTrace& trace,
                                 Watts total_budget,
                                 const core::ShiftingConfig& cfg);

/// Key for a closed-loop controller run of (machine, workload, trace,
/// budget, controller config). Every numeric knob and the seed are
/// hashed; the config's registry and tracer pointers are deliberately
/// excluded — they affect where telemetry is published, never the
/// result, so observability wiring must not split the cache.
[[nodiscard]] CacheKey online_key(const hw::CpuMachine& machine,
                                  const workload::Workload& wl,
                                  const workload::PhaseTrace& trace,
                                  Watts total_budget,
                                  const ctrl::ControllerConfig& cfg);

}  // namespace pbc::svc
