#include "svc/request.hpp"

#include "sim/trace_replay.hpp"
#include "svc/key.hpp"
#include "util/hash.hpp"

namespace pbc::svc {

namespace {

constexpr QueryKind kKindByIndex[] = {
    QueryKind::kQueryCpu, QueryKind::kQueryGpu, QueryKind::kSample,
    QueryKind::kFrontier, QueryKind::kReplay,   QueryKind::kShift,
    QueryKind::kCluster,  QueryKind::kOnline,
};
static_assert(sizeof(kKindByIndex) / sizeof(kKindByIndex[0]) ==
                  kQueryKindCount,
              "RequestOp variant and QueryKind must stay index-aligned");
static_assert(std::variant_size_v<RequestOp> == kQueryKindCount);
static_assert(std::variant_size_v<ResponseOp> == kQueryKindCount);

[[nodiscard]] Status check_pair(const workload::Workload& wl) {
  const auto v = wl.validate();
  if (!v.ok()) return v.error();
  return {};
}

[[nodiscard]] Status check_traced(const workload::Workload& wl,
                                  const workload::PhaseTrace& trace) {
  if (auto s = check_pair(wl); !s.ok()) return s;
  return sim::check_trace(trace, wl.phases.size());
}

}  // namespace

QueryKind request_kind(const Request& req) noexcept {
  return kKindByIndex[req.op.index()];
}

QueryKind response_kind(const Response& resp) noexcept {
  return kKindByIndex[resp.result.index()];
}

std::uint64_t descriptor_hash(const Request& req) {
  return std::visit(
      [](const auto& op) -> std::uint64_t {
        using T = std::decay_t<decltype(op)>;
        if constexpr (std::is_same_v<T, QueryGpuOp>) {
          return gpu_profile_key(op.machine, op.wl).hi;
        } else if constexpr (std::is_same_v<T, ClusterOp>) {
          // Cluster runs have no single (machine, workload) pair; route by
          // the node type so repeat runs over one fleet share a shard's
          // sim-node cache.
          Fnv1a64 h(0x5bd1e995u);
          h.str(op.node_type.name);
          h.str(op.node_type.cpu.name);
          h.str(op.node_type.dram.name);
          h.size(op.nodes);
          return h.digest();
        } else {
          return cpu_profile_key(op.machine, op.wl).hi;
        }
      },
      req.op);
}

Status validate(const Request& req) {
  return std::visit(
      [](const auto& op) -> Status {
        using T = std::decay_t<decltype(op)>;
        if constexpr (std::is_same_v<T, QueryCpuOp> ||
                      std::is_same_v<T, QueryGpuOp> ||
                      std::is_same_v<T, SampleOp>) {
          return check_pair(op.wl);
        } else if constexpr (std::is_same_v<T, FrontierOp>) {
          if (auto s = check_pair(op.wl); !s.ok()) return s;
          if (op.budgets.empty()) {
            return invalid_argument("frontier: empty budget grid");
          }
          if (op.step.value() <= 0.0) {
            return invalid_argument("frontier: non-positive sweep step");
          }
          return {};
        } else if constexpr (std::is_same_v<T, ReplayOp> ||
                             std::is_same_v<T, ShiftOp> ||
                             std::is_same_v<T, OnlineOp>) {
          return check_traced(op.wl, op.trace);
        } else {
          static_assert(std::is_same_v<T, ClusterOp>);
          if (op.nodes == 0) return invalid_argument("cluster: zero nodes");
          if (op.global_budget.value() <= 0.0) {
            return invalid_argument("cluster: non-positive global budget");
          }
          if (op.gpu_nodes > 0 && !op.gpu_type.has_value()) {
            return invalid_argument(
                "cluster: gpu_nodes set without a gpu_type descriptor");
          }
          for (const auto& job : op.jobs) {
            if (auto s = check_pair(job.wl); !s.ok()) return s;
          }
          return {};
        }
      },
      req.op);
}

}  // namespace pbc::svc
