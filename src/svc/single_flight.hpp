// Single-flight deduplication of in-flight computations.
//
// When many concurrent queries miss the cache on the same key, computing
// the profile once and handing the result to every waiter both cuts
// latency and keeps a thundering herd from monopolising the thread pool.
// The first thread to arrive on a key becomes the leader and runs the
// computation; threads arriving while it runs block on a shared_future
// and are counted as coalesced. The in-flight table holds only keys
// currently being computed — completed entries move to the LRU cache and
// are erased here, so the table stays tiny.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "svc/key.hpp"

namespace pbc::svc {

template <class Value>
class SingleFlight {
 public:
  /// Outcome of one run() call, for the engine's counters.
  struct Outcome {
    std::shared_ptr<const Value> value;
    bool led = false;  ///< this call executed the computation itself
  };

  /// Returns fn()'s result for `key`, computing it at most once across
  /// all concurrent callers. fn runs on the leader's thread; exceptions
  /// propagate to every waiter.
  template <class Fn>
  Outcome run(const CacheKey& key, Fn&& fn) {
    std::shared_ptr<Slot> slot;
    {
      std::unique_lock lock(mu_);
      const auto it = inflight_.find(key);
      if (it != inflight_.end()) {
        // Copy the future under the lock but wait outside it: blocking
        // here would serialize every key behind one computation.
        auto future = it->second->future;
        lock.unlock();
        Outcome o;
        o.value = future.get();
        o.led = false;
        return o;
      }
      slot = std::make_shared<Slot>();
      slot->future = slot->promise.get_future().share();
      inflight_.emplace(key, slot);
    }

    Outcome o;
    o.led = true;
    try {
      o.value = fn();
    } catch (...) {
      slot->promise.set_exception(std::current_exception());
      erase(key);
      throw;
    }
    slot->promise.set_value(o.value);
    erase(key);
    return o;
  }

 private:
  struct Slot {
    std::promise<std::shared_ptr<const Value>> promise;
    std::shared_future<std::shared_ptr<const Value>> future;
  };

  void erase(const CacheKey& key) {
    std::lock_guard lock(mu_);
    inflight_.erase(key);
  }

  std::mutex mu_;
  std::unordered_map<CacheKey, std::shared_ptr<Slot>, CacheKeyHash> inflight_;
};

}  // namespace pbc::svc
