#include "svc/engine.hpp"

#include <unordered_map>

#include "sim/cpu_node.hpp"
#include "sim/gpu_node.hpp"

namespace pbc::svc {

namespace {

[[nodiscard]] std::uint64_t elapsed_ns(
    std::chrono::steady_clock::time_point t0) {
  const auto dt = std::chrono::steady_clock::now() - t0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count());
}

}  // namespace

QueryEngine::QueryEngine(EngineOptions opt)
    : opt_(opt),
      owned_registry_(opt.registry != nullptr
                          ? nullptr
                          : std::make_unique<obs::MetricsRegistry>()),
      registry_(opt.registry != nullptr ? opt.registry
                                        : owned_registry_.get()),
      metrics_(*registry_),
      cpu_profiles_(opt.profile_cache_capacity, opt.shards,
                    metrics_.profile_evictions),
      gpu_profiles_(opt.profile_cache_capacity, opt.shards,
                    metrics_.profile_evictions),
      frontiers_(opt.frontier_cache_capacity, opt.shards,
                 metrics_.frontier_evictions),
      cpu_sims_(opt.sim_cache_capacity, opt.shards, metrics_.sim_evictions),
      gpu_sims_(opt.sim_cache_capacity, opt.shards, metrics_.sim_evictions),
      phase_sets_(opt.sim_cache_capacity, opt.shards,
                  metrics_.phase_evictions),
      replays_(opt.replay_cache_capacity, opt.shards,
               metrics_.replay_evictions),
      shifts_(opt.replay_cache_capacity, opt.shards,
              metrics_.replay_evictions),
      onlines_(opt.replay_cache_capacity, opt.shards,
               metrics_.online_evictions),
      tracer_(opt.trace_capacity) {
  tracer_.set_enabled(opt.tracing);
}

void QueryEngine::record_latency(QueryKind kind,
                                 std::uint64_t descriptor_hash,
                                 std::chrono::steady_clock::time_point t0,
                                 std::uint64_t queries) {
  if (queries == 0) return;
  const double per_query_us = static_cast<double>(elapsed_ns(t0)) * 1e-3 /
                              static_cast<double>(queries);
  obs::Histogram& hist = metrics_.latency_for(kind);
  for (std::uint64_t i = 0; i < queries; ++i) hist.observe(per_query_us);
  if (opt_.slow_query_us > 0.0 && per_query_us >= opt_.slow_query_us) {
    slow_log_.record(descriptor_hash, to_string(kind), per_query_us,
                     {{"total", per_query_us}});
  }
}

std::shared_ptr<const core::CpuCriticalPowers> QueryEngine::resolve_cpu(
    const CacheKey& key, const hw::CpuMachine& machine,
    const workload::Workload& wl) {
  if (auto cached = cpu_profiles_.get(key)) {
    metrics_.profile_hits->add(1);
    return cached;
  }
  metrics_.profile_misses->add(1);
  bool computed = false;
  PBC_TRACE_SPAN(&tracer_, "svc.single_flight", key.hi);
  auto outcome = cpu_inflight_.run(key, [&] {
    // Double-check: a leader that finished between our probe and this
    // point has already published — reuse its entry instead of leading a
    // second compute for the same key.
    if (auto published = cpu_profiles_.get(key)) return published;
    computed = true;
    PBC_TRACE_SPAN(&tracer_, "svc.profile_compute", key.hi);
    const sim::CpuNodeSim node(machine, wl);
    auto profile = std::make_shared<const core::CpuCriticalPowers>(
        core::profile_critical_powers(node));
    cpu_profiles_.put(key, profile);
    return std::shared_ptr<const core::CpuCriticalPowers>(profile);
  });
  if (outcome.led && computed) {
    metrics_.computes->add(1);
  } else {
    metrics_.coalesced->add(1);
  }
  return outcome.value;
}

std::shared_ptr<const GpuProfileEntry> QueryEngine::resolve_gpu(
    const CacheKey& key, const hw::GpuMachine& machine,
    const workload::Workload& wl) {
  if (auto cached = gpu_profiles_.get(key)) {
    metrics_.profile_hits->add(1);
    return cached;
  }
  metrics_.profile_misses->add(1);
  bool computed = false;
  PBC_TRACE_SPAN(&tracer_, "svc.single_flight", key.hi);
  auto outcome = gpu_inflight_.run(key, [&] {
    if (auto published = gpu_profiles_.get(key)) return published;
    computed = true;
    PBC_TRACE_SPAN(&tracer_, "svc.profile_compute", key.hi);
    const sim::GpuNodeSim node(machine, wl);
    auto entry = std::make_shared<const GpuProfileEntry>(
        GpuProfileEntry{core::profile_gpu_params(node), node.gpu_model()});
    gpu_profiles_.put(key, entry);
    return std::shared_ptr<const GpuProfileEntry>(entry);
  });
  if (outcome.led && computed) {
    metrics_.computes->add(1);
  } else {
    metrics_.coalesced->add(1);
  }
  return outcome.value;
}

core::CpuAllocation QueryEngine::query_cpu(const hw::CpuMachine& machine,
                                           const workload::Workload& wl,
                                           Watts budget,
                                           core::CpuCoordVariant variant) {
  const auto t0 = std::chrono::steady_clock::now();
  const CacheKey key = cpu_profile_key(machine, wl);
  const auto profile = resolve_cpu(key, machine, wl);
  const auto alloc = core::coord_cpu(*profile, budget, variant);
  metrics_.queries->add(1);
  record_latency(QueryKind::kQueryCpu, key.hi, t0);
  return alloc;
}

core::GpuAllocation QueryEngine::query_gpu(const hw::GpuMachine& machine,
                                           const workload::Workload& wl,
                                           Watts budget, double gamma) {
  const auto t0 = std::chrono::steady_clock::now();
  const CacheKey key = gpu_profile_key(machine, wl);
  const auto entry = resolve_gpu(key, machine, wl);
  const auto alloc =
      core::coord_gpu(entry->params, entry->model, budget, gamma);
  metrics_.queries->add(1);
  record_latency(QueryKind::kQueryGpu, key.hi, t0);
  return alloc;
}

std::vector<core::CpuAllocation> QueryEngine::query_cpu_batch(
    std::span<const CpuQuery> queries) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t n = queries.size();
  std::vector<core::CpuAllocation> answers(n);
  if (n == 0) return answers;

  // Phase 1: hash every descriptor, probe the cache once per distinct
  // key. Entries repeating a key already seen in this batch are served
  // from the batch-local table and count as hits (by answer time the
  // first occurrence has populated the cache).
  std::vector<CacheKey> keys(n);
  std::unordered_map<CacheKey, std::shared_ptr<const core::CpuCriticalPowers>,
                     CacheKeyHash>
      resolved;
  struct Miss {
    CacheKey key;
    std::size_t first_index;
  };
  std::vector<Miss> missing;
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = cpu_profile_key(queries[i].machine, queries[i].wl);
    const auto [it, fresh] = resolved.try_emplace(keys[i], nullptr);
    if (!fresh) {
      metrics_.profile_hits->add(1);
      continue;
    }
    it->second = cpu_profiles_.get(keys[i]);
    if (it->second != nullptr) {
      metrics_.profile_hits->add(1);
    } else {
      metrics_.profile_misses->add(1);
      missing.push_back({keys[i], i});
    }
  }

  // Phase 2: fan the distinct misses out over the pool; each goes
  // through the single-flight table so concurrent engine users still
  // coalesce with us.
  if (!missing.empty()) {
    PBC_TRACE_SPAN(&tracer_, "svc.pool_fanout");
    std::vector<std::shared_ptr<const core::CpuCriticalPowers>> computed(
        missing.size());
    pool().parallel_for_index(missing.size(), [&](std::size_t i) {
      const CpuQuery& q = queries[missing[i].first_index];
      bool fresh_compute = false;
      auto outcome = cpu_inflight_.run(missing[i].key, [&] {
        if (auto published = cpu_profiles_.get(missing[i].key)) {
          return published;
        }
        fresh_compute = true;
        PBC_TRACE_SPAN(&tracer_, "svc.profile_compute", missing[i].key.hi);
        const sim::CpuNodeSim node(q.machine, q.wl);
        auto profile = std::make_shared<const core::CpuCriticalPowers>(
            core::profile_critical_powers(node));
        cpu_profiles_.put(missing[i].key, profile);
        return std::shared_ptr<const core::CpuCriticalPowers>(profile);
      });
      if (outcome.led && fresh_compute) {
        metrics_.computes->add(1);
      } else {
        metrics_.coalesced->add(1);
      }
      computed[i] = outcome.value;
    });
    for (std::size_t i = 0; i < missing.size(); ++i) {
      resolved[missing[i].key] = computed[i];
    }
  }

  // Phase 3: the per-query closed-form answers.
  for (std::size_t i = 0; i < n; ++i) {
    answers[i] = core::coord_cpu(*resolved[keys[i]], queries[i].budget,
                                 queries[i].variant);
  }
  metrics_.queries->add(n);
  record_latency(QueryKind::kQueryCpu, 0, t0, n);
  return answers;
}

std::shared_ptr<const sim::CpuNodeSim> QueryEngine::cpu_sim(
    const hw::CpuMachine& machine, const workload::Workload& wl) {
  const CacheKey key = cpu_profile_key(machine, wl);
  if (auto cached = cpu_sims_.get(key)) {
    metrics_.sim_hits->add(1);
    return cached;
  }
  metrics_.sim_misses->add(1);
  auto outcome = cpu_sim_inflight_.run(key, [&] {
    if (auto published = cpu_sims_.get(key)) return published;
    PBC_TRACE_SPAN(&tracer_, "svc.table_build", key.hi);
    auto node = std::make_shared<const sim::CpuNodeSim>(machine, wl);
    // Build the operating-point table before publishing, so every
    // subsequent user starts at full speed.
    node->prepare();
    cpu_sims_.put(key, node);
    return std::shared_ptr<const sim::CpuNodeSim>(node);
  });
  return outcome.value;
}

std::shared_ptr<const sim::GpuNodeSim> QueryEngine::gpu_sim(
    const hw::GpuMachine& machine, const workload::Workload& wl) {
  const CacheKey key = gpu_profile_key(machine, wl);
  if (auto cached = gpu_sims_.get(key)) {
    metrics_.sim_hits->add(1);
    return cached;
  }
  metrics_.sim_misses->add(1);
  auto outcome = gpu_sim_inflight_.run(key, [&] {
    if (auto published = gpu_sims_.get(key)) return published;
    PBC_TRACE_SPAN(&tracer_, "svc.table_build", key.hi);
    auto node = std::make_shared<const sim::GpuNodeSim>(machine, wl);
    node->prepare();
    gpu_sims_.put(key, node);
    return std::shared_ptr<const sim::GpuNodeSim>(node);
  });
  return outcome.value;
}

core::ClusterNodeProvider QueryEngine::cluster_provider() {
  core::ClusterNodeProvider provider;
  provider.cpu = [this](const hw::CpuMachine& machine,
                        const workload::Workload& wl) {
    return cpu_sim(machine, wl);
  };
  provider.gpu = [this](const hw::GpuMachine& machine,
                        const workload::Workload& wl) {
    return gpu_sim(machine, wl);
  };
  return provider;
}

core::ClusterRun QueryEngine::simulate_cluster(const hw::CpuMachine& node_type,
                                               std::vector<core::SimJob> jobs,
                                               core::ClusterSimConfig config) {
  const auto t0 = std::chrono::steady_clock::now();
  if (config.pool == nullptr) config.pool = &pool();
  const core::ClusterNodeProvider provider = cluster_provider();
  core::ClusterRun run =
      core::simulate_cluster(node_type, std::move(jobs), config, &provider);
  metrics_.queries->add(1);
  record_latency(QueryKind::kCluster, 0, t0);
  return run;
}

core::ClusterRun QueryEngine::simulate_cluster(const hw::CpuMachine& node_type,
                                               const hw::GpuMachine& gpu_type,
                                               std::vector<core::SimJob> jobs,
                                               core::ClusterSimConfig config) {
  const auto t0 = std::chrono::steady_clock::now();
  if (config.pool == nullptr) config.pool = &pool();
  const core::ClusterNodeProvider provider = cluster_provider();
  core::ClusterRun run = core::simulate_cluster(node_type, gpu_type,
                                                std::move(jobs), config,
                                                &provider);
  metrics_.queries->add(1);
  record_latency(QueryKind::kCluster, 0, t0);
  return run;
}

sim::AllocationSample QueryEngine::sample_cpu(const hw::CpuMachine& machine,
                                              const workload::Workload& wl,
                                              Watts cpu_cap, Watts mem_cap) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto node = cpu_sim(machine, wl);
  const sim::AllocationSample s = node->steady_state(cpu_cap, mem_cap);
  metrics_.queries->add(1);
  record_latency(QueryKind::kSample, cpu_profile_key(machine, wl).hi, t0);
  return s;
}

std::vector<sim::AllocationSample> QueryEngine::sample_cpu_batch(
    const hw::CpuMachine& machine, const workload::Workload& wl,
    std::span<const sim::CapPair> caps) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto node = cpu_sim(machine, wl);
  std::vector<sim::AllocationSample> out = node->steady_state_batch(caps);
  metrics_.queries->add(caps.size());
  record_latency(QueryKind::kSample, 0, t0, caps.size());
  return out;
}

std::vector<sim::AllocationSample> QueryEngine::sample_gpu_batch(
    const hw::GpuMachine& machine, const workload::Workload& wl,
    std::size_t mem_clock_index, std::span<const Watts> board_caps) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto node = gpu_sim(machine, wl);
  std::vector<sim::AllocationSample> out =
      node->steady_state_batch(mem_clock_index, board_caps);
  metrics_.queries->add(board_caps.size());
  record_latency(QueryKind::kSample, 0, t0, board_caps.size());
  return out;
}

sim::PreparedPhaseNodes QueryEngine::phase_nodes(
    const hw::CpuMachine& machine, const workload::Workload& wl) {
  const CacheKey key = cpu_profile_key(machine, wl);
  if (auto cached = phase_sets_.get(key)) {
    metrics_.sim_hits->add(1);
    return cached;
  }
  metrics_.sim_misses->add(1);
  auto outcome = phase_set_inflight_.run(key, [&] {
    if (auto published = phase_sets_.get(key)) return published;
    PBC_TRACE_SPAN(&tracer_, "svc.phase_nodes_build", key.hi);
    // The cached full-workload simulator is the set's base node, so only
    // the per-phase nodes (and their tables) are built here.
    auto set = std::make_shared<const sim::PhaseNodeSet>(cpu_sim(machine, wl));
    phase_sets_.put(key, set);
    return std::shared_ptr<const sim::PhaseNodeSet>(set);
  });
  return outcome.value;
}

sim::TraceReplayResult QueryEngine::replay_trace(
    const hw::CpuMachine& machine, const workload::Workload& wl,
    const workload::PhaseTrace& trace, Watts cpu_cap, Watts mem_cap) {
  const auto t0 = std::chrono::steady_clock::now();
  const CacheKey key = replay_key(machine, wl, trace, cpu_cap, mem_cap);
  auto result = replays_.get(key);
  if (result != nullptr) {
    metrics_.replay_hits->add(1);
  } else {
    metrics_.replay_misses->add(1);
    auto outcome = replay_inflight_.run(key, [&] {
      if (auto published = replays_.get(key)) return published;
      const auto nodes = phase_nodes(machine, wl);
      auto r = std::make_shared<const sim::TraceReplayResult>(
          sim::replay_trace(*nodes, trace, cpu_cap, mem_cap));
      replays_.put(key, r);
      return std::shared_ptr<const sim::TraceReplayResult>(r);
    });
    result = outcome.value;
  }
  metrics_.queries->add(1);
  record_latency(QueryKind::kReplay, key.hi, t0);
  return *result;
}

std::vector<sim::TraceReplayResult> QueryEngine::replay_trace_batch(
    const hw::CpuMachine& machine, const workload::Workload& wl,
    std::span<const workload::PhaseTrace> traces,
    std::span<const sim::CapPair> caps) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t n = traces.size() * caps.size();
  std::vector<sim::TraceReplayResult> out(n);
  if (n == 0) return out;
  // Resolve the shared phase-node set before fanning out, so workers
  // never contend on its construction.
  const auto nodes = phase_nodes(machine, wl);

  std::vector<CacheKey> keys(n);
  std::vector<std::shared_ptr<const sim::TraceReplayResult>> got(n);
  std::vector<std::size_t> missing;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t t = i / caps.size();
    const std::size_t c = i % caps.size();
    keys[i] = replay_key(machine, wl, traces[t], caps[c].cpu_cap,
                         caps[c].mem_cap);
    got[i] = replays_.get(keys[i]);
    if (got[i] != nullptr) {
      metrics_.replay_hits->add(1);
    } else {
      metrics_.replay_misses->add(1);
      missing.push_back(i);
    }
  }

  if (!missing.empty()) {
    PBC_TRACE_SPAN(&tracer_, "svc.pool_fanout");
    const auto run_miss = [&](std::size_t mi) {
      const std::size_t i = missing[mi];
      const std::size_t t = i / caps.size();
      const std::size_t c = i % caps.size();
      auto outcome = replay_inflight_.run(keys[i], [&] {
        if (auto published = replays_.get(keys[i])) return published;
        auto r = std::make_shared<const sim::TraceReplayResult>(
            sim::replay_trace(*nodes, traces[t], caps[c].cpu_cap,
                              caps[c].mem_cap));
        replays_.put(keys[i], r);
        return std::shared_ptr<const sim::TraceReplayResult>(r);
      });
      got[i] = outcome.value;
    };
    ThreadPool& p = pool();
    if (missing.size() < 2 || p.is_worker_thread()) {
      for (std::size_t mi = 0; mi < missing.size(); ++mi) run_miss(mi);
    } else {
      p.parallel_for_index(missing.size(), run_miss);
    }
  }

  for (std::size_t i = 0; i < n; ++i) out[i] = *got[i];
  metrics_.queries->add(n);
  record_latency(QueryKind::kReplay, 0, t0, n);
  return out;
}

core::ShiftingResult QueryEngine::replay_with_shifting(
    const hw::CpuMachine& machine, const workload::Workload& wl,
    const workload::PhaseTrace& trace, Watts total_budget,
    const core::ShiftingConfig& cfg) {
  const auto t0 = std::chrono::steady_clock::now();
  const CacheKey key = shift_key(machine, wl, trace, total_budget, cfg);
  auto result = shifts_.get(key);
  if (result != nullptr) {
    metrics_.replay_hits->add(1);
  } else {
    metrics_.replay_misses->add(1);
    auto outcome = shift_inflight_.run(key, [&] {
      if (auto published = shifts_.get(key)) return published;
      const auto nodes = phase_nodes(machine, wl);
      auto r = std::make_shared<const core::ShiftingResult>(
          core::replay_with_shifting(*nodes, trace, total_budget, cfg));
      shifts_.put(key, r);
      return std::shared_ptr<const core::ShiftingResult>(r);
    });
    result = outcome.value;
  }
  metrics_.queries->add(1);
  record_latency(QueryKind::kShift, key.hi, t0);
  return *result;
}

std::vector<core::ShiftingResult> QueryEngine::shifting_batch(
    const hw::CpuMachine& machine, const workload::Workload& wl,
    std::span<const workload::PhaseTrace> traces,
    std::span<const Watts> budgets, const core::ShiftingConfig& cfg) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t n = traces.size() * budgets.size();
  std::vector<core::ShiftingResult> out(n);
  if (n == 0) return out;
  const auto nodes = phase_nodes(machine, wl);

  std::vector<CacheKey> keys(n);
  std::vector<std::shared_ptr<const core::ShiftingResult>> got(n);
  std::vector<std::size_t> missing;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t t = i / budgets.size();
    const std::size_t b = i % budgets.size();
    keys[i] = shift_key(machine, wl, traces[t], budgets[b], cfg);
    got[i] = shifts_.get(keys[i]);
    if (got[i] != nullptr) {
      metrics_.replay_hits->add(1);
    } else {
      metrics_.replay_misses->add(1);
      missing.push_back(i);
    }
  }

  if (!missing.empty()) {
    PBC_TRACE_SPAN(&tracer_, "svc.pool_fanout");
    const auto run_miss = [&](std::size_t mi) {
      const std::size_t i = missing[mi];
      const std::size_t t = i / budgets.size();
      const std::size_t b = i % budgets.size();
      auto outcome = shift_inflight_.run(keys[i], [&] {
        if (auto published = shifts_.get(keys[i])) return published;
        auto r = std::make_shared<const core::ShiftingResult>(
            core::replay_with_shifting(*nodes, traces[t], budgets[b], cfg));
        shifts_.put(keys[i], r);
        return std::shared_ptr<const core::ShiftingResult>(r);
      });
      got[i] = outcome.value;
    };
    ThreadPool& p = pool();
    if (missing.size() < 2 || p.is_worker_thread()) {
      for (std::size_t mi = 0; mi < missing.size(); ++mi) run_miss(mi);
    } else {
      p.parallel_for_index(missing.size(), run_miss);
    }
  }

  for (std::size_t i = 0; i < n; ++i) out[i] = *got[i];
  metrics_.queries->add(n);
  record_latency(QueryKind::kShift, 0, t0, n);
  return out;
}

ctrl::ClosedLoopResult QueryEngine::run_online(
    const hw::CpuMachine& machine, const workload::Workload& wl,
    const workload::PhaseTrace& trace, Watts total_budget,
    const ctrl::ControllerConfig& cfg) {
  const auto t0 = std::chrono::steady_clock::now();
  const CacheKey key = online_key(machine, wl, trace, total_budget, cfg);
  auto result = onlines_.get(key);
  if (result != nullptr) {
    metrics_.online_hits->add(1);
  } else {
    metrics_.online_misses->add(1);
    auto outcome = online_inflight_.run(key, [&] {
      if (auto published = onlines_.get(key)) return published;
      const auto nodes = phase_nodes(machine, wl);
      PBC_TRACE_SPAN(&tracer_, "svc.online_run", key.hi);
      auto r = std::make_shared<const ctrl::ClosedLoopResult>(
          ctrl::run_closed_loop(*nodes, trace, total_budget, cfg));
      onlines_.put(key, r);
      return std::shared_ptr<const ctrl::ClosedLoopResult>(r);
    });
    result = outcome.value;
  }
  metrics_.queries->add(1);
  record_latency(QueryKind::kOnline, key.hi, t0);
  return *result;
}

std::shared_ptr<const core::CpuCriticalPowers> QueryEngine::cpu_profile(
    const hw::CpuMachine& machine, const workload::Workload& wl) {
  return resolve_cpu(cpu_profile_key(machine, wl), machine, wl);
}

std::shared_ptr<const GpuProfileEntry> QueryEngine::gpu_profile(
    const hw::GpuMachine& machine, const workload::Workload& wl) {
  return resolve_gpu(gpu_profile_key(machine, wl), machine, wl);
}

std::shared_ptr<const std::vector<core::FrontierPoint>>
QueryEngine::cpu_frontier(const hw::CpuMachine& machine,
                          const workload::Workload& wl,
                          std::span<const Watts> budgets,
                          const sim::CpuSweepOptions& sweep_opt) {
  const auto t0 = std::chrono::steady_clock::now();
  const CacheKey key = cpu_frontier_key(machine, wl, budgets, sweep_opt);
  if (auto cached = frontiers_.get(key)) {
    metrics_.frontier_hits->add(1);
    record_latency(QueryKind::kFrontier, key.hi, t0);
    return cached;
  }
  metrics_.frontier_misses->add(1);
  bool computed = false;
  auto outcome = frontier_inflight_.run(key, [&] {
    if (auto published = frontiers_.get(key)) return published;
    computed = true;
    PBC_TRACE_SPAN(&tracer_, "svc.frontier_sweep", key.hi);
    // Route the sweep through the cached, table-prepared simulator: repeat
    // frontier requests for the same pair (different grids) reuse the node
    // and its tables instead of rebuilding both.
    const auto node = cpu_sim(machine, wl);
    auto frontier = std::make_shared<const std::vector<core::FrontierPoint>>(
        core::perf_frontier_cpu(*node, budgets, sweep_opt, &pool()));
    frontiers_.put(key, frontier);
    return std::shared_ptr<const std::vector<core::FrontierPoint>>(frontier);
  });
  if (outcome.led && computed) {
    metrics_.computes->add(1);
  } else {
    metrics_.coalesced->add(1);
  }
  record_latency(QueryKind::kFrontier, key.hi, t0);
  return outcome.value;
}

void QueryEngine::refresh_gauges() const {
  metrics_.profile_entries->set(
      static_cast<double>(cpu_profiles_.size() + gpu_profiles_.size()));
  metrics_.frontier_entries->set(static_cast<double>(frontiers_.size()));
  metrics_.sim_entries->set(static_cast<double>(
      cpu_sims_.size() + gpu_sims_.size() + phase_sets_.size()));
  metrics_.replay_entries->set(static_cast<double>(
      replays_.size() + shifts_.size() + onlines_.size()));
}

EngineStats QueryEngine::stats() const {
  refresh_gauges();
  // stats() is the supported compatibility shim over the deprecated free
  // function, so this one call site opts out of the deprecation warning.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  return engine_stats_from(registry_->snapshot());
#pragma GCC diagnostic pop
}

obs::MetricsSnapshot QueryEngine::metrics_snapshot() const {
  refresh_gauges();
  return registry_->snapshot();
}

pbc::Result<Response> QueryEngine::execute(const Request& req) {
  if (auto s = validate(req); !s.ok()) return s.error();
  // Each arm calls the per-kind method with the op's fields plus the
  // CallOptions knobs mapped onto that kind's config struct, so the
  // response is bit-identical to the direct call (execute_diff_test).
  const CallOptions& o = req.options;
  ResponseOp result = std::visit(
      [&](const auto& op) -> ResponseOp {
        using T = std::decay_t<decltype(op)>;
        if constexpr (std::is_same_v<T, QueryCpuOp>) {
          return query_cpu(op.machine, op.wl, op.budget, op.variant);
        } else if constexpr (std::is_same_v<T, QueryGpuOp>) {
          return query_gpu(op.machine, op.wl, op.budget, op.gamma);
        } else if constexpr (std::is_same_v<T, SampleOp>) {
          return sample_cpu(op.machine, op.wl, op.cpu_cap, op.mem_cap);
        } else if constexpr (std::is_same_v<T, FrontierOp>) {
          const sim::CpuSweepOptions sweep{op.mem_lo, op.proc_lo, op.step,
                                           o.solver_path, o.budget_block};
          return *cpu_frontier(op.machine, op.wl, op.budgets, sweep);
        } else if constexpr (std::is_same_v<T, ReplayOp>) {
          return replay_trace(op.machine, op.wl, op.trace, op.cpu_cap,
                              op.mem_cap);
        } else if constexpr (std::is_same_v<T, ShiftOp>) {
          core::ShiftingConfig cfg;
          cfg.step = op.step;
          cfg.max_steps_per_segment = op.max_steps_per_segment;
          cfg.cpu_min = op.cpu_min;
          cfg.mem_min = op.mem_min;
          cfg.path = o.replay_path;
          return replay_with_shifting(op.machine, op.wl, op.trace,
                                      op.total_budget, cfg);
        } else if constexpr (std::is_same_v<T, ClusterOp>) {
          core::ClusterSimConfig cfg;
          cfg.nodes = op.nodes;
          cfg.gpu_nodes = op.gpu_nodes;
          cfg.global_budget = op.global_budget;
          cfg.policy = op.policy;
          cfg.queue_policy = op.queue_policy;
          cfg.admission_control = op.admission_control;
          cfg.min_grant = op.min_grant;
          cfg.path = o.cluster_path;
          if (op.gpu_type.has_value()) {
            return simulate_cluster(op.node_type, *op.gpu_type, op.jobs, cfg);
          }
          return simulate_cluster(op.node_type, op.jobs, cfg);
        } else {
          static_assert(std::is_same_v<T, OnlineOp>);
          ctrl::ControllerConfig cfg;
          cfg.step = op.step;
          cfg.cpu_min = op.cpu_min;
          cfg.mem_min = op.mem_min;
          cfg.explore_rate = op.explore_rate;
          cfg.explore_decay = op.explore_decay;
          cfg.explore_floor = op.explore_floor;
          cfg.ema_alpha = op.ema_alpha;
          cfg.hysteresis_margin = op.hysteresis_margin;
          cfg.seed = o.seed;
          return run_online(op.machine, op.wl, op.trace, op.total_budget,
                            cfg);
        }
      },
      req.op);
  return Response{req.id, std::move(result)};
}

void QueryEngine::clear() {
  cpu_profiles_.clear();
  gpu_profiles_.clear();
  frontiers_.clear();
  cpu_sims_.clear();
  gpu_sims_.clear();
  phase_sets_.clear();
  replays_.clear();
  shifts_.clear();
  onlines_.clear();
}

}  // namespace pbc::svc
