// Coordination query engine: (machine, workload, budget) → allocation,
// served at high throughput from cached lightweight profiles.
//
// COORD's whole point (paper §5) is that once the critical power values /
// GPU profile parameters of a (machine, workload) pair are known, any
// budget question is answered in closed form. The engine exploits exactly
// that split: the expensive part — profiling via pinned simulator runs,
// or a full perf_max frontier sweep — is computed once, deduplicated
// across concurrent requesters (single-flight), and kept in a sharded
// LRU cache keyed by a canonical 128-bit hash of the descriptor; the
// cheap part (Algorithm 1/2 arithmetic) runs per query. Results are
// bit-identical to calling core::profile_* + core::coord_* directly —
// tests/svc/engine_diff_test.cpp holds the engine to that contract.
//
// Thread safety: every public method may be called concurrently. Batch
// queries fan cache misses out over the configured ThreadPool; do not
// call batch methods from inside a task running on that same pool (the
// pool's parallel_for would deadlock waiting on itself).
#pragma once

#include <chrono>
#include <memory>
#include <span>
#include <vector>

#include "core/cluster_sim.hpp"
#include "core/coord.hpp"
#include "core/dynamic.hpp"
#include "core/frontier.hpp"
#include "ctrl/closed_loop.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/phase_nodes.hpp"
#include "svc/cache.hpp"
#include "svc/request.hpp"
#include "svc/single_flight.hpp"
#include "svc/stats.hpp"
#include "util/thread_pool.hpp"

namespace pbc::svc {

struct EngineOptions {
  /// Total cached (machine, workload) profiles, CPU and GPU each.
  std::size_t profile_cache_capacity = 1024;
  /// Total cached frontiers (each one is a full budget sweep's result).
  std::size_t frontier_cache_capacity = 128;
  /// Total cached prepared simulator instances (CPU and GPU each). Each
  /// entry holds a node with its operating-point tables already built, so
  /// repeat sample/sweep traffic for a (machine, workload) pair skips both
  /// construction and table building.
  std::size_t sim_cache_capacity = 256;
  /// Total cached trace-replay and shifting results (one entry per
  /// distinct (machine, workload, trace, caps/budget, config) request).
  std::size_t replay_cache_capacity = 512;
  /// Lock shards per cache.
  std::size_t shards = 8;
  /// Pool for batch-miss fan-out and frontier sweeps (null = global_pool).
  ThreadPool* pool = nullptr;
  /// Registry to publish metrics into. Null (the default) gives the
  /// engine a private registry, so its stats stay isolated; point several
  /// engines (or the process) at one registry to aggregate, at the cost
  /// of shared counters.
  obs::MetricsRegistry* registry = nullptr;
  /// Runtime switch for span tracing (the compile-time switch is the
  /// PBC_TRACING CMake option).
  bool tracing = true;
  /// Bounded central ring of retained spans.
  std::size_t trace_capacity = 4096;
  /// Queries slower than this land in the slow-query log; 0 disables.
  double slow_query_us = 10000.0;
};

/// One CPU allocation request, for the batch API.
struct CpuQuery {
  hw::CpuMachine machine;
  workload::Workload wl;
  Watts budget{0.0};
  core::CpuCoordVariant variant = core::CpuCoordVariant::kProportional;
};

/// Cached GPU profile: Algorithm 2's parameters plus the card model that
/// realizes the memory share as a clock index.
struct GpuProfileEntry {
  core::GpuProfileParams params;
  hw::GpuModel model;
};

class QueryEngine {
 public:
  explicit QueryEngine(EngineOptions opt = {});

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// The unified entry point over the Request/Response surface
  /// (svc/request.hpp): validates the request's descriptors, applies its
  /// CallOptions (engine-path selection, the controller seed, the
  /// blocked-sweep tile), and routes to the per-kind method below. The
  /// result is bit-identical to the corresponding direct call — the
  /// per-kind methods are the same code, now thin typed wrappers over
  /// this surface for in-process callers that know their kind statically.
  /// Deadline enforcement is transport-level (the pbcd daemon rejects
  /// expired requests before calling execute; see docs/service.md).
  [[nodiscard]] pbc::Result<Response> execute(const Request& req);

  /// Algorithm 1 behind the cache. Equivalent to profiling the node and
  /// calling core::coord_cpu, at warm-cache cost of a hash + lookup.
  /// Thin wrapper over the Request surface (see execute()).
  [[nodiscard]] core::CpuAllocation query_cpu(
      const hw::CpuMachine& machine, const workload::Workload& wl,
      Watts budget,
      core::CpuCoordVariant variant = core::CpuCoordVariant::kProportional);

  /// Algorithm 2 behind the cache.
  [[nodiscard]] core::GpuAllocation query_gpu(const hw::GpuMachine& machine,
                                              const workload::Workload& wl,
                                              Watts budget,
                                              double gamma = 0.5);

  /// Answers a batch, deduplicating repeated descriptors and fanning the
  /// distinct cache misses out over the pool. answers[i] corresponds to
  /// queries[i].
  [[nodiscard]] std::vector<core::CpuAllocation> query_cpu_batch(
      std::span<const CpuQuery> queries);

  /// One steady-state sample through the cached, table-prepared simulator.
  /// Bit-identical to sim::CpuNodeSim(machine, wl).steady_state(...).
  [[nodiscard]] sim::AllocationSample sample_cpu(const hw::CpuMachine& machine,
                                                 const workload::Workload& wl,
                                                 Watts cpu_cap, Watts mem_cap);

  /// Batched steady-state samples for one (machine, workload) pair, routed
  /// through the simulator's warm-started batch solver. answers[i] is
  /// bit-identical to steady_state(caps[i]); the whole batch shares one
  /// cached operating-point table.
  [[nodiscard]] std::vector<sim::AllocationSample> sample_cpu_batch(
      const hw::CpuMachine& machine, const workload::Workload& wl,
      std::span<const sim::CapPair> caps);

  /// The GPU analogue: batched board-cap samples at one memory clock.
  [[nodiscard]] std::vector<sim::AllocationSample> sample_gpu_batch(
      const hw::GpuMachine& machine, const workload::Workload& wl,
      std::size_t mem_clock_index, std::span<const Watts> board_caps);

  /// Runs a cluster trace with the engine's sim-node cache as the fast
  /// path's node provider: distinct (machine, workload) pairs hit the
  /// cross-run cache, so repeated cluster queries over overlapping
  /// workload mixes skip simulator construction and table building
  /// entirely. config.pool defaults to the engine pool when unset; the
  /// run itself counts as one query. Results are bit-identical to
  /// core::simulate_cluster with the same config.
  [[nodiscard]] core::ClusterRun simulate_cluster(
      const hw::CpuMachine& node_type, std::vector<core::SimJob> jobs,
      core::ClusterSimConfig config);

  [[nodiscard]] core::ClusterRun simulate_cluster(
      const hw::CpuMachine& node_type, const hw::GpuMachine& gpu_type,
      std::vector<core::SimJob> jobs, core::ClusterSimConfig config);

  /// The cached prepared phase-node set for a pair (building it on a
  /// miss; the cached full-workload simulator is reused as its base).
  /// Trace replay and dynamic shifting run through this set.
  [[nodiscard]] sim::PreparedPhaseNodes phase_nodes(
      const hw::CpuMachine& machine, const workload::Workload& wl);

  /// Trace replay through the cached phase-node set, with the result
  /// memoized per (machine, workload, trace, caps). Bit-identical to
  /// sim::replay_trace on a fresh node.
  [[nodiscard]] sim::TraceReplayResult replay_trace(
      const hw::CpuMachine& machine, const workload::Workload& wl,
      const workload::PhaseTrace& trace, Watts cpu_cap, Watts mem_cap);

  /// Batched replay over a (trace × caps) grid: one phase-node set, a
  /// cache probe per cell, distinct misses fanned out over the pool.
  /// out[t * caps.size() + c] matches replay_trace(traces[t], caps[c]).
  [[nodiscard]] std::vector<sim::TraceReplayResult> replay_trace_batch(
      const hw::CpuMachine& machine, const workload::Workload& wl,
      std::span<const workload::PhaseTrace> traces,
      std::span<const sim::CapPair> caps);

  /// Dynamic shifting through the cached phase-node set, memoized per
  /// (machine, workload, trace, budget, config). Bit-identical to
  /// core::replay_with_shifting on a fresh node.
  [[nodiscard]] core::ShiftingResult replay_with_shifting(
      const hw::CpuMachine& machine, const workload::Workload& wl,
      const workload::PhaseTrace& trace, Watts total_budget,
      const core::ShiftingConfig& cfg = {});

  /// Batched shifting over a (trace × budget) grid, mirroring
  /// replay_trace_batch. out[t * budgets.size() + b] matches
  /// replay_with_shifting(traces[t], budgets[b]).
  [[nodiscard]] std::vector<core::ShiftingResult> shifting_batch(
      const hw::CpuMachine& machine, const workload::Workload& wl,
      std::span<const workload::PhaseTrace> traces,
      std::span<const Watts> budgets, const core::ShiftingConfig& cfg = {});

  /// Closed-loop online-controller run through the cached phase-node
  /// set, memoized per (machine, workload, trace, budget, controller
  /// config). Bit-identical to ctrl::run_closed_loop on a fresh node.
  /// The config's registry/tracer sinks are not part of the cache key,
  /// so controller counters are only published by the run that computes
  /// a given entry — cache hits replay the stored result silently.
  [[nodiscard]] ctrl::ClosedLoopResult run_online(
      const hw::CpuMachine& machine, const workload::Workload& wl,
      const workload::PhaseTrace& trace, Watts total_budget,
      const ctrl::ControllerConfig& cfg = {});

  /// The cached prepared simulator for a pair (building it on a miss).
  [[nodiscard]] std::shared_ptr<const sim::CpuNodeSim> cpu_sim(
      const hw::CpuMachine& machine, const workload::Workload& wl);

  [[nodiscard]] std::shared_ptr<const sim::GpuNodeSim> gpu_sim(
      const hw::GpuMachine& machine, const workload::Workload& wl);

  /// The cached critical-power profile (computing it on a miss).
  [[nodiscard]] std::shared_ptr<const core::CpuCriticalPowers> cpu_profile(
      const hw::CpuMachine& machine, const workload::Workload& wl);

  /// The cached GPU profile entry (computing it on a miss).
  [[nodiscard]] std::shared_ptr<const GpuProfileEntry> gpu_profile(
      const hw::GpuMachine& machine, const workload::Workload& wl);

  /// The cached perf_max frontier for a budget grid (computing it on a
  /// miss; the sweep itself parallelizes over the engine pool). Not
  /// counted as a query — frontier requests are a planning-path call.
  [[nodiscard]] std::shared_ptr<const std::vector<core::FrontierPoint>>
  cpu_frontier(const hw::CpuMachine& machine, const workload::Workload& wl,
               std::span<const Watts> budgets,
               const sim::CpuSweepOptions& sweep_opt = {});

  /// Counter + latency snapshot (eventually consistent across counters),
  /// computed from the metrics registry — see engine_stats_from().
  [[nodiscard]] EngineStats stats() const;

  /// The registry this engine publishes into (private unless
  /// EngineOptions::registry was set).
  [[nodiscard]] obs::MetricsRegistry& metrics() const noexcept {
    return *registry_;
  }

  /// Registry snapshot with the cache-entry gauges freshly refreshed —
  /// feed this to obs::render_prometheus / obs::render_json.
  [[nodiscard]] obs::MetricsSnapshot metrics_snapshot() const;

  /// Miss-path span sink (svc.profile_compute, svc.table_build, ...).
  [[nodiscard]] obs::Tracer& tracer() const noexcept { return tracer_; }

  /// Queries that crossed EngineOptions::slow_query_us.
  [[nodiscard]] const obs::SlowQueryLog& slow_queries() const noexcept {
    return slow_log_;
  }

  /// Drops every cached entry. Counters are preserved.
  void clear();

  [[nodiscard]] const EngineOptions& options() const noexcept { return opt_; }

 private:
  [[nodiscard]] ThreadPool& pool() const noexcept {
    return opt_.pool ? *opt_.pool : global_pool();
  }

  /// Node provider backed by cpu_sim/gpu_sim (the cross-run sim cache).
  [[nodiscard]] core::ClusterNodeProvider cluster_provider();

  /// Probe-then-compute with miss coalescing; updates hit/miss/compute/
  /// coalesce counters.
  [[nodiscard]] std::shared_ptr<const core::CpuCriticalPowers> resolve_cpu(
      const CacheKey& key, const hw::CpuMachine& machine,
      const workload::Workload& wl);
  [[nodiscard]] std::shared_ptr<const GpuProfileEntry> resolve_gpu(
      const CacheKey& key, const hw::GpuMachine& machine,
      const workload::Workload& wl);

  /// Records one query's latency (or a batch's per-query average) into
  /// the kind's histogram, and the slow-query log when over threshold.
  void record_latency(QueryKind kind, std::uint64_t descriptor_hash,
                      std::chrono::steady_clock::time_point t0,
                      std::uint64_t queries = 1);

  /// Refreshes the cache-entry gauges from the live cache sizes.
  void refresh_gauges() const;

  EngineOptions opt_;
  /// Backing storage for the default private registry; registry_ points
  /// here or at opt_.registry. Declared before metrics_ and the caches,
  /// which hold references into it.
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* registry_;
  EngineMetrics metrics_;
  ShardedLruCache<core::CpuCriticalPowers> cpu_profiles_;
  ShardedLruCache<GpuProfileEntry> gpu_profiles_;
  ShardedLruCache<std::vector<core::FrontierPoint>> frontiers_;
  ShardedLruCache<sim::CpuNodeSim> cpu_sims_;
  ShardedLruCache<sim::GpuNodeSim> gpu_sims_;
  ShardedLruCache<sim::PhaseNodeSet> phase_sets_;
  ShardedLruCache<sim::TraceReplayResult> replays_;
  ShardedLruCache<core::ShiftingResult> shifts_;
  ShardedLruCache<ctrl::ClosedLoopResult> onlines_;
  SingleFlight<core::CpuCriticalPowers> cpu_inflight_;
  SingleFlight<GpuProfileEntry> gpu_inflight_;
  SingleFlight<std::vector<core::FrontierPoint>> frontier_inflight_;
  SingleFlight<sim::CpuNodeSim> cpu_sim_inflight_;
  SingleFlight<sim::GpuNodeSim> gpu_sim_inflight_;
  SingleFlight<sim::PhaseNodeSet> phase_set_inflight_;
  SingleFlight<sim::TraceReplayResult> replay_inflight_;
  SingleFlight<core::ShiftingResult> shift_inflight_;
  SingleFlight<ctrl::ClosedLoopResult> online_inflight_;
  mutable obs::Tracer tracer_;
  obs::SlowQueryLog slow_log_;
};

}  // namespace pbc::svc
