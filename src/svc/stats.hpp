// Lightweight service counters and latency tracking for the query engine.
//
// Counters are relaxed atomics — they feed dashboards and the bench
// harness, not control flow, so cross-counter snapshots only need to be
// eventually consistent. Latencies go into a fixed-size ring of the most
// recent samples; percentiles are computed on demand from a copy so the
// record path stays a mutex-protected store into a preallocated slot.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace pbc::svc {

/// One coherent-enough snapshot of the engine's counters.
struct EngineStats {
  std::uint64_t queries = 0;       ///< total query() / batch entries served
  std::uint64_t hits = 0;          ///< answered from the profile cache
  std::uint64_t misses = 0;        ///< required a profile computation
  std::uint64_t coalesced = 0;     ///< misses that joined an in-flight compute
  std::uint64_t computes = 0;      ///< profile computations actually executed
  std::uint64_t evictions = 0;     ///< LRU entries dropped (all caches)
  std::uint64_t sim_hits = 0;      ///< simulator-cache hits (sample path)
  std::uint64_t sim_misses = 0;    ///< simulator instances built on demand
  std::uint64_t replay_hits = 0;   ///< replay/shift results served from cache
  std::uint64_t replay_misses = 0; ///< replay/shift runs actually executed
  std::size_t profile_cache_size = 0;
  std::size_t frontier_cache_size = 0;
  std::size_t sim_cache_size = 0;  ///< cached prepared simulators (CPU+GPU)
  std::size_t replay_cache_size = 0;  ///< cached replay + shifting results

  std::uint64_t latency_samples = 0;  ///< samples inside the current window
  double p50_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t n = hits + misses;
    return n ? static_cast<double>(hits) / static_cast<double>(n) : 0.0;
  }
};

/// Ring buffer of the most recent service latencies, in nanoseconds.
class LatencyRecorder {
 public:
  explicit LatencyRecorder(std::size_t window = 4096);

  void record(std::uint64_t ns);

  /// Fills the latency fields of `out` (percentiles over the window).
  void snapshot_into(EngineStats& out) const;

 private:
  mutable std::mutex mu_;
  std::vector<std::uint64_t> ring_;
  std::size_t next_ = 0;
  std::uint64_t total_ = 0;
};

/// The engine's counter block (shared across threads; relaxed order).
struct Counters {
  std::atomic<std::uint64_t> queries{0};
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> coalesced{0};
  std::atomic<std::uint64_t> computes{0};
  std::atomic<std::uint64_t> sim_hits{0};
  std::atomic<std::uint64_t> sim_misses{0};
  std::atomic<std::uint64_t> replay_hits{0};
  std::atomic<std::uint64_t> replay_misses{0};
};

}  // namespace pbc::svc
