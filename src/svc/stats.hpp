// Engine statistics: a compatibility view over the obs metrics registry.
//
// The engine's counters and latencies live in an obs::MetricsRegistry
// (src/obs/metrics.hpp) — relaxed-atomic counters, per-cache gauges, and
// one latency histogram per query kind. EngineStats is the historical
// flat snapshot shape, now *computed from* a registry snapshot by
// engine_stats_from(): same field names, same counter semantics, so
// dashboards and tests written against it keep working while Prometheus
// and JSON exposition read the registry directly.
//
// LatencyRecorder (a windowed percentile ring) predates the histograms
// and remains for callers that want exact percentiles over a recent
// window rather than bucket-estimated all-time ones.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/metrics.hpp"

namespace pbc::svc {

/// One coherent-enough snapshot of the engine's counters.
struct EngineStats {
  std::uint64_t queries = 0;       ///< total query() / batch entries served
  std::uint64_t hits = 0;          ///< answered from the profile cache
  std::uint64_t misses = 0;        ///< required a profile computation
  std::uint64_t coalesced = 0;     ///< misses that joined an in-flight compute
  std::uint64_t computes = 0;      ///< profile computations actually executed
  std::uint64_t evictions = 0;     ///< LRU entries dropped (all caches)
  std::uint64_t sim_hits = 0;      ///< simulator-cache hits (sample path)
  std::uint64_t sim_misses = 0;    ///< simulator instances built on demand
  std::uint64_t replay_hits = 0;   ///< replay/shift results served from cache
  std::uint64_t replay_misses = 0; ///< replay/shift runs actually executed
  std::size_t profile_cache_size = 0;
  std::size_t frontier_cache_size = 0;
  std::size_t sim_cache_size = 0;  ///< cached prepared simulators (CPU+GPU)
  std::size_t replay_cache_size = 0;  ///< cached replay + shifting results

  /// All-time latency observations (was: samples in the ring window).
  std::uint64_t latency_samples = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t n = hits + misses;
    return n ? static_cast<double>(hits) / static_cast<double>(n) : 0.0;
  }
};

/// Query kinds with their own latency histogram
/// (pbc_svc_query_latency_us{kind=...}).
enum class QueryKind {
  kQueryCpu,
  kQueryGpu,
  kSample,
  kFrontier,
  kReplay,
  kShift,
  kCluster,
  kOnline,
};
inline constexpr std::size_t kQueryKindCount = 8;

[[nodiscard]] constexpr const char* to_string(QueryKind k) noexcept {
  switch (k) {
    case QueryKind::kQueryCpu:
      return "query_cpu";
    case QueryKind::kQueryGpu:
      return "query_gpu";
    case QueryKind::kSample:
      return "sample";
    case QueryKind::kFrontier:
      return "frontier";
    case QueryKind::kReplay:
      return "replay";
    case QueryKind::kShift:
      return "shift";
    case QueryKind::kCluster:
      return "cluster";
    case QueryKind::kOnline:
      return "online";
  }
  return "unknown";
}

/// The engine's resolved metric handles — registered once at construction
/// so the hot path is a pointer deref plus a relaxed add. One EngineMetrics
/// per registry; metric names are shared, so two engines on one registry
/// aggregate.
struct EngineMetrics {
  explicit EngineMetrics(obs::MetricsRegistry& registry);

  obs::Counter* queries;           ///< pbc_svc_queries_total
  obs::Counter* coalesced;         ///< pbc_svc_coalesced_total
  obs::Counter* computes;          ///< pbc_svc_computes_total
  /// pbc_svc_cache_{hits,misses}_total{cache=...}. `frontier` splits out
  /// of the historical shared profile counter; EngineStats sums them back.
  obs::Counter* profile_hits;
  obs::Counter* profile_misses;
  obs::Counter* frontier_hits;
  obs::Counter* frontier_misses;
  obs::Counter* sim_hits;
  obs::Counter* sim_misses;
  obs::Counter* replay_hits;
  obs::Counter* replay_misses;
  /// Closed-loop controller runs (cache=online); EngineStats folds them
  /// into the replay hit/miss sums alongside replay and shift results.
  obs::Counter* online_hits;
  obs::Counter* online_misses;
  /// pbc_svc_cache_evictions_total{cache=...}; EngineStats.evictions sums
  /// profile+frontier+phase+replay (the sim caches were never counted).
  obs::Counter* profile_evictions;
  obs::Counter* frontier_evictions;
  obs::Counter* sim_evictions;
  obs::Counter* phase_evictions;
  obs::Counter* replay_evictions;
  obs::Counter* online_evictions;
  /// pbc_svc_cache_entries{cache=...}, refreshed at snapshot time.
  obs::Gauge* profile_entries;
  obs::Gauge* frontier_entries;
  obs::Gauge* sim_entries;
  obs::Gauge* replay_entries;
  /// pbc_svc_query_latency_us{kind=...}, indexed by QueryKind.
  obs::Histogram* latency[kQueryKindCount];

  [[nodiscard]] obs::Histogram& latency_for(QueryKind k) noexcept {
    return *latency[static_cast<std::size_t>(k)];
  }
};

/// Computes the flat compatibility view from a registry snapshot taken
/// from an EngineMetrics-instrumented registry. Latency fields merge the
/// per-kind histograms (estimated percentiles, exact max); counters keep
/// their historical meaning exactly.
///
/// Deprecated: the flat view loses the per-kind histograms and per-cache
/// counters that the daemon's admission controller and /metrics endpoint
/// rely on. Read QueryEngine::metrics_snapshot() (and render it with
/// obs::render_prometheus / obs::render_json) instead; QueryEngine::stats()
/// remains as the supported shim for dashboards that still want the flat
/// shape.
[[deprecated(
    "use QueryEngine::metrics_snapshot(); the flat EngineStats view loses "
    "per-kind latency histograms")]] [[nodiscard]] EngineStats
engine_stats_from(const obs::MetricsSnapshot& snapshot);

/// Ring buffer of the most recent service latencies, in nanoseconds.
/// Percentiles are computed over the recorded samples only — a partially
/// filled window never reads its zero-initialized tail.
class LatencyRecorder {
 public:
  explicit LatencyRecorder(std::size_t window = 4096);

  void record(std::uint64_t ns);

  /// Fills the latency fields of `out` (percentiles over the window).
  void snapshot_into(EngineStats& out) const;

 private:
  mutable std::mutex mu_;
  std::vector<std::uint64_t> ring_;
  std::size_t next_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace pbc::svc
