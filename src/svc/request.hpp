// The unified request surface of the coordination query engine.
//
// Every query kind the engine serves — query_cpu, query_gpu, sample,
// frontier, replay, shift, cluster, online — is expressible as one
// svc::Request: a tagged variant of per-kind operation descriptors plus
// the CallOptions that used to be scattered across call sites
// (SolverPath / ReplayPath / ClusterPath selection, the online seed, the
// deadline budget, the blocked-sweep tile size). QueryEngine::execute()
// is the single entry point over this surface; it routes to the existing
// per-kind methods, so an executed Request is bit-identical to the
// corresponding direct call (tests/svc/execute_diff_test.cpp holds it to
// that contract over a >= 512-case randomized differential).
//
// The same types ride the wire: src/net's binary and JSON codecs
// serialize Request/Response exactly as in-process callers construct
// them, so the pbcd daemon (src/net/server.hpp) is a transport around
// execute(), not a second API.
#pragma once

#include <cstdint>
#include <optional>
#include <variant>
#include <vector>

#include "core/cluster_sim.hpp"
#include "core/coord.hpp"
#include "core/dynamic.hpp"
#include "core/frontier.hpp"
#include "ctrl/closed_loop.hpp"
#include "hw/machine.hpp"
#include "sim/measurement.hpp"
#include "svc/stats.hpp"
#include "workload/trace.hpp"
#include "workload/workload.hpp"

namespace pbc::svc {

/// Per-call knobs shared by every query kind. Collects what used to be
/// per-signature parameters: engine-path selection, the controller seed,
/// the deadline budget, and the blocked-sweep tile size.
struct CallOptions {
  /// Frontier sweeps: which solver implementation runs the splits. Both
  /// are bit-identical; the selection never splits the result cache.
  sim::SolverPath solver_path = sim::SolverPath::kFast;
  /// Replay / shifting: engine selection, same bit-identity contract.
  sim::ReplayPath replay_path = sim::ReplayPath::kFast;
  /// Cluster runs: kFast / kReference / kEvent (kEvent with the default
  /// flat hierarchy; scenario scripts do not ride the wire).
  core::ClusterPath cluster_path = core::ClusterPath::kFast;
  /// Seed for seeded kinds (today: the online controller's RNG stream).
  std::uint64_t seed = 2016;
  /// Deadline budget in microseconds; 0 means none. The clock starts when
  /// the serving side receives the request (no client/server clock sync
  /// is assumed), so it covers queueing, admission, and compute: the pbcd
  /// daemon rejects a request whose budget elapsed before compute starts
  /// with ErrorCode::kDeadlineExceeded — see docs/service.md.
  std::uint64_t deadline_us = 0;
  /// Budgets per blocked-relaxation tile in frontier sweeps (see
  /// sim::CpuSweepOptions::budget_block). Purely a scheduling knob —
  /// results are bit-identical for every value.
  std::uint32_t budget_block = 32;
};

/// Algorithm 1 behind the cache: one CPU budget question.
struct QueryCpuOp {
  hw::CpuMachine machine;
  workload::Workload wl;
  Watts budget{0.0};
  core::CpuCoordVariant variant = core::CpuCoordVariant::kProportional;
};

/// Algorithm 2 behind the cache: one GPU budget question.
struct QueryGpuOp {
  hw::GpuMachine machine;
  workload::Workload wl;
  Watts budget{0.0};
  double gamma = 0.5;
};

/// One steady-state sample through the cached, table-prepared simulator.
struct SampleOp {
  hw::CpuMachine machine;
  workload::Workload wl;
  Watts cpu_cap{0.0};
  Watts mem_cap{0.0};
};

/// A perf_max frontier over a budget grid. The sweep grid knobs live
/// here; the solver path and tile size come from CallOptions.
struct FrontierOp {
  hw::CpuMachine machine;
  workload::Workload wl;
  std::vector<Watts> budgets;
  Watts mem_lo{40.0};
  Watts proc_lo{32.0};
  Watts step{4.0};
};

/// Trace replay under fixed caps.
struct ReplayOp {
  hw::CpuMachine machine;
  workload::Workload wl;
  workload::PhaseTrace trace;
  Watts cpu_cap{0.0};
  Watts mem_cap{0.0};
};

/// Dynamic shifting from COORD's static split. The engine path comes
/// from CallOptions::replay_path.
struct ShiftOp {
  hw::CpuMachine machine;
  workload::Workload wl;
  workload::PhaseTrace trace;
  Watts total_budget{0.0};
  Watts step{4.0};
  int max_steps_per_segment = 8;
  /// Unset derives the floors from the machine (core::shifting_floors).
  std::optional<Watts> cpu_min;
  std::optional<Watts> mem_min;
};

/// A cluster trace run. Carries the wire-safe subset of
/// core::ClusterSimConfig — the engine path comes from
/// CallOptions::cluster_path; pool, hierarchy, and scenario pointers are
/// serving-side resources and do not ride a Request.
struct ClusterOp {
  hw::CpuMachine node_type;
  /// Present when the cluster has GPU nodes.
  std::optional<hw::GpuMachine> gpu_type;
  std::vector<core::SimJob> jobs;
  std::size_t nodes = 4;
  std::size_t gpu_nodes = 0;
  Watts global_budget{800.0};
  core::SplitPolicy policy = core::SplitPolicy::kCoord;
  core::QueuePolicy queue_policy = core::QueuePolicy::kFifo;
  bool admission_control = true;
  Watts min_grant{100.0};
};

/// Closed-loop online-controller run. The controller seed comes from
/// CallOptions::seed; registry/tracer sinks are serving-side wiring.
struct OnlineOp {
  hw::CpuMachine machine;
  workload::Workload wl;
  workload::PhaseTrace trace;
  Watts total_budget{0.0};
  Watts step{4.0};
  std::optional<Watts> cpu_min;
  std::optional<Watts> mem_min;
  double explore_rate = 0.25;
  double explore_decay = 24.0;
  double explore_floor = 0.0;
  double ema_alpha = 0.35;
  double hysteresis_margin = 0.02;
};

/// Variant order matches QueryKind (stats.hpp) and the wire kind tags.
using RequestOp = std::variant<QueryCpuOp, QueryGpuOp, SampleOp, FrontierOp,
                               ReplayOp, ShiftOp, ClusterOp, OnlineOp>;

/// One request over the unified surface. `id` correlates responses on
/// pipelined transports; in-process callers may leave it 0.
struct Request {
  std::uint64_t id = 0;
  CallOptions options;
  RequestOp op;
};

/// Result payloads, index-aligned with RequestOp.
using ResponseOp =
    std::variant<core::CpuAllocation, core::GpuAllocation,
                 sim::AllocationSample, std::vector<core::FrontierPoint>,
                 sim::TraceReplayResult, core::ShiftingResult,
                 core::ClusterRun, ctrl::ClosedLoopResult>;

/// One response. `id` echoes the request's.
struct Response {
  std::uint64_t id = 0;
  ResponseOp result;
};

/// The QueryKind a request dispatches to (variant index mapping).
[[nodiscard]] QueryKind request_kind(const Request& req) noexcept;

/// The QueryKind a response carries (variant index mapping).
[[nodiscard]] QueryKind response_kind(const Response& resp) noexcept;

/// Well-mixed 64-bit digest of the request's routing descriptor — the
/// (machine, workload) pair for node-level kinds, the node type for
/// cluster runs. Requests for the same descriptor hash identically, so a
/// consistent-hash router (net::ShardRouter) keeps each descriptor's
/// cache traffic on one shard.
[[nodiscard]] std::uint64_t descriptor_hash(const Request& req);

/// Cheap structural validation shared by execute() and the daemon:
/// workload well-formed, trace segments inside the phase table, grids
/// non-empty where required. Deep semantic validation (budget floors,
/// admission deadlocks) keeps the tolerant unchecked semantics of the
/// per-kind methods so execute() stays bit-identical to them.
[[nodiscard]] Status validate(const Request& req);

}  // namespace pbc::svc
