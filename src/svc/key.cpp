#include "svc/key.hpp"

namespace pbc::svc {
namespace {

// Record tags keep structurally similar descriptors (e.g. a CpuSpec and a
// GpuSpec that happen to share a field prefix) from ever colliding.
enum class Tag : std::uint8_t {
  kCpuProfile = 1,
  kGpuProfile = 2,
  kCpuFrontier = 3,
  kReplay = 4,
  kShift = 5,
  kOnline = 6,
  kWorkload = 10,
  kPhase = 11,
  kCpuSpec = 12,
  kDramSpec = 13,
  kGpuSpec = 14,
  kTrace = 15,
  kShiftCfg = 16,
  kCtrlCfg = 17,
};

void tag(Fnv1a64& h, Tag t) { h.byte(static_cast<std::uint8_t>(t)); }

void hash_phase(Fnv1a64& h, const workload::Phase& p) {
  tag(h, Tag::kPhase);
  h.str(p.name);
  h.f64(p.weight);
  h.f64(p.flops_per_unit);
  h.f64(p.bytes_per_unit);
  h.f64(p.compute_eff);
  h.f64(p.overlap);
  h.f64(p.max_bw_frac);
  h.f64(p.freq_scaling);
  h.f64(p.activity);
  h.f64(p.mem_energy_scale);
}

void hash_workload(Fnv1a64& h, const workload::Workload& w) {
  tag(h, Tag::kWorkload);
  h.str(w.name);
  h.byte(static_cast<std::uint8_t>(w.domain));
  h.byte(static_cast<std::uint8_t>(w.nominal_intensity));
  h.str(w.metric_name);
  h.f64(w.metric_per_gunit);
  h.size(w.phases.size());
  for (const auto& p : w.phases) hash_phase(h, p);
}

void hash_cpu_spec(Fnv1a64& h, const hw::CpuSpec& s) {
  tag(h, Tag::kCpuSpec);
  h.str(s.name);
  h.i64(s.sockets);
  h.i64(s.cores_per_socket);
  h.size(s.pstates.size());
  for (const auto& ps : s.pstates) {
    h.f64(ps.frequency.value());
    h.f64(ps.voltage);
  }
  h.f64(s.flops_per_cycle);
  h.f64(s.dyn_coeff_w_per_ghz_v2);
  h.f64(s.static_w_per_core_per_volt);
  h.f64(s.uncore_power.value());
  h.f64(s.floor.value());
  h.i64(s.tstate_levels);
  h.boolean(s.per_core_dvfs);
}

void hash_dram_spec(Fnv1a64& h, const hw::DramSpec& s) {
  tag(h, Tag::kDramSpec);
  h.str(s.name);
  h.f64(s.capacity_gb);
  h.f64(s.background_w_per_gb);
  h.f64(s.dyn_w_per_gbps);
  h.f64(s.peak_bw.value());
  h.f64(s.min_bw.value());
  h.i64(s.throttle_levels);
  h.f64(s.floor.value());
}

void hash_gpu_spec(Fnv1a64& h, const hw::GpuSpec& s) {
  tag(h, Tag::kGpuSpec);
  h.str(s.name);
  h.f64(s.sm_min_mhz);
  h.f64(s.sm_max_mhz);
  h.size(s.sm_steps);
  h.f64(s.sm_pairing_min_mhz);
  h.f64(s.sm_idle.value());
  h.f64(s.sm_max_dyn.value());
  h.f64(s.peak_gflops);
  h.size(s.mem_clocks_mhz.size());
  for (const double c : s.mem_clocks_mhz) h.f64(c);
  h.f64(s.bw_per_mhz);
  h.f64(s.mem_idle.value());
  h.f64(s.mem_w_per_mhz);
  h.f64(s.mem_dyn_w_per_gbps);
  h.f64(s.other_power.value());
  h.f64(s.board_min_cap.value());
  h.f64(s.board_default_cap.value());
  h.f64(s.board_max_cap.value());
}

void hash_cpu_machine(Fnv1a64& h, const hw::CpuMachine& m) {
  h.str(m.name);
  hash_cpu_spec(h, m.cpu);
  hash_dram_spec(h, m.dram);
}

void hash_gpu_machine(Fnv1a64& h, const hw::GpuMachine& m) {
  h.str(m.name);
  hash_gpu_spec(h, m.gpu);
}

void hash_trace(Fnv1a64& h, const workload::PhaseTrace& trace) {
  tag(h, Tag::kTrace);
  h.size(trace.size());
  for (const auto& seg : trace) {
    h.size(seg.phase_index);
    h.f64(seg.work_units);
  }
}

void hash_shift_cfg(Fnv1a64& h, const core::ShiftingConfig& cfg) {
  tag(h, Tag::kShiftCfg);
  h.f64(cfg.step.value());
  h.i64(cfg.max_steps_per_segment);
  // Optional floors: presence bit + value, so "unset" (machine-derived)
  // never aliases an explicit 0 W floor. cfg.path is not hashed — the
  // fast and reference engines are bit-identical by contract.
  h.boolean(cfg.cpu_min.has_value());
  h.f64(cfg.cpu_min.value_or(Watts{0.0}).value());
  h.boolean(cfg.mem_min.has_value());
  h.f64(cfg.mem_min.value_or(Watts{0.0}).value());
}

void hash_ctrl_cfg(Fnv1a64& h, const ctrl::ControllerConfig& cfg) {
  tag(h, Tag::kCtrlCfg);
  h.f64(cfg.step.value());
  h.boolean(cfg.cpu_min.has_value());
  h.f64(cfg.cpu_min.value_or(Watts{0.0}).value());
  h.boolean(cfg.mem_min.has_value());
  h.f64(cfg.mem_min.value_or(Watts{0.0}).value());
  h.f64(cfg.explore_rate);
  h.f64(cfg.explore_decay);
  h.f64(cfg.explore_floor);
  h.f64(cfg.ema_alpha);
  h.f64(cfg.hysteresis_margin);
  h.u64(cfg.seed);
  // cfg.registry and cfg.tracer are not hashed: observability sinks
  // never change the run's result.
}

/// Runs `fill` over two independently seeded streams; the pair of digests
/// is the 128-bit key.
template <class Fill>
CacheKey key_of(Tag t, const Fill& fill) {
  CacheKey k;
  // Distinct seeds decorrelate the two words; any fixed pair works.
  Fnv1a64 a(0x5bd1e995u);
  Fnv1a64 b(0xc2b2ae3d27d4eb4fULL);
  for (Fnv1a64* h : {&a, &b}) {
    h->byte(kKeySchemaVersion);
    tag(*h, t);
    fill(*h);
  }
  k.hi = a.digest();
  k.lo = b.digest();
  return k;
}

}  // namespace

CacheKey cpu_profile_key(const hw::CpuMachine& machine,
                         const workload::Workload& wl) {
  return key_of(Tag::kCpuProfile, [&](Fnv1a64& h) {
    hash_cpu_machine(h, machine);
    hash_workload(h, wl);
  });
}

CacheKey gpu_profile_key(const hw::GpuMachine& machine,
                         const workload::Workload& wl) {
  return key_of(Tag::kGpuProfile, [&](Fnv1a64& h) {
    hash_gpu_machine(h, machine);
    hash_workload(h, wl);
  });
}

CacheKey cpu_frontier_key(const hw::CpuMachine& machine,
                          const workload::Workload& wl,
                          std::span<const Watts> budgets,
                          const sim::CpuSweepOptions& opt) {
  return key_of(Tag::kCpuFrontier, [&](Fnv1a64& h) {
    hash_cpu_machine(h, machine);
    hash_workload(h, wl);
    h.size(budgets.size());
    for (const Watts b : budgets) h.f64(b.value());
    h.f64(opt.mem_lo.value());
    h.f64(opt.proc_lo.value());
    h.f64(opt.step.value());
  });
}

CacheKey replay_key(const hw::CpuMachine& machine,
                    const workload::Workload& wl,
                    const workload::PhaseTrace& trace, Watts cpu_cap,
                    Watts mem_cap) {
  return key_of(Tag::kReplay, [&](Fnv1a64& h) {
    hash_cpu_machine(h, machine);
    hash_workload(h, wl);
    hash_trace(h, trace);
    h.f64(cpu_cap.value());
    h.f64(mem_cap.value());
  });
}

CacheKey shift_key(const hw::CpuMachine& machine, const workload::Workload& wl,
                   const workload::PhaseTrace& trace, Watts total_budget,
                   const core::ShiftingConfig& cfg) {
  return key_of(Tag::kShift, [&](Fnv1a64& h) {
    hash_cpu_machine(h, machine);
    hash_workload(h, wl);
    hash_trace(h, trace);
    h.f64(total_budget.value());
    hash_shift_cfg(h, cfg);
  });
}

CacheKey online_key(const hw::CpuMachine& machine,
                    const workload::Workload& wl,
                    const workload::PhaseTrace& trace, Watts total_budget,
                    const ctrl::ControllerConfig& cfg) {
  return key_of(Tag::kOnline, [&](Fnv1a64& h) {
    hash_cpu_machine(h, machine);
    hash_workload(h, wl);
    hash_trace(h, trace);
    h.f64(total_budget.value());
    hash_ctrl_cfg(h, cfg);
  });
}

}  // namespace pbc::svc
