#include "svc/stats.hpp"

#include <algorithm>
#include <string_view>

#include "util/stats.hpp"

namespace pbc::svc {

namespace {

constexpr std::string_view kQueries = "pbc_svc_queries_total";
constexpr std::string_view kCoalesced = "pbc_svc_coalesced_total";
constexpr std::string_view kComputes = "pbc_svc_computes_total";
constexpr std::string_view kHits = "pbc_svc_cache_hits_total";
constexpr std::string_view kMisses = "pbc_svc_cache_misses_total";
constexpr std::string_view kEvictions = "pbc_svc_cache_evictions_total";
constexpr std::string_view kEntries = "pbc_svc_cache_entries";
constexpr std::string_view kLatency = "pbc_svc_query_latency_us";

[[nodiscard]] obs::Labels cache_label(const char* which) {
  return {{"cache", which}};
}

}  // namespace

EngineMetrics::EngineMetrics(obs::MetricsRegistry& registry) {
  const auto& bounds = obs::default_latency_bounds_us();
  queries = &registry.counter(kQueries, "Queries served (all kinds)");
  coalesced = &registry.counter(
      kCoalesced, "Misses that joined an in-flight compute");
  computes = &registry.counter(
      kComputes, "Profile/frontier computations actually executed");
  const auto hit_counter = [&](const char* which) {
    return &registry.counter(kHits, "Cache hits by cache",
                             cache_label(which));
  };
  const auto miss_counter = [&](const char* which) {
    return &registry.counter(kMisses, "Cache misses by cache",
                             cache_label(which));
  };
  const auto evict_counter = [&](const char* which) {
    return &registry.counter(kEvictions, "LRU evictions by cache",
                             cache_label(which));
  };
  profile_hits = hit_counter("profile");
  profile_misses = miss_counter("profile");
  frontier_hits = hit_counter("frontier");
  frontier_misses = miss_counter("frontier");
  sim_hits = hit_counter("sim");
  sim_misses = miss_counter("sim");
  replay_hits = hit_counter("replay");
  replay_misses = miss_counter("replay");
  online_hits = hit_counter("online");
  online_misses = miss_counter("online");
  profile_evictions = evict_counter("profile");
  frontier_evictions = evict_counter("frontier");
  sim_evictions = evict_counter("sim");
  phase_evictions = evict_counter("phase");
  replay_evictions = evict_counter("replay");
  online_evictions = evict_counter("online");
  const auto entries_gauge = [&](const char* which) {
    return &registry.gauge(kEntries, "Current cached entries by cache",
                           cache_label(which));
  };
  profile_entries = entries_gauge("profile");
  frontier_entries = entries_gauge("frontier");
  sim_entries = entries_gauge("sim");
  replay_entries = entries_gauge("replay");
  for (std::size_t i = 0; i < kQueryKindCount; ++i) {
    latency[i] = &registry.histogram(
        kLatency, "Service latency by query kind, microseconds", bounds,
        {{"kind", to_string(static_cast<QueryKind>(i))}});
  }
}

EngineStats engine_stats_from(const obs::MetricsSnapshot& snapshot) {
  EngineStats s;
  s.queries = snapshot.counter(kQueries);
  s.coalesced = snapshot.counter(kCoalesced);
  s.computes = snapshot.counter(kComputes);
  // `hits`/`misses` historically covered the profile and frontier caches
  // through one counter; the labeled metrics split them, the view sums.
  s.hits = snapshot.counter(kHits, cache_label("profile")) +
           snapshot.counter(kHits, cache_label("frontier"));
  s.misses = snapshot.counter(kMisses, cache_label("profile")) +
             snapshot.counter(kMisses, cache_label("frontier"));
  s.sim_hits = snapshot.counter(kHits, cache_label("sim"));
  s.sim_misses = snapshot.counter(kMisses, cache_label("sim"));
  // Online (closed-loop controller) runs are replay-shaped results and
  // fold into the replay view fields, as shift results always have.
  s.replay_hits = snapshot.counter(kHits, cache_label("replay")) +
                  snapshot.counter(kHits, cache_label("online"));
  s.replay_misses = snapshot.counter(kMisses, cache_label("replay")) +
                    snapshot.counter(kMisses, cache_label("online"));
  // The sim caches never fed the aggregate evictions field (their entries
  // are cheap to rebuild and the field predates them); keep that set.
  s.evictions = snapshot.counter(kEvictions, cache_label("profile")) +
                snapshot.counter(kEvictions, cache_label("frontier")) +
                snapshot.counter(kEvictions, cache_label("phase")) +
                snapshot.counter(kEvictions, cache_label("replay")) +
                snapshot.counter(kEvictions, cache_label("online"));
  s.profile_cache_size =
      static_cast<std::size_t>(snapshot.gauge(kEntries, cache_label("profile")));
  s.frontier_cache_size = static_cast<std::size_t>(
      snapshot.gauge(kEntries, cache_label("frontier")));
  s.sim_cache_size =
      static_cast<std::size_t>(snapshot.gauge(kEntries, cache_label("sim")));
  s.replay_cache_size =
      static_cast<std::size_t>(snapshot.gauge(kEntries, cache_label("replay")));

  obs::HistogramSnapshot merged;
  for (const auto& m : snapshot.metrics) {
    if (m.name != kLatency || m.type != obs::MetricType::kHistogram) continue;
    merged.merge(m.hist);
  }
  s.latency_samples = merged.count;
  s.p50_us = merged.percentile(50.0);
  s.p99_us = merged.percentile(99.0);
  s.max_us = merged.max;
  return s;
}

LatencyRecorder::LatencyRecorder(std::size_t window)
    : ring_(std::max<std::size_t>(1, window), 0) {}

void LatencyRecorder::record(std::uint64_t ns) {
  std::lock_guard lock(mu_);
  ring_[next_] = ns;
  next_ = (next_ + 1) % ring_.size();
  ++total_;
}

void LatencyRecorder::snapshot_into(EngineStats& out) const {
  std::vector<double> us;
  {
    std::lock_guard lock(mu_);
    // Only slots that have actually been written: the first min(total_,
    // window) entries. A partially filled ring must never feed its
    // zero-initialized tail into the percentiles.
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(total_, ring_.size()));
    us.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      us.push_back(static_cast<double>(ring_[i]) * 1e-3);
    }
  }
  out.latency_samples = us.size();
  if (us.empty()) {
    out.p50_us = out.p99_us = out.max_us = 0.0;
    return;
  }
  out.p50_us = percentile(us, 50.0);
  out.p99_us = percentile(us, 99.0);
  out.max_us = max_of(us);
}

}  // namespace pbc::svc
