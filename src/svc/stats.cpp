#include "svc/stats.hpp"

#include <algorithm>

#include "util/stats.hpp"

namespace pbc::svc {

LatencyRecorder::LatencyRecorder(std::size_t window)
    : ring_(std::max<std::size_t>(1, window), 0) {}

void LatencyRecorder::record(std::uint64_t ns) {
  std::lock_guard lock(mu_);
  ring_[next_] = ns;
  next_ = (next_ + 1) % ring_.size();
  ++total_;
}

void LatencyRecorder::snapshot_into(EngineStats& out) const {
  std::vector<double> us;
  {
    std::lock_guard lock(mu_);
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(total_, ring_.size()));
    us.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      us.push_back(static_cast<double>(ring_[i]) * 1e-3);
    }
  }
  out.latency_samples = us.size();
  if (us.empty()) {
    out.p50_us = out.p99_us = out.max_us = 0.0;
    return;
  }
  out.p50_us = percentile(us, 50.0);
  out.p99_us = percentile(us, 99.0);
  out.max_us = max_of(us);
}

}  // namespace pbc::svc
