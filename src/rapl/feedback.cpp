#include "rapl/feedback.hpp"

#include <algorithm>

namespace pbc::rapl {

FeedbackController::FeedbackController(Seconds tick, Seconds window) noexcept
    : alpha_(std::min(1.0, tick.value() / std::max(window.value(), 1e-9))) {}

void FeedbackController::observe(Watts instantaneous) noexcept {
  if (!initialized_) {
    ema_ = instantaneous.value();
    initialized_ = true;
  } else {
    ema_ += alpha_ * (instantaneous.value() - ema_);
  }
}

StepDecision FeedbackController::decide(Watts cap,
                                        Watts predicted_up) const noexcept {
  if (ema_ > cap.value()) return StepDecision::kDown;
  if (predicted_up.value() <= cap.value()) return StepDecision::kUp;
  return StepDecision::kHold;
}

}  // namespace pbc::rapl
