#include "rapl/msr.hpp"

#include <algorithm>
#include <cmath>

namespace pbc::rapl {

namespace {
constexpr std::uint64_t kPowerMask = 0x7fffULL;       // [14:0]
constexpr std::uint64_t kEnableBit = 1ULL << 15;      // [15]
constexpr unsigned kWindowYShift = 17;                // [21:17]
constexpr std::uint64_t kWindowYMask = 0x1fULL;
constexpr unsigned kWindowFShift = 22;                // [23:22]
constexpr std::uint64_t kWindowFMask = 0x3ULL;
}  // namespace

std::uint64_t encode_power_limit(const PowerLimit& pl,
                                 const RaplUnits& units) noexcept {
  const double lsb = units.power_lsb();
  const auto power_field = static_cast<std::uint64_t>(std::min(
      std::max(pl.limit.value() / lsb, 0.0), static_cast<double>(kPowerMask)));

  // window = 2^Y · (1 + F/4) · time_lsb. Choose the largest encodable value
  // not exceeding the requested window (hardware rounds down).
  const double target = std::max(pl.window.value(), units.time_lsb());
  std::uint64_t best_y = 0;
  std::uint64_t best_f = 0;
  double best = units.time_lsb();
  for (std::uint64_t y = 0; y <= kWindowYMask; ++y) {
    for (std::uint64_t f = 0; f <= kWindowFMask; ++f) {
      const double w = std::ldexp(1.0, static_cast<int>(y)) *
                       (1.0 + static_cast<double>(f) / 4.0) * units.time_lsb();
      if (w <= target + 1e-12 && w > best) {
        best = w;
        best_y = y;
        best_f = f;
      }
    }
  }

  std::uint64_t raw = power_field;
  if (pl.enabled) raw |= kEnableBit;
  raw |= (best_y & kWindowYMask) << kWindowYShift;
  raw |= (best_f & kWindowFMask) << kWindowFShift;
  return raw;
}

PowerLimit decode_power_limit(std::uint64_t raw,
                              const RaplUnits& units) noexcept {
  PowerLimit pl;
  pl.limit = Watts{static_cast<double>(raw & kPowerMask) * units.power_lsb()};
  pl.enabled = (raw & kEnableBit) != 0;
  const auto y = (raw >> kWindowYShift) & kWindowYMask;
  const auto f = (raw >> kWindowFShift) & kWindowFMask;
  pl.window = Seconds{std::ldexp(1.0, static_cast<int>(y)) *
                      (1.0 + static_cast<double>(f) / 4.0) *
                      units.time_lsb()};
  return pl;
}

Result<bool> RaplMsr::set_power_limit(Domain d, const PowerLimit& pl) {
  if (pl.limit.value() <= 0.0) {
    return invalid_argument("RAPL power limit must be positive");
  }
  if (pl.window.value() <= 0.0) {
    return invalid_argument("RAPL window must be positive");
  }
  limit_regs_[idx(d)] = encode_power_limit(pl, units_);
  return true;
}

PowerLimit RaplMsr::power_limit(Domain d) const noexcept {
  return decode_power_limit(limit_regs_[idx(d)], units_);
}

std::uint64_t RaplMsr::raw_power_limit(Domain d) const noexcept {
  return limit_regs_[idx(d)];
}

void RaplMsr::accumulate_energy(Domain d, Joules e) noexcept {
  if (e.value() <= 0.0) return;
  const std::size_t i = idx(d);
  energy_acc_[i] += e.value() / units_.energy_lsb();
  const double whole = std::floor(energy_acc_[i]);
  energy_acc_[i] -= whole;
  // 32-bit wrap-around, as on hardware.
  energy_regs_[i] = static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(energy_regs_[i]) +
       static_cast<std::uint64_t>(whole)) &
      0xffffffffULL);
}

std::uint32_t RaplMsr::energy_status(Domain d) const noexcept {
  return energy_regs_[idx(d)];
}

Joules RaplMsr::energy_delta(std::uint32_t before,
                             std::uint32_t after) const noexcept {
  const std::uint64_t delta =
      after >= before
          ? static_cast<std::uint64_t>(after - before)
          : (1ULL << 32) - before + after;  // one wrap
  return Joules{static_cast<double>(delta) * units_.energy_lsb()};
}

}  // namespace pbc::rapl
