// The package power-saving escalation ladder.
//
// RAPL meets a falling PKG cap by escalating mechanisms in a fixed order
// (§3.3): P-states (DVFS) first, then T-states (duty-cycle clock
// throttling) at the lowest P-state, and finally the package floor.
// NotchLadder linearizes that order into a single index so both the
// closed-form governor (sim::CpuNodeSim) and the feedback controller
// (sim::RaplEngine) walk the exact same states.
#pragma once

#include <cstddef>

#include "hw/cpu.hpp"

namespace pbc::rapl {

/// Notch 0 is the deepest throttle (lowest P-state, minimum duty);
/// count()-1 is the top P-state at full duty.
class NotchLadder {
 public:
  explicit NotchLadder(const hw::CpuSpec& spec) noexcept : spec_(&spec) {}

  [[nodiscard]] std::size_t count() const noexcept {
    return spec_->pstates.size() +
           static_cast<std::size_t>(spec_->tstate_levels - 1);
  }

  /// Operating point for a notch (clamped to the valid range).
  [[nodiscard]] hw::CpuOperatingPoint op(std::size_t notch) const noexcept;

  /// First notch that is a pure P-state (duty 1).
  [[nodiscard]] std::size_t first_pstate_notch() const noexcept {
    return static_cast<std::size_t>(spec_->tstate_levels - 1);
  }

  /// True if the notch uses duty-cycle throttling (a T-state).
  [[nodiscard]] bool is_tstate(std::size_t notch) const noexcept {
    return notch < first_pstate_notch();
  }

 private:
  const hw::CpuSpec* spec_;
};

}  // namespace pbc::rapl
