#include "rapl/ladder.hpp"

#include <algorithm>

namespace pbc::rapl {

hw::CpuOperatingPoint NotchLadder::op(std::size_t notch) const noexcept {
  notch = std::min(notch, count() - 1);
  const std::size_t tstates = first_pstate_notch();
  if (notch >= tstates) {
    return {notch - tstates, 1.0, false};
  }
  const double duty = static_cast<double>(notch + 1) /
                      static_cast<double>(spec_->tstate_levels);
  return {0, duty, false};
}

}  // namespace pbc::rapl
