// Running-average power-limit feedback, one instance per RAPL domain.
//
// Real RAPL enforces a limit on power averaged over a configurable time
// window. FeedbackController keeps that running average (an EMA with the
// window as its horizon) and answers the only question the firmware asks
// each control period: step the power-saving notch down, hold, or step up?
#pragma once

#include "util/units.hpp"

namespace pbc::rapl {

enum class StepDecision { kDown, kHold, kUp };

class FeedbackController {
 public:
  /// `tick` is the control period; `window` the averaging horizon.
  FeedbackController(Seconds tick, Seconds window) noexcept;

  /// Feeds one instantaneous power sample into the running average.
  void observe(Watts instantaneous) noexcept;

  /// Current running-average power (0 before the first observation).
  [[nodiscard]] Watts average() const noexcept { return Watts{ema_}; }

  /// Control decision against a cap. `predicted_up` is the instantaneous
  /// power expected at the next shallower notch; stepping up is only
  /// allowed when that prediction also fits the cap (anti-windup).
  [[nodiscard]] StepDecision decide(Watts cap,
                                    Watts predicted_up) const noexcept;

  void reset() noexcept {
    ema_ = 0.0;
    initialized_ = false;
  }

 private:
  double alpha_;
  double ema_ = 0.0;
  bool initialized_ = false;
};

}  // namespace pbc::rapl
