// Linux powercap-sysfs façade over the simulated RAPL registers.
//
// Real power-capping tooling (powercap-set, GEOPM, Slurm plugins) talks to
// /sys/class/powercap/intel-rapl:0/... rather than raw MSRs. This module
// exposes the same file tree in memory — names, µW/µJ integer units,
// write-validation behaviour — backed by a RaplMsr, so tooling-level code
// (and the examples) can be written exactly as it would be against a real
// node.
//
// Supported files, per domain directory `intel-rapl:0` (package) and
// `intel-rapl:0:0` (DRAM subdomain):
//   name                          r   "package-0" / "dram"
//   enabled                       rw  "0" / "1"
//   energy_uj                     r   cumulative energy, wraps with the MSR
//   max_energy_range_uj           r   wrap range
//   constraint_0_name             r   "long_term"
//   constraint_0_power_limit_uw   rw  integer microwatts
//   constraint_0_time_window_us   rw  integer microseconds
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "rapl/msr.hpp"
#include "util/status.hpp"

namespace pbc::rapl {

/// An in-memory /sys/class/powercap tree backed by a RaplMsr.
class PowercapFs {
 public:
  explicit PowercapFs(RaplMsr* msr);

  /// All exposed paths, relative to the powercap root, sorted.
  [[nodiscard]] std::vector<std::string> list() const;

  /// Reads a file; values render exactly as sysfs would (integer strings,
  /// no trailing newline).
  [[nodiscard]] Result<std::string> read(const std::string& path) const;

  /// Writes a file. Read-only files and malformed values are rejected with
  /// the same failure mode the kernel gives (-EINVAL / -EACCES analogues).
  Result<bool> write(const std::string& path, const std::string& value);

  /// Convenience: current power limit of a domain in watts.
  [[nodiscard]] Watts power_limit(Domain d) const;

 private:
  [[nodiscard]] static Result<Domain> domain_of(const std::string& path,
                                                std::string* file);

  RaplMsr* msr_;
  bool enabled_[2] = {false, false};
};

}  // namespace pbc::rapl
