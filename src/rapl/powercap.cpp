#include "rapl/powercap.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace pbc::rapl {

namespace {

constexpr const char* kPkgDir = "intel-rapl:0";
constexpr const char* kDramDir = "intel-rapl:0:0";

/// Parses a non-negative integer exactly (full match), like the kernel's
/// kstrtoull on sysfs writes.
Result<std::uint64_t> parse_u64(const std::string& s) {
  if (s.empty()) return invalid_argument("empty value");
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return invalid_argument("not a non-negative integer: '" + s + "'");
    }
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

}  // namespace

PowercapFs::PowercapFs(RaplMsr* msr) : msr_(msr) {}

std::vector<std::string> PowercapFs::list() const {
  std::vector<std::string> paths;
  for (const char* dir : {kPkgDir, kDramDir}) {
    for (const char* file :
         {"name", "enabled", "energy_uj", "max_energy_range_uj",
          "constraint_0_name", "constraint_0_power_limit_uw",
          "constraint_0_time_window_us"}) {
      paths.push_back(std::string(dir) + "/" + file);
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

Result<Domain> PowercapFs::domain_of(const std::string& path,
                                     std::string* file) {
  const auto slash = path.find('/');
  if (slash == std::string::npos) {
    return not_found("no such powercap path: " + path);
  }
  const std::string dir = path.substr(0, slash);
  *file = path.substr(slash + 1);
  if (dir == kPkgDir) return Domain::kPackage;
  if (dir == kDramDir) return Domain::kDram;
  return not_found("no such powercap domain: " + dir);
}

Result<std::string> PowercapFs::read(const std::string& path) const {
  std::string file;
  const auto domain = domain_of(path, &file);
  if (!domain.ok()) return domain.error();
  const Domain d = domain.value();

  if (file == "name") {
    return std::string(d == Domain::kPackage ? "package-0" : "dram");
  }
  if (file == "enabled") {
    return std::string(enabled_[d == Domain::kPackage ? 0 : 1] ? "1" : "0");
  }
  if (file == "energy_uj") {
    const double joules = static_cast<double>(msr_->energy_status(d)) *
                          msr_->units().energy_lsb();
    return std::to_string(
        static_cast<std::uint64_t>(std::llround(joules * 1e6)));
  }
  if (file == "max_energy_range_uj") {
    const double range = 4294967296.0 * msr_->units().energy_lsb() * 1e6;
    return std::to_string(static_cast<std::uint64_t>(range));
  }
  if (file == "constraint_0_name") return std::string("long_term");
  if (file == "constraint_0_power_limit_uw") {
    return std::to_string(static_cast<std::uint64_t>(
        std::llround(msr_->power_limit(d).limit.value() * 1e6)));
  }
  if (file == "constraint_0_time_window_us") {
    return std::to_string(static_cast<std::uint64_t>(
        std::llround(msr_->power_limit(d).window.value() * 1e6)));
  }
  return not_found("no such powercap file: " + path);
}

Result<bool> PowercapFs::write(const std::string& path,
                               const std::string& value) {
  std::string file;
  const auto domain = domain_of(path, &file);
  if (!domain.ok()) return domain.error();
  const Domain d = domain.value();

  if (file == "enabled") {
    if (value != "0" && value != "1") {
      return invalid_argument("enabled takes 0 or 1");
    }
    enabled_[d == Domain::kPackage ? 0 : 1] = value == "1";
    // The enable bit also lives in the limit register.
    PowerLimit pl = msr_->power_limit(d);
    pl.enabled = value == "1";
    if (pl.limit.value() > 0.0) return msr_->set_power_limit(d, pl);
    return true;
  }
  if (file == "constraint_0_power_limit_uw") {
    const auto uw = parse_u64(value);
    if (!uw.ok()) return uw.error();
    PowerLimit pl = msr_->power_limit(d);
    pl.limit = Watts{static_cast<double>(uw.value()) / 1e6};
    pl.enabled = enabled_[d == Domain::kPackage ? 0 : 1];
    if (pl.window.value() <= 0.0) pl.window = Seconds{0.046};
    return msr_->set_power_limit(d, pl);
  }
  if (file == "constraint_0_time_window_us") {
    const auto us = parse_u64(value);
    if (!us.ok()) return us.error();
    PowerLimit pl = msr_->power_limit(d);
    pl.window = Seconds{static_cast<double>(us.value()) / 1e6};
    if (pl.limit.value() <= 0.0) {
      return failed_precondition("set a power limit before the window");
    }
    return msr_->set_power_limit(d, pl);
  }
  if (file == "name" || file == "energy_uj" || file == "max_energy_range_uj" ||
      file == "constraint_0_name") {
    return failed_precondition("read-only powercap file: " + path);
  }
  return not_found("no such powercap file: " + path);
}

Watts PowercapFs::power_limit(Domain d) const {
  return msr_->power_limit(d).limit;
}

}  // namespace pbc::rapl
