// MSR-level RAPL register façade.
//
// Mirrors the Intel SDM Vol. 3B encodings the paper's tooling programs
// (reference [22]): MSR_RAPL_POWER_UNIT fixes the power/energy/time units;
// MSR_PKG_POWER_LIMIT / MSR_DRAM_POWER_LIMIT hold the enable bit, the
// power limit in power units, and the Y/F-encoded averaging window; the
// *_ENERGY_STATUS counters accumulate energy in energy units and wrap at
// 32 bits. The simulators use this façade so that cap programming and
// energy metering round-trip through the same quantization a real machine
// imposes.
#pragma once

#include <cstdint>

#include "util/status.hpp"
#include "util/units.hpp"

namespace pbc::rapl {

/// RAPL domains exposed by the simulated package.
enum class Domain { kPackage, kDram };

[[nodiscard]] constexpr const char* to_string(Domain d) noexcept {
  return d == Domain::kPackage ? "PKG" : "DRAM";
}

/// Unit definitions from MSR_RAPL_POWER_UNIT (default Intel encodings:
/// power in 1/8 W, energy in 1/2^16 J, time in 1/2^10 s — SDM table 14-10).
struct RaplUnits {
  unsigned power_unit_bits = 3;    ///< power LSB = 2^-3 W
  unsigned energy_unit_bits = 16;  ///< energy LSB = 2^-16 J
  unsigned time_unit_bits = 10;    ///< time LSB = 2^-10 s

  [[nodiscard]] double power_lsb() const noexcept {
    return 1.0 / static_cast<double>(1u << power_unit_bits);
  }
  [[nodiscard]] double energy_lsb() const noexcept {
    return 1.0 / static_cast<double>(1ull << energy_unit_bits);
  }
  [[nodiscard]] double time_lsb() const noexcept {
    return 1.0 / static_cast<double>(1u << time_unit_bits);
  }
};

/// A decoded POWER_LIMIT register (limit #1 fields only; the simulated
/// parts expose a single constraint per domain).
struct PowerLimit {
  bool enabled = false;
  Watts limit{0.0};
  Seconds window{0.046};
};

/// Encodes a power limit into the low 24 bits of a *_POWER_LIMIT MSR:
/// [14:0] power in power units, [15] enable, [22:17] window (Y in [21:17],
/// F in [23:22] — we use the common 5+2 split). Out-of-range limits are
/// saturated, mirroring hardware behaviour.
[[nodiscard]] std::uint64_t encode_power_limit(const PowerLimit& pl,
                                               const RaplUnits& units) noexcept;

/// Decodes the register format produced by encode_power_limit.
[[nodiscard]] PowerLimit decode_power_limit(std::uint64_t raw,
                                            const RaplUnits& units) noexcept;

/// The simulated MSR file: power-limit programming and wrapping energy
/// counters for both domains.
class RaplMsr {
 public:
  explicit RaplMsr(RaplUnits units = {}) noexcept : units_(units) {}

  [[nodiscard]] const RaplUnits& units() const noexcept { return units_; }

  /// Programs a domain's power limit. Rejects non-positive limits.
  Result<bool> set_power_limit(Domain d, const PowerLimit& pl);

  /// Reads back the decoded limit (after register quantization).
  [[nodiscard]] PowerLimit power_limit(Domain d) const noexcept;

  /// Raw register contents (for tests and tooling).
  [[nodiscard]] std::uint64_t raw_power_limit(Domain d) const noexcept;

  /// Accumulates consumed energy into a domain's ENERGY_STATUS counter
  /// (wraps at 32 bits, like hardware).
  void accumulate_energy(Domain d, Joules e) noexcept;

  /// Current counter value in energy units.
  [[nodiscard]] std::uint32_t energy_status(Domain d) const noexcept;

  /// Difference between two counter readings as energy, handling a single
  /// wrap.
  [[nodiscard]] Joules energy_delta(std::uint32_t before,
                                    std::uint32_t after) const noexcept;

 private:
  [[nodiscard]] std::size_t idx(Domain d) const noexcept {
    return d == Domain::kPackage ? 0 : 1;
  }

  RaplUnits units_;
  std::uint64_t limit_regs_[2] = {0, 0};
  double energy_acc_[2] = {0.0, 0.0};  ///< fractional energy-unit remainder
  std::uint32_t energy_regs_[2] = {0, 0};
};

}  // namespace pbc::rapl
