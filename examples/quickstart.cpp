// Quickstart: the five-minute tour of the pbc public API.
//
//  1. pick a platform preset and a workload;
//  2. profile the workload's critical power values (seven pinned runs);
//  3. ask COORD for a coordinated split of a node power budget;
//  4. simulate the run under those caps and inspect the outcome.
//
// Build & run:  ./build/examples/quickstart [budget_watts]
#include <cstdlib>
#include <iostream>

#include "core/coord.hpp"
#include "core/critical.hpp"
#include "hw/platforms.hpp"
#include "sim/cpu_node.hpp"
#include "workload/cpu_suite.hpp"

int main(int argc, char** argv) {
  using namespace pbc;

  const double budget = argc > 1 ? std::atof(argv[1]) : 208.0;

  // 1. A machine and a workload.
  const hw::CpuMachine machine = hw::ivybridge_node();
  const workload::Workload wl = workload::stream_cpu();
  const sim::CpuNodeSim node(machine, wl);
  std::cout << "machine:  " << machine.name << "\n"
            << "workload: " << wl.name << " (" << wl.description << ")\n"
            << "budget:   " << budget << " W\n\n";

  // 2. Lightweight profiling: the seven critical power values.
  const core::CpuCriticalPowers profile = core::profile_critical_powers(node);
  std::cout << "critical powers (W):\n"
            << "  P_cpu,L1.." << "L4 = " << profile.cpu_l1.value() << ", "
            << profile.cpu_l2.value() << ", " << profile.cpu_l3.value()
            << ", " << profile.cpu_l4.value() << "\n"
            << "  P_mem,L1..L3 = " << profile.mem_l1.value() << ", "
            << profile.mem_l2.value() << ", " << profile.mem_l3.value()
            << "\n"
            << "  productive threshold = "
            << profile.productive_threshold().value()
            << " W, max demand = " << profile.max_demand().value() << " W\n\n";

  // 3. COORD (Algorithm 1).
  const core::CpuAllocation alloc = core::coord_cpu(profile, Watts{budget});
  std::cout << "COORD allocation: cpu=" << alloc.cpu.value() << " W, mem="
            << alloc.mem.value() << " W  [" << to_string(alloc.status)
            << "]\n";
  if (alloc.status == core::CoordStatus::kPowerSurplus) {
    std::cout << "  surplus returned to the scheduler: "
              << alloc.surplus.value() << " W\n";
  }
  if (alloc.status == core::CoordStatus::kBudgetTooSmall) {
    std::cout << "  budget below the productive threshold — the node "
                 "manager would reject this job.\n";
    return 0;
  }

  // 4. Simulate the run under the coordinated caps.
  const sim::AllocationSample run =
      node.steady_state(alloc.cpu, alloc.mem);
  std::cout << "\nsimulated steady state:\n"
            << "  performance:  " << run.perf << ' ' << wl.metric_name << "\n"
            << "  cpu power:    " << run.proc_power.value() << " W ("
            << to_string(run.proc_region) << ", P-state "
            << run.pstate_index << ")\n"
            << "  dram power:   " << run.mem_power.value() << " W ("
            << to_string(run.mem_region) << ", "
            << run.avail_bw.value() << " GB/s granted)\n"
            << "  total:        " << run.total_power().value() << " W (cap "
            << budget << " W)\n";
  return 0;
}
