// cluster_scheduler: power-bounded scheduling of a job mix across a rack
// of identical nodes under a global power budget — the higher-level use
// the paper positions node-level coordination inside (§2, §8).
//
// The scheduler water-fills the global budget across jobs, clips each job
// to its [productive-threshold, max-demand] range, rejects jobs whose fair
// share would be unproductive (paper: small budgets should not run new
// jobs), runs COORD per node, and reclaims every unused watt.
//
// Usage: ./build/examples/cluster_scheduler [global_budget_watts] [nodes]
#include <cstdlib>
#include <iostream>

#include "core/scheduler.hpp"
#include "hw/platforms.hpp"
#include "util/table.hpp"
#include "workload/cpu_suite.hpp"

int main(int argc, char** argv) {
  using namespace pbc;

  const double global = argc > 1 ? std::atof(argv[1]) : 1000.0;
  const std::size_t nodes =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 6;

  const std::vector<core::JobRequest> jobs{
      {"matmul-train", workload::dgemm()},
      {"graph-walk", workload::sra()},
      {"bandwidth-probe", workload::stream_cpu()},
      {"cfd-solver", workload::npb_sp()},
      {"multigrid", workload::npb_mg()},
  };

  std::cout << "rack: " << nodes << "x " << hw::ivybridge_node().name
            << ", global budget " << global << " W, " << jobs.size()
            << " queued jobs\n\n";

  const core::ClusterScheduler scheduler(hw::ivybridge_node(), nodes);
  const core::ScheduleResult result =
      scheduler.schedule(jobs, Watts{global});

  TableWriter t({"job", "node", "budget_W", "cpu_W", "mem_W", "status",
                 "predicted_perf"});
  for (const auto& p : result.placements) {
    t.add_row({p.job, std::to_string(p.node_index),
               TableWriter::num(p.budget.value(), 1),
               TableWriter::num(p.allocation.cpu.value(), 1),
               TableWriter::num(p.allocation.mem.value(), 1),
               to_string(p.allocation.status),
               TableWriter::num(p.predicted_perf, 2)});
  }
  t.render(std::cout);

  if (!result.rejected.empty()) {
    std::cout << "\nrejected (fair share below productive threshold, or no "
                 "node left):\n";
    for (const auto& name : result.rejected) std::cout << "  - " << name
                                                       << '\n';
  }
  std::cout << "\npower granted to jobs: " << result.allocated.value()
            << " W\n"
            << "reclaimed for the upper-level scheduler: "
            << result.reclaimed.value() << " W\n";

  // What admission control buys: naive equal-split would run every job at
  // global/n regardless of productivity.
  std::cout << "\nnaive equal split would give each job "
            << global / static_cast<double>(jobs.size())
            << " W with no rejection and no reclaim — below some jobs' "
               "productive thresholds, wasting their power entirely.\n";
  return 0;
}
