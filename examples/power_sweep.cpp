// power_sweep: characterize any benchmark on any platform — the same
// methodology the paper uses for Figs. 3/4/7 — from the command line.
//
// Usage:
//   power_sweep [benchmark] [platform] [budget_watts] [--step=W]
//               [--csv=FILE]
//
//   benchmark: SRA STREAM DGEMM BT SP LU EP IS CG FT MG   (CPU suite)
//              SGEMM CUFFT MiniFE Cloverleaf HPCG          (GPU suite;
//              STREAM resolves to the CPU version unless the platform is a
//              GPU)
//   platform:  ivybridge | haswell | titanxp | titanv
//   --step=W        grid step for CPU sweeps (default 4)
//   --csv=FILE      dump the raw sweep as CSV for external plotting
//   --workload=FILE load a custom workload descriptor (see
//                   src/workload/serialize.hpp) instead of a suite
//                   benchmark; the positional benchmark name is ignored
//
// Prints the full split sweep with actual powers, governor mechanisms, and
// scenario categories, plus an ASCII rendering of the performance curve.
#include <fstream>
#include <iostream>
#include <string>

#include "core/categorize.hpp"
#include "hw/platforms.hpp"
#include "sim/sweep.hpp"
#include "util/ascii_plot.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "workload/cpu_suite.hpp"
#include "workload/gpu_suite.hpp"
#include "workload/serialize.hpp"

using namespace pbc;

namespace {

/// Loads a workload: from a descriptor file when --workload was given,
/// otherwise from the named suite.
Result<workload::Workload> load_workload(const std::string& file,
                                         const std::string& bench,
                                         bool gpu_platform) {
  if (!file.empty()) {
    std::ifstream in(file);
    if (!in) return not_found("cannot read workload file " + file);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    return workload::from_text(text);
  }
  return gpu_platform ? workload::gpu_benchmark(bench)
                      : workload::cpu_benchmark(bench);
}

void dump_csv(const std::string& path, const sim::BudgetSweep& sweep) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open " << path << " for writing\n";
    return;
  }
  CsvWriter csv(out, {"mem_cap_w", "proc_cap_w", "perf", "proc_power_w",
                      "mem_power_w", "avail_bw_gbps"});
  for (const auto& s : sweep.samples) {
    csv.write_row({std::to_string(s.mem_cap.value()),
                   std::to_string(s.proc_cap.value()),
                   std::to_string(s.perf),
                   std::to_string(s.proc_power.value()),
                   std::to_string(s.mem_power.value()),
                   std::to_string(s.avail_bw.value())});
  }
  std::cout << "\nwrote " << csv.rows_written() << " rows to " << path
            << '\n';
}

int run_cpu(const hw::CpuMachine& machine, const std::string& bench,
            double budget, double step, const std::string& csv_path,
            const std::string& workload_file) {
  const auto wl = load_workload(workload_file, bench, /*gpu_platform=*/false);
  if (!wl.ok()) {
    std::cerr << wl.error().to_string() << '\n';
    return 1;
  }
  const sim::CpuNodeSim node(machine, wl.value());
  sim::BudgetSweep sweep;
  sweep.budget = Watts{budget};
  sweep.samples = sim::sweep_cpu_split(
      node, Watts{budget}, {Watts{40.0}, Watts{32.0}, Watts{step}});

  std::cout << wl.value().name << " on " << machine.name << " at " << budget
            << " W\n\n";
  TableWriter t({"mem_W", "cpu_W", "perf_" + wl.value().metric_name, "cpuW",
                 "memW", "category"});
  PlotSeries perf{"perf", {}, {}};
  for (const auto& s : sweep.samples) {
    t.add_row({TableWriter::num(s.mem_cap.value(), 0),
               TableWriter::num(s.proc_cap.value(), 0),
               TableWriter::num(s.perf, 3),
               TableWriter::num(s.proc_power.value(), 1),
               TableWriter::num(s.mem_power.value(), 1),
               core::to_string(core::categorize_cpu(s, machine))});
    perf.x.push_back(s.mem_cap.value());
    perf.y.push_back(s.perf);
  }
  t.render(std::cout);
  std::cout << "\nspans: "
            << core::format_spans(core::category_spans_cpu(sweep, machine))
            << "\n\n";
  PlotOptions opt;
  opt.title = "perf vs memory allocation";
  opt.x_label = "memory power allocation (W)";
  std::cout << render_plot({perf}, opt);
  if (!csv_path.empty()) dump_csv(csv_path, sweep);
  return 0;
}

int run_gpu(const hw::GpuMachine& card, const std::string& bench,
            double budget, const std::string& csv_path,
            const std::string& workload_file) {
  const auto wl = load_workload(workload_file, bench, /*gpu_platform=*/true);
  if (!wl.ok()) {
    std::cerr << wl.error().to_string() << '\n';
    return 1;
  }
  const sim::GpuNodeSim node(card, wl.value());
  sim::BudgetSweep sweep;
  sweep.budget = Watts{budget};
  sweep.samples = sim::sweep_gpu_split(node, Watts{budget});

  std::cout << wl.value().name << " on " << card.name << " at cap " << budget
            << " W\n\n";
  TableWriter t({"mem_clock_MHz", "est_mem_W", "perf_" + wl.value().metric_name,
                 "sm_step", "totalW", "category"});
  for (std::size_t i = 0; i < sweep.samples.size(); ++i) {
    const auto& s = sweep.samples[i];
    t.add_row({TableWriter::num(card.gpu.mem_clocks_mhz[s.mem_clock_index], 0),
               TableWriter::num(s.mem_cap.value(), 1),
               TableWriter::num(s.perf, 1), std::to_string(s.sm_step),
               TableWriter::num(s.total_power().value(), 1),
               core::to_string(core::categorize_gpu(sweep, i))});
  }
  t.render(std::cout);
  if (!csv_path.empty()) dump_csv(csv_path, sweep);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = CliArgs::parse(argc, argv);
  if (!parsed.ok()) {
    std::cerr << parsed.error().to_string() << '\n';
    return 1;
  }
  const CliArgs& args = parsed.value();
  if (const auto unknown = args.unknown_options({"step", "csv", "workload"});
      !unknown.empty()) {
    std::cerr << "unknown option --" << unknown.front()
              << " (supported: --step=W, --csv=FILE, --workload=FILE)\n";
    return 1;
  }

  const std::string bench = args.positional(0, "SRA");
  const std::string platform = args.positional(1, "ivybridge");
  const double budget = args.positional_num(2, 0.0);
  const double step = args.value_num("step", 4.0);
  const std::string csv_path = args.value("csv").value_or("");
  const std::string wl_file = args.value("workload").value_or("");

  if (platform == "ivybridge") {
    return run_cpu(hw::ivybridge_node(), bench,
                   budget > 0 ? budget : 240.0, step, csv_path, wl_file);
  }
  if (platform == "haswell") {
    return run_cpu(hw::haswell_node(), bench, budget > 0 ? budget : 230.0,
                   step, csv_path, wl_file);
  }
  if (platform == "titanxp") {
    return run_gpu(hw::titan_xp(), bench, budget > 0 ? budget : 200.0,
                   csv_path, wl_file);
  }
  if (platform == "titanv") {
    return run_gpu(hw::titan_v(), bench, budget > 0 ? budget : 200.0,
                   csv_path, wl_file);
  }
  std::cerr << "unknown platform '" << platform
            << "' (ivybridge|haswell|titanxp|titanv)\n";
  return 1;
}
