// powercap_tool: drive the node the way system tooling does — through the
// powercap-sysfs file tree and the nvidia-smi command line — rather than
// through the library API.
//
//  1. program PKG/DRAM limits by writing
//     intel-rapl:0*/constraint_0_power_limit_uw;
//  2. run a workload under the time-stepped RAPL control loop;
//  3. read energy back from the (register-quantized) energy_uj counters;
//  4. drive a GPU via `nvidia-smi -pl` / `nvidia-settings` command lines.
//
// Usage: ./build/examples/powercap_tool [cpu_cap_w] [mem_cap_w]
#include <cstdlib>
#include <iostream>

#include "hw/platforms.hpp"
#include "nvml/smi.hpp"
#include "rapl/powercap.hpp"
#include "sim/engine.hpp"
#include "workload/cpu_suite.hpp"
#include "workload/gpu_suite.hpp"

int main(int argc, char** argv) {
  using namespace pbc;

  const long cpu_uw = (argc > 1 ? std::atol(argv[1]) : 110) * 1000000L;
  const long mem_uw = (argc > 2 ? std::atol(argv[2]) : 95) * 1000000L;

  // --- CPU side: the powercap sysfs tree ---
  rapl::RaplMsr msr;
  rapl::PowercapFs fs(&msr);

  std::cout << "powercap tree:\n";
  for (const auto& path : fs.list()) {
    std::cout << "  /sys/class/powercap/" << path << '\n';
  }

  auto must_write = [&](const std::string& path, const std::string& value) {
    if (const auto r = fs.write(path, value); !r.ok()) {
      std::cerr << "write " << path << ": " << r.error().to_string() << '\n';
      std::exit(1);
    }
  };
  must_write("intel-rapl:0/enabled", "1");
  must_write("intel-rapl:0/constraint_0_power_limit_uw",
             std::to_string(cpu_uw));
  must_write("intel-rapl:0/constraint_0_time_window_us", "46000");
  must_write("intel-rapl:0:0/enabled", "1");
  must_write("intel-rapl:0:0/constraint_0_power_limit_uw",
             std::to_string(mem_uw));

  std::cout << "\nprogrammed limits: PKG "
            << fs.read("intel-rapl:0/constraint_0_power_limit_uw").value()
            << " uW, DRAM "
            << fs.read("intel-rapl:0:0/constraint_0_power_limit_uw").value()
            << " uW (window "
            << fs.read("intel-rapl:0/constraint_0_time_window_us").value()
            << " us)\n";

  // --- run the control loop under the programmed limits ---
  const auto wl = workload::npb_mg();
  sim::EngineConfig cfg;
  cfg.duration = Seconds{1.0};
  cfg.warmup = Seconds{0.2};
  const sim::RaplEngine engine(hw::ivybridge_node(), wl, cfg);
  const auto run = engine.run(fs.power_limit(rapl::Domain::kPackage),
                              fs.power_limit(rapl::Domain::kDram));

  // Mirror the engine's metered energy into the tree's counters, the way
  // the firmware would.
  msr.accumulate_energy(rapl::Domain::kPackage, run.cpu_energy);
  msr.accumulate_energy(rapl::Domain::kDram, run.mem_energy);

  std::cout << "\nran " << wl.name << " for 0.8 s (post-warmup):\n"
            << "  perf:        " << run.aggregate.perf << ' '
            << wl.metric_name << "\n"
            << "  avg power:   " << run.aggregate.proc_power.value()
            << " W PKG, " << run.aggregate.mem_power.value() << " W DRAM\n"
            << "  energy_uj:   "
            << fs.read("intel-rapl:0/energy_uj").value() << " (PKG), "
            << fs.read("intel-rapl:0:0/energy_uj").value() << " (DRAM)\n"
            << "  overshoot:   " << 100.0 * run.cpu_overshoot_frac << "% / "
            << 100.0 * run.mem_overshoot_frac << "% of ticks\n";

  // --- GPU side: the command-line tools ---
  nvml::NvmlDevice device(hw::titan_xp());
  nvml::SmiCli cli(&device);
  std::cout << "\nGPU via command line:\n";
  for (const char* cmd :
       {"nvidia-smi -pl 160",
        "nvidia-settings -a [gpu:0]/GPUMemoryTransferRateOffset=-1192",
        "nvidia-smi -q -d POWER"}) {
    const auto r = cli.run(cmd);
    std::cout << "$ " << cmd << "\n" << r.output;
    if (r.exit_code != 0) return r.exit_code;
  }
  const auto s = device.run(workload::minife());
  std::cout << "MiniFE under those settings: " << s.perf
            << " GFLOP/s at " << s.total_power().value() << " W board\n";
  return 0;
}
