// characterize_app: the end-to-end workflow a user follows to bring their
// *own* application under power-bounded management:
//
//  1. run the application instrumented (here: one of the suite benchmarks
//     standing in for "your app") and FIT a workload model from the probe
//     runs (core::fit_single_phase — bandwidth, energy/byte, MLP ceiling,
//     clock sensitivity, activity);
//  2. WRITE the fitted descriptor to a file (workload::to_text) so later
//     tools can load it without refitting;
//  3. RELOAD it and derive the power-management artifacts: critical power
//     values, the COORD allocation for a budget, and the RQ4 budget plan.
//
// Usage: ./build/examples/characterize_app [benchmark] [out.workload]
#include <fstream>
#include <iostream>

#include "core/budget_plan.hpp"
#include "core/coord.hpp"
#include "core/model_fit.hpp"
#include "hw/platforms.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/cpu_suite.hpp"
#include "workload/serialize.hpp"

using namespace pbc;

int main(int argc, char** argv) {
  const auto parsed = CliArgs::parse(argc, argv);
  if (!parsed.ok()) {
    std::cerr << parsed.error().to_string() << '\n';
    return 1;
  }
  const std::string bench = parsed.value().positional(0, "CG");
  const std::string out_path =
      parsed.value().positional(1, "/tmp/myapp.workload");

  const auto truth = workload::cpu_benchmark(bench);
  if (!truth.ok()) {
    std::cerr << truth.error().to_string() << '\n';
    return 1;
  }
  const hw::CpuMachine machine = hw::ivybridge_node();
  const sim::CpuNodeSim node(machine, truth.value());

  // --- 1. fit ---
  const core::FittedPhase fit = core::fit_single_phase(node);
  std::cout << "fitted model of '" << bench << "' from 2 probe runs:\n"
            << "  bytes/unit        = " << fit.bytes_per_unit << '\n'
            << "  energy/byte scale = " << fit.mem_energy_scale << '\n'
            << "  MLP ceiling       = " << fit.max_bw_frac << " of peak\n"
            << "  clock exponent    = " << fit.freq_scaling << '\n'
            << "  activity (top P)  = " << fit.activity_eff << '\n'
            << "  intensity class   = "
            << to_string(core::classify_intensity(fit, machine)) << "\n\n";

  // --- 2. write the descriptor ---
  workload::Workload fitted;
  fitted.name = bench + "-fitted";
  fitted.description = "fitted by characterize_app";
  fitted.nominal_intensity = core::classify_intensity(fit, machine);
  fitted.metric_name = truth.value().metric_name;
  fitted.metric_per_gunit = truth.value().metric_per_gunit;
  workload::Phase p;
  p.name = "fitted";
  p.flops_per_unit = std::max(fit.effective_flops_per_unit, 1e-3);
  p.compute_eff = 1.0;  // folded into effective_flops_per_unit
  p.bytes_per_unit = fit.bytes_per_unit;
  p.mem_energy_scale = fit.mem_energy_scale;
  p.max_bw_frac = std::max(fit.max_bw_frac, 0.05);
  p.freq_scaling = fit.compute_bound ? 0.0 : fit.freq_scaling;
  p.activity = fit.activity_eff;
  fitted.phases = {p};

  std::ofstream out(out_path);
  out << workload::to_text(fitted);
  out.close();
  std::cout << "wrote descriptor to " << out_path << "\n\n";

  // --- 3. reload and derive management artifacts ---
  std::ifstream in(out_path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const auto reloaded = workload::from_text(text);
  if (!reloaded.ok()) {
    std::cerr << "reload failed: " << reloaded.error().to_string() << '\n';
    return 1;
  }
  const sim::CpuNodeSim fitted_node(machine, reloaded.value());
  const auto profile = core::profile_critical_powers(fitted_node);
  const auto plan = core::plan_budget(fitted_node);

  TableWriter t({"artifact", "value"});
  t.add_row({"productive threshold",
             TableWriter::num(profile.productive_threshold().value(), 1) +
                 " W"});
  t.add_row({"max power demand",
             TableWriter::num(profile.max_demand().value(), 1) + " W"});
  t.add_row({"efficiency-optimal budget",
             TableWriter::num(plan.efficient_at.value(), 0) + " W"});
  t.add_row({"saturation budget",
             TableWriter::num(plan.saturation_at.value(), 0) + " W"});
  const auto alloc = core::coord_cpu(profile, Watts{200.0});
  t.add_row({"COORD split at 200 W",
             TableWriter::num(alloc.cpu.value(), 1) + " W cpu / " +
                 TableWriter::num(alloc.mem.value(), 1) + " W mem"});
  t.render(std::cout);

  // Sanity: how close is the fitted model's behaviour to the real app?
  const auto truth_200 =
      node.steady_state(alloc.cpu, alloc.mem);
  const auto fitted_200 = fitted_node.steady_state(alloc.cpu, alloc.mem);
  std::cout << "\nfitted-model perf at that split: " << fitted_200.perf
            << " vs ground truth " << truth_200.perf << " ("
            << TableWriter::num(
                   100.0 * fitted_200.perf / std::max(truth_200.perf, 1e-9),
                   1)
            << "% of truth)\n";
  return 0;
}
