// coord_server: a node-manager front end for the coordination query
// engine, served over the wire. It starts an in-process pbcd daemon
// (net::Daemon — two QueryEngine shards behind the consistent-hash
// router, shared metrics registry, admission control), then talks to it
// exclusively through loopback TCP clients: budget questions for a user
// workload descriptor, the frontier-backed budgeting guardrails
// (saturation / productive budgets), and a mixed CPU+GPU request stream
// replayed from several client connections — the deployment shape the
// service layer is built for: many concurrent requesters, few distinct
// (machine, workload) descriptors.
//
// Usage: ./build/examples/coord_server WORKLOAD_FILE [clients] [requests]
//                                        [--seed=N]
//   WORKLOAD_FILE  descriptor in the serialize.hpp dialect
//                  (e.g. examples/sample.workload)
//   clients        concurrent client connections    (default 4)
//   requests       requests issued per client       (default 5000)
//   --seed=N       base seed for the client request streams (default
//                  2016); each client derives its own stream from it,
//                  so a run is reproducible for a given (seed, clients,
//                  requests) triple
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <iterator>
#include <mutex>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "core/frontier.hpp"
#include "hw/platforms.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "sim/sweep.hpp"
#include "svc/request.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/cpu_suite.hpp"
#include "workload/gpu_suite.hpp"
#include "workload/serialize.hpp"

using namespace pbc;

namespace {

Result<workload::Workload> load_workload(const std::string& file) {
  std::ifstream in(file);
  if (!in) return not_found("cannot read workload file " + file);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return workload::from_text(text);
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = CliArgs::parse(argc, argv);
  if (!parsed.ok()) {
    std::cerr << parsed.error().to_string() << '\n';
    return 2;
  }
  const CliArgs& args = parsed.value();
  if (const auto unknown = args.unknown_options({"seed"});
      !unknown.empty()) {
    std::cerr << "unknown option --" << unknown.front()
              << " (supported: --seed=N)\n";
    return 2;
  }
  if (args.positional_count() < 1) {
    std::cerr << "usage: coord_server WORKLOAD_FILE [clients] [requests]"
                 " [--seed=N]\n";
    return 2;
  }
  const auto loaded = load_workload(args.positional(0));
  if (!loaded.ok()) {
    std::cerr << loaded.error().to_string() << '\n';
    return 1;
  }
  const workload::Workload custom = loaded.value();
  const int clients = static_cast<int>(args.positional_num(1, 4));
  const int requests = static_cast<int>(args.positional_num(2, 5000));
  const auto seed =
      static_cast<std::uint64_t>(args.value_num("seed", 2016.0));
  if (clients <= 0 || requests <= 0) {
    std::cerr << "clients and requests must be positive\n";
    return 2;
  }

  // --- 0. The daemon: two engine shards on an ephemeral loopback port.
  net::DaemonOptions dopt;
  dopt.shards = 2;
  net::Daemon daemon(dopt);
  if (const auto st = daemon.start(); !st.ok()) {
    std::cerr << st.error().to_string() << '\n';
    return 1;
  }
  const std::string host = dopt.host;
  const std::uint16_t port = daemon.port();
  const hw::CpuMachine node = hw::ivybridge_node();

  // --- 1. Budget questions for the loaded workload, over the JSON debug
  // codec (the control-plane choice: inspectable frames, same results).
  auto control = net::Client::connect(host, port, net::Codec::kJson);
  if (!control.ok()) {
    std::cerr << control.error().to_string() << '\n';
    return 1;
  }
  std::cout << "serving " << custom.name << " on " << node.name
            << " via pbcd loopback :" << port << ":\n";
  TableWriter table({"budget_w", "cpu_w", "mem_w", "status", "surplus_w"});
  std::uint64_t next_id = 1;
  for (const double b : {120.0, 150.0, 180.0, 210.0, 240.0, 270.0}) {
    svc::Request req;
    req.id = next_id++;
    req.op = svc::QueryCpuOp{node, custom, Watts{b},
                             core::CpuCoordVariant::kProportional};
    const auto resp = control.value().call(req);
    if (!resp.ok()) {
      std::cerr << resp.error().to_string() << '\n';
      return 1;
    }
    const auto& a = std::get<core::CpuAllocation>(resp.value().result);
    table.add_row({TableWriter::num(b, 0), TableWriter::num(a.cpu.value(), 1),
                   TableWriter::num(a.mem.value(), 1), to_string(a.status),
                   TableWriter::num(a.surplus.value(), 1)});
  }
  table.render(std::cout);

  // --- 2. Frontier-backed guardrails (cached server-side: asking twice
  // is free and lands on the same shard thanks to descriptor routing).
  {
    svc::Request req;
    req.id = next_id++;
    svc::FrontierOp op;
    op.machine = node;
    op.wl = custom;
    op.budgets = sim::budget_grid(Watts{110.0}, Watts{280.0}, Watts{10.0});
    req.op = std::move(op);
    const auto resp = control.value().call(req);
    if (!resp.ok()) {
      std::cerr << resp.error().to_string() << '\n';
      return 1;
    }
    const auto& frontier =
        std::get<std::vector<core::FrontierPoint>>(resp.value().result);
    std::cout << "\nguardrails from the cached frontier (" << frontier.size()
              << " budgets):\n"
              << "  saturation budget: "
              << core::saturation_budget(frontier).value() << " W\n"
              << "  productive budget: "
              << core::productive_budget(frontier).value() << " W\n";
  }

  // --- 3. The request stream: every client connection replays a random
  // mix of the custom workload and both suites over both CPU nodes and a
  // GPU, on the compact binary codec.
  std::vector<workload::Workload> cpu_mix = workload::cpu_suite();
  cpu_mix.push_back(custom);
  const std::vector<hw::CpuMachine> cpu_nodes{hw::ivybridge_node(),
                                              hw::haswell_node()};
  const auto gpu_mix = workload::gpu_suite();
  const hw::GpuMachine gpu_node = hw::titan_xp();

  std::mutex mu;
  double perf_proxy = 0.0;  // accumulated cpu watts, to keep work observable
  int client_errors = 0;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto conn = net::Client::connect(host, port);
      if (!conn.ok()) {
        const std::lock_guard lock(mu);
        ++client_errors;
        return;
      }
      Xoshiro256 rng(seed, static_cast<std::uint64_t>(c));
      double local = 0.0;
      for (int i = 0; i < requests; ++i) {
        const Watts budget{rng.uniform(110.0, 280.0)};
        svc::Request req;
        req.id = static_cast<std::uint64_t>(i) + 1;
        if (i % 4 == 3) {  // every fourth request is a GPU question
          const auto& wl = gpu_mix[rng.below(gpu_mix.size())];
          req.op = svc::QueryGpuOp{gpu_node, wl, budget, 0.5};
        } else {
          const auto& wl = cpu_mix[rng.below(cpu_mix.size())];
          const auto& machine = cpu_nodes[rng.below(cpu_nodes.size())];
          req.op = svc::QueryCpuOp{machine, wl, budget,
                                   core::CpuCoordVariant::kProportional};
        }
        const auto resp = conn.value().call(req);
        if (!resp.ok()) {
          const std::lock_guard lock(mu);
          ++client_errors;
          return;
        }
        if (const auto* cpu =
                std::get_if<core::CpuAllocation>(&resp.value().result)) {
          local += cpu->cpu.value();
        } else if (const auto* gpu = std::get_if<core::GpuAllocation>(
                       &resp.value().result)) {
          local += gpu->sm.value();
        }
      }
      const std::lock_guard lock(mu);
      perf_proxy += local;
    });
  }
  for (auto& t : threads) t.join();
  if (client_errors != 0) {
    std::cerr << client_errors << " client(s) failed\n";
    return 1;
  }

  // --- 4. Service counters: the shards publish into one shared registry,
  // so any shard's stats() view is the aggregate across the daemon.
  const auto s = daemon.shard(0).stats();
  std::cout << "\nreplayed " << s.queries << " queries from " << clients
            << " client connections (mean allocated cpu+sm "
            << TableWriter::num(perf_proxy / static_cast<double>(s.queries), 1)
            << " W):\n";
  TableWriter stats_table({"queries", "hits", "misses", "coalesced",
                           "computes", "hit_rate", "p50_us", "p99_us"});
  stats_table.add_row(
      {std::to_string(s.queries), std::to_string(s.hits),
       std::to_string(s.misses), std::to_string(s.coalesced),
       std::to_string(s.computes), TableWriter::num(s.hit_rate(), 3),
       TableWriter::num(s.p50_us, 2), TableWriter::num(s.p99_us, 2)});
  stats_table.render(std::cout);

  // Frontier/profile requests count as cache traffic but not queries, so
  // hits+misses can exceed queries by the number of planning-path calls.
  if (s.hits + s.misses < s.queries || s.misses != s.computes + s.coalesced) {
    std::cerr << "counter invariants violated\n";
    return 1;
  }

  // --- 5. The scrape endpoint's payload: what a Prometheus collector
  // pointed at this daemon's /metrics would ingest (docs/observability.md).
  // Scraped over HTTP like a real collector, not read from memory.
  const auto metrics = net::scrape_metrics(host, port);
  if (!metrics.ok()) {
    std::cerr << metrics.error().to_string() << '\n';
    return 1;
  }
  std::cout << "\n# metrics (Prometheus text format 0.0.4)\n"
            << metrics.value();

  std::size_t slow_retained = 0;
  std::uint64_t slow_total = 0;
  for (std::size_t i = 0; i < daemon.shard_count(); ++i) {
    slow_retained += daemon.shard(i).slow_queries().snapshot().size();
    slow_total += daemon.shard(i).slow_queries().total();
  }
  if (slow_retained != 0) {
    std::cout << "# slow queries (> "
              << daemon.shard(0).options().slow_query_us / 1000.0
              << " ms): " << slow_retained << " retained of " << slow_total
              << " total\n";
  }
  daemon.stop();
  return 0;
}
