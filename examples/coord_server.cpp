// coord_server: a node-manager front end for the coordination query
// engine. It loads a user workload descriptor, answers budget questions
// for it through svc::QueryEngine, derives the frontier-backed budgeting
// guardrails (saturation / productive budgets), then replays a mixed
// CPU+GPU request stream from several client threads against one shared
// engine — the deployment shape the service layer is built for: many
// concurrent requesters, few distinct (machine, workload) descriptors.
//
// Usage: ./build/examples/coord_server WORKLOAD_FILE [clients] [requests]
//                                        [--seed=N]
//   WORKLOAD_FILE  descriptor in the serialize.hpp dialect
//                  (e.g. examples/sample.workload)
//   clients        concurrent client threads       (default 4)
//   requests       requests issued per client      (default 5000)
//   --seed=N       base seed for the client request streams (default
//                  2016); each client derives its own stream from it,
//                  so a run is reproducible for a given (seed, clients,
//                  requests) triple
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <iterator>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/frontier.hpp"
#include "hw/platforms.hpp"
#include "obs/exposition.hpp"
#include "sim/sweep.hpp"
#include "svc/engine.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/cpu_suite.hpp"
#include "workload/gpu_suite.hpp"
#include "workload/serialize.hpp"

using namespace pbc;

namespace {

Result<workload::Workload> load_workload(const std::string& file) {
  std::ifstream in(file);
  if (!in) return not_found("cannot read workload file " + file);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return workload::from_text(text);
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = CliArgs::parse(argc, argv);
  if (!parsed.ok()) {
    std::cerr << parsed.error().to_string() << '\n';
    return 2;
  }
  const CliArgs& args = parsed.value();
  if (const auto unknown = args.unknown_options({"seed"});
      !unknown.empty()) {
    std::cerr << "unknown option --" << unknown.front()
              << " (supported: --seed=N)\n";
    return 2;
  }
  if (args.positional_count() < 1) {
    std::cerr << "usage: coord_server WORKLOAD_FILE [clients] [requests]"
                 " [--seed=N]\n";
    return 2;
  }
  const auto loaded = load_workload(args.positional(0));
  if (!loaded.ok()) {
    std::cerr << loaded.error().to_string() << '\n';
    return 1;
  }
  const workload::Workload custom = loaded.value();
  const int clients = static_cast<int>(args.positional_num(1, 4));
  const int requests = static_cast<int>(args.positional_num(2, 5000));
  const auto seed =
      static_cast<std::uint64_t>(args.value_num("seed", 2016.0));
  if (clients <= 0 || requests <= 0) {
    std::cerr << "clients and requests must be positive\n";
    return 2;
  }

  svc::QueryEngine engine;
  const hw::CpuMachine node = hw::ivybridge_node();

  // --- 1. Budget questions for the loaded workload. ---
  std::cout << "serving " << custom.name << " on " << node.name << ":\n";
  TableWriter table({"budget_w", "cpu_w", "mem_w", "status", "surplus_w"});
  for (const double b : {120.0, 150.0, 180.0, 210.0, 240.0, 270.0}) {
    const auto a = engine.query_cpu(node, custom, Watts{b});
    table.add_row({TableWriter::num(b, 0), TableWriter::num(a.cpu.value(), 1),
                   TableWriter::num(a.mem.value(), 1), to_string(a.status),
                   TableWriter::num(a.surplus.value(), 1)});
  }
  table.render(std::cout);

  // --- 2. Frontier-backed guardrails (cached: asking twice is free). ---
  const auto grid = sim::budget_grid(Watts{110.0}, Watts{280.0}, Watts{10.0});
  const auto frontier = engine.cpu_frontier(node, custom, grid);
  std::cout << "\nguardrails from the cached frontier ("
            << frontier->size() << " budgets):\n"
            << "  saturation budget: "
            << core::saturation_budget(*frontier).value() << " W\n"
            << "  productive budget: "
            << core::productive_budget(*frontier).value() << " W\n";

  // --- 3. The request stream: every client replays a random mix of the
  // custom workload and both suites over both CPU nodes and a GPU. ---
  std::vector<workload::Workload> cpu_mix = workload::cpu_suite();
  cpu_mix.push_back(custom);
  const std::vector<hw::CpuMachine> cpu_nodes{hw::ivybridge_node(),
                                              hw::haswell_node()};
  const auto gpu_mix = workload::gpu_suite();
  const hw::GpuMachine gpu_node = hw::titan_xp();

  std::mutex mu;
  double perf_proxy = 0.0;  // accumulated cpu watts, to keep work observable
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Xoshiro256 rng(seed, static_cast<std::uint64_t>(c));
      double local = 0.0;
      for (int i = 0; i < requests; ++i) {
        const Watts budget{rng.uniform(110.0, 280.0)};
        if (i % 4 == 3) {  // every fourth request is a GPU question
          const auto& wl = gpu_mix[rng.below(gpu_mix.size())];
          local += engine.query_gpu(gpu_node, wl, budget).sm.value();
        } else {
          const auto& wl = cpu_mix[rng.below(cpu_mix.size())];
          const auto& machine = cpu_nodes[rng.below(cpu_nodes.size())];
          local += engine.query_cpu(machine, wl, budget).cpu.value();
        }
      }
      const std::lock_guard lock(mu);
      perf_proxy += local;
    });
  }
  for (auto& t : threads) t.join();

  // --- 4. Service counters. ---
  const auto s = engine.stats();
  std::cout << "\nreplayed " << s.queries << " queries from " << clients
            << " clients (mean allocated cpu+sm "
            << TableWriter::num(perf_proxy / static_cast<double>(s.queries), 1)
            << " W):\n";
  TableWriter stats_table({"queries", "hits", "misses", "coalesced",
                           "computes", "hit_rate", "p50_us", "p99_us"});
  stats_table.add_row(
      {std::to_string(s.queries), std::to_string(s.hits),
       std::to_string(s.misses), std::to_string(s.coalesced),
       std::to_string(s.computes), TableWriter::num(s.hit_rate(), 3),
       TableWriter::num(s.p50_us, 2), TableWriter::num(s.p99_us, 2)});
  stats_table.render(std::cout);

  // Frontier/profile requests count as cache traffic but not queries, so
  // hits+misses can exceed queries by the number of planning-path calls.
  if (s.hits + s.misses < s.queries || s.misses != s.computes + s.coalesced) {
    std::cerr << "counter invariants violated\n";
    return 1;
  }

  // --- 5. The scrape endpoint's payload: what a Prometheus collector
  // pointed at this server would ingest (docs/observability.md). ---
  std::cout << "\n# metrics (Prometheus text format 0.0.4)\n"
            << obs::render_prometheus(engine.metrics_snapshot());
  const auto slow = engine.slow_queries().snapshot();
  if (!slow.empty()) {
    std::cout << "# slow queries (> "
              << engine.options().slow_query_us / 1000.0 << " ms): "
              << slow.size() << " retained of "
              << engine.slow_queries().total() << " total\n";
  }
  return 0;
}
