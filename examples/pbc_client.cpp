// pbc_client: the minimal pbcd client — connect, ask one CPU budget
// question, print the split. Start-to-finish wire usage in ~40 lines;
// see examples/coord_server.cpp for the full deployment shape.
//
// Usage: ./build/examples/pbc_client [budget_w] [--port=N] [--json]
//   budget_w   node power budget in watts        (default 208)
//   --port=N   pbcd port; unset starts an in-process loopback daemon
//   --json     use the JSON debug codec instead of binary
#include <iostream>
#include <variant>

#include "hw/platforms.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "svc/request.hpp"
#include "util/cli.hpp"
#include "workload/cpu_suite.hpp"

using namespace pbc;

int main(int argc, char** argv) {
  const auto parsed = CliArgs::parse(argc, argv);
  if (!parsed.ok()) {
    std::cerr << parsed.error().to_string() << '\n';
    return 2;
  }
  const CliArgs& args = parsed.value();
  if (const auto unknown = args.unknown_options({"port", "json"});
      !unknown.empty()) {
    std::cerr << "unknown option --" << unknown.front()
              << " (supported: --port=N --json)\n";
    return 2;
  }
  const double budget = args.positional_num(0, 208.0);
  const auto codec =
      args.has("json") ? net::Codec::kJson : net::Codec::kBinary;

  // No --port: serve ourselves on an ephemeral loopback port.
  net::Daemon daemon;
  std::uint16_t port = static_cast<std::uint16_t>(args.value_num("port", 0.0));
  if (port == 0) {
    if (const auto st = daemon.start(); !st.ok()) {
      std::cerr << st.error().to_string() << '\n';
      return 1;
    }
    port = daemon.port();
  }

  auto client = net::Client::connect("127.0.0.1", port, codec);
  if (!client.ok()) {
    std::cerr << client.error().to_string() << '\n';
    return 1;
  }

  svc::Request req;
  req.id = 1;
  req.op = svc::QueryCpuOp{hw::ivybridge_node(), workload::cpu_suite().front(),
                           Watts{budget},
                           core::CpuCoordVariant::kProportional};
  const auto resp = client.value().call(req);
  if (!resp.ok()) {
    std::cerr << resp.error().to_string() << '\n';
    return 1;
  }
  const auto& a = std::get<core::CpuAllocation>(resp.value().result);
  std::cout << "budget " << budget << " W over " << to_string(codec)
            << " -> cpu " << a.cpu.value() << " W, mem " << a.mem.value()
            << " W, status " << to_string(a.status) << ", surplus "
            << a.surplus.value() << " W\n";
  return 0;
}
