// gpu_autotune: online GPU power coordination through the NVML-style
// device façade — what a job launcher would do on a power-capped GPU node.
//
//  1. profile the application with two pinned runs (P_totmax, P_totref);
//  2. for the imposed board cap, run Algorithm 2 to choose a memory clock;
//  3. program the device (power limit + clock) and launch;
//  4. compare against the driver's default capping policy.
//
// Usage: ./build/examples/gpu_autotune [cap_watts] [benchmark] [card]
//        card: titanxp | titanv
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/coord.hpp"
#include "core/critical.hpp"
#include "hw/platforms.hpp"
#include "nvml/device.hpp"
#include "util/table.hpp"
#include "workload/gpu_suite.hpp"

int main(int argc, char** argv) {
  using namespace pbc;

  const double cap = argc > 1 ? std::atof(argv[1]) : 160.0;
  const std::string bench = argc > 2 ? argv[2] : "MiniFE";
  const std::string card_name = argc > 3 ? argv[3] : "titanxp";

  const hw::GpuMachine card =
      card_name == "titanv" ? hw::titan_v() : hw::titan_xp();
  const auto wl = workload::gpu_benchmark(bench);
  if (!wl.ok()) {
    std::cerr << wl.error().to_string() << '\n';
    return 1;
  }

  nvml::NvmlDevice device(card);
  std::cout << "card: " << card.name << "; app: " << wl.value().name
            << "; imposed cap: " << cap << " W\n\n";

  // 1. Profile (two pinned runs + card constants).
  const sim::GpuNodeSim node(card, wl.value());
  const core::GpuProfileParams profile = core::profile_gpu_params(node);
  std::cout << "profile: P_totmax=" << profile.tot_max.value()
            << " W, P_totref=" << profile.tot_ref.value()
            << " W, mem range [" << profile.mem_min.value() << ", "
            << profile.mem_max.value() << "] W, "
            << (profile.compute_intensive ? "compute" : "memory/balanced")
            << "-intensive\n";

  // 2. Algorithm 2.
  const core::GpuAllocation alloc =
      core::coord_gpu(profile, device.model(), Watts{cap});
  std::cout << "COORD: P_SM=" << alloc.sm.value() << " W, P_mem="
            << alloc.mem.value() << " W -> memory clock "
            << card.gpu.mem_clocks_mhz[alloc.mem_clock_index] << " MHz ["
            << to_string(alloc.status) << "]\n\n";

  // 3. Program the device and launch.
  if (const auto r = device.set_power_limit(Watts{cap}); !r.ok()) {
    std::cout << "driver clamped the cap: " << r.error().to_string() << '\n';
    const auto c = device.power_constraints();
    const double clamped = std::clamp(cap, c.min_limit.value(),
                                      c.max_limit.value());
    (void)device.set_power_limit(Watts{clamped});
  }
  (void)device.set_mem_clock(card.gpu.mem_clocks_mhz[alloc.mem_clock_index]);
  const sim::AllocationSample tuned = device.run(wl.value());

  // 4. Default policy for comparison.
  device.reset_mem_clock();
  const sim::AllocationSample dflt = device.run(wl.value());

  TableWriter t({"policy", "mem_clock_MHz", "perf", "board_W"});
  t.add_row({"COORD (Algorithm 2)",
             TableWriter::num(card.gpu.mem_clocks_mhz[alloc.mem_clock_index],
                              0),
             TableWriter::num(tuned.perf, 1),
             TableWriter::num(tuned.total_power().value(), 1)});
  t.add_row({"driver default", TableWriter::num(card.gpu.nominal_mem_clock(), 0),
             TableWriter::num(dflt.perf, 1),
             TableWriter::num(dflt.total_power().value(), 1)});
  t.render(std::cout);

  const double gain = dflt.perf > 0.0 ? tuned.perf / dflt.perf - 1.0 : 0.0;
  std::cout << "\ncoordinated vs default: "
            << TableWriter::num(100.0 * gain, 1) << "%\n";
  return 0;
}
